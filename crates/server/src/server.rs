//! The concurrent analysis service.
//!
//! Architecture (std only — no async runtime):
//!
//! * one event-loop thread owns the nonblocking listener and every open
//!   connection, multiplexed through a readiness [`Poller`] (epoll on
//!   Linux via raw syscalls, a scan fallback elsewhere): an idle
//!   keep-alive connection costs one table entry, not a thread;
//! * connections are *pipelined*: each complete request line becomes a
//!   job in a bounded queue, up to `pipeline_depth` may be in flight per
//!   connection (past that the connection is suspended from the poller —
//!   backpressure — until responses drain), and responses may complete
//!   out of order, paired by the envelope's optional `"id"`;
//! * a fixed pool of worker threads pops jobs, runs the CPU-bound
//!   analysis, and writes each response straight to the owning
//!   connection; when the job queue is full the request is *shed*
//!   immediately with a structured busy response (the 429 of this
//!   protocol) rather than left to time out;
//! * with `peers` configured, the node joins a shard tier: each
//!   content-address is looked up on the consistent-hash
//!   [`ring`](crate::ring) and requests owned by another node are
//!   relayed one hop ([`cluster`](crate::cluster)), so the tier's caches
//!   stay coherent and cached bytes stay identical on every node;
//! * a `shutdown` admin request (or the idle timeout) flips one flag:
//!   the event loop stops accepting and reading, workers drain the
//!   queued jobs, and [`serve`] returns.
//!
//! Analysis results flow through the sharded content-addressed
//! [`ResultCache`], so identical requests — concurrent or repeated —
//! simulate once and return bit-identical bytes.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mbb_bench::json::Json;
use mbb_ir::budget::Budget;

use crate::analysis;
use crate::cache::ResultCache;
use crate::cluster::{Cluster, Route};
use crate::error::{ErrorKind, ServeError};
use crate::faults::{self, Site};
use crate::metrics::Metrics;
use crate::overload::{
    self, Brownout, BrownoutConfig, Class, DegradeAction, Reason, BROWNOUT_BEAM, BROWNOUT_STEPS,
    DEFAULT_CLASS_WEIGHTS,
};
use crate::poll::Poller;
use crate::protocol::{self, Kind, RequestBudget};
use crate::sync::{lock, wait_timeout};

/// Server configuration (see `mbbc serve` for the CLI spelling).
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; port 0 picks a free port (reported via `on_ready`).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Result-cache capacity in bytes (0 disables storage).
    pub cache_bytes: u64,
    /// Parsed requests allowed to wait for a worker before new ones are
    /// shed with a busy response.
    pub queue_depth: usize,
    /// Per-connection quiescence timeout (a connection with no in-flight
    /// requests and no buffered bytes is closed after this long idle) and
    /// per-response write deadline.
    pub read_timeout: Duration,
    /// Maximum request-line length in bytes.
    pub max_request_bytes: usize,
    /// Exit after this long with no connections and no work (`None` =
    /// serve until a `shutdown` request).
    pub idle_timeout: Option<Duration>,
    /// Step-quota cap per request: the most innermost-loop iterations one
    /// request's analysis may interpret (`None` = unlimited).  A request
    /// envelope's own `budget.max_steps` can tighten this, never loosen
    /// it.  Overruns get a structured `deadline_exceeded` error.
    pub request_max_steps: Option<u64>,
    /// Wall-deadline cap per request, with the same tighten-only
    /// interaction with the envelope's `budget.deadline_ms`.
    pub request_deadline: Option<Duration>,
    /// Cost-based admission: reject a request whose estimated cost (from
    /// nest trip counts) cannot fit its remaining wall deadline, instead
    /// of burning a worker to discover the same overrun.
    pub admission: bool,
    /// Brown-out controller: under sustained pressure, progressively drop
    /// profile splicing, clamp search width/depth, and shed the lowest
    /// class (see `overload::Brownout`).
    pub brownout: bool,
    /// Per-[`Class`] queue-fullness thresholds, percent of `queue_depth`:
    /// a class is shed once the queue is more than this full.  Highest
    /// priority first; `[100, …]` keeps admin traffic unsheddable.
    pub class_weights: [u8; Class::ALL.len()],
    /// Per-request busy time treated as "at target" (pressure 1.0) by the
    /// brown-out controller's busy-time EWMA.
    pub brownout_target: Duration,
    /// In-flight requests allowed per connection before the event loop
    /// stops reading it (pipelining backpressure).
    pub pipeline_depth: usize,
    /// The shard tier's full membership (`host:port` per node, identical
    /// on every node); empty = no tier, serve standalone.
    pub peers: Vec<String>,
    /// This node's own name in `peers`.  Empty = the bound address, which
    /// is only right when `addr` is the externally reachable name.
    pub advertise: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_bytes: 32 << 20,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            max_request_bytes: 1 << 20,
            idle_timeout: None,
            // ~4.3G innermost iterations: far above every paper workload,
            // but a guaranteed stop for an effectively unbounded nest.
            request_max_steps: Some(1 << 32),
            request_deadline: None,
            admission: true,
            brownout: true,
            class_weights: DEFAULT_CLASS_WEIGHTS,
            brownout_target: Duration::from_millis(250),
            pipeline_depth: 32,
            peers: Vec::new(),
            advertise: String::new(),
        }
    }
}

/// The budget a request actually runs under: per axis, the tighter of the
/// server's cap and the client's ask.
fn effective_budget(cfg: &Config, req: RequestBudget) -> Budget {
    let max_steps = match (cfg.request_max_steps, req.max_steps) {
        (Some(cap), Some(ask)) => Some(cap.min(ask)),
        (cap, ask) => cap.or(ask),
    };
    let ask_wall = req.deadline_ms.map(Duration::from_millis);
    let wall = match (cfg.request_deadline, ask_wall) {
        (Some(cap), Some(ask)) => Some(cap.min(ask)),
        (cap, ask) => cap.or(ask),
    };
    Budget { max_steps, wall }
}

/// The per-connection state shared between the event loop (which reads
/// and frames) and the workers (which write responses).
struct ConnShared {
    /// Response writer — a clone of the connection's stream.  Held across
    /// a whole response write so pipelined responses never interleave.
    writer: Mutex<TcpStream>,
    /// Requests queued or executing for this connection.
    inflight: AtomicUsize,
    /// Set when either side severs the connection; writers bail early.
    closed: AtomicBool,
}

/// One parsed-off request line awaiting a worker.
struct Job {
    line: Vec<u8>,
    conn: Arc<ConnShared>,
    /// Queue-entry instant: the wall deadline keeps running while the job
    /// waits, so queue time is charged against the request's budget.
    enqueued_at: Instant,
}

struct Shared {
    cfg: Config,
    /// Parsed-off request lines waiting for a worker — request-granular,
    /// so one slow connection cannot convoy every other connection.
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: ResultCache,
    overload: Mutex<Brownout>,
    cluster: Cluster,
}

impl Shared {
    fn new(cfg: Config) -> Shared {
        let workers = cfg.workers.max(1);
        // One shard per worker (rounded up to a power of two) keeps lock
        // contention off the fast path without over-allocating.
        let shards = workers.next_power_of_two().min(64);
        // Membership errors are surfaced by `serve` before any Shared is
        // built; a direct construction with a bad list degrades to
        // standalone rather than panicking mid-test.
        let cluster = Cluster::new(&cfg.peers, &cfg.advertise, cfg.read_timeout)
            .unwrap_or_else(|_| Cluster::single(cfg.read_timeout));
        Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: ResultCache::new(cfg.cache_bytes, shards),
            overload: Mutex::new(Brownout::new(BrownoutConfig::default())),
            cluster,
            cfg,
        }
    }
}

/// A handle to a running server: metrics access and remote shutdown.
/// Handed to the `on_ready` callback; integration tests keep it to poll
/// gauges deterministically instead of racing the request path.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The live result cache (for its counters).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The live tier view (for its per-peer counters).
    pub fn cluster(&self) -> &Cluster {
        &self.shared.cluster
    }

    /// Initiates the same graceful drain as a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(t: &T) -> std::os::fd::RawFd {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    0 // the scan poller never dereferences fds
}

/// Runs the service until shut down.  `on_ready` receives the bound
/// address (resolving port 0) and a [`Handle`] once the listener exists —
/// after it returns, connections are being accepted.
pub fn serve(mut cfg: Config, on_ready: impl FnOnce(SocketAddr, Handle)) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    if cfg.advertise.is_empty() {
        cfg.advertise = addr.to_string();
    }
    // Surface a bad tier membership as a bind-time error, not a node that
    // silently forwards nothing.
    Cluster::new(&cfg.peers, &cfg.advertise, cfg.read_timeout)?;
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared::new(cfg));
    on_ready(addr, Handle { shared: Arc::clone(&shared) });

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker(&shared));
        }
        event_loop(&listener, &shared);
        // Wake every worker so it can observe the flag and drain out.
        shared.cv.notify_all();
    });
    Ok(())
}

const LISTENER_TOKEN: u64 = 0;

/// Per-connection event-loop state.  The event loop owns the reading
/// half; `shared` is what the workers see.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Bytes read but not yet framed into requests.
    buf: Vec<u8>,
    /// Registered with the poller.  False while suspended on the
    /// pipeline cap (backpressure) or after EOF.
    registered: bool,
    eof: bool,
    last_activity: Instant,
}

/// The readiness loop: accepts, reads, frames requests into the job
/// queue, and closes quiescent connections.  Never blocks on a socket
/// and never runs analysis.
fn event_loop(listener: &TcpListener, shared: &Shared) {
    let mut poller = Poller::new();
    let _ = poller.register(raw_fd(listener), LISTENER_TOKEN);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut ready: Vec<u64> = Vec::new();
    let mut last_activity = Instant::now();
    let mut last_tick = Instant::now();

    while !shared.shutdown.load(Ordering::SeqCst) {
        // Resume connections suspended on the pipeline cap: responses may
        // have drained, making their buffered lines processable again.
        let mut doomed: Vec<u64> = Vec::new();
        for (&tok, conn) in conns.iter_mut() {
            if conn.registered {
                continue;
            }
            if !drain_buf(conn, shared) {
                doomed.push(tok);
                continue;
            }
            if !conn.eof
                && !at_cap(conn, shared)
                && poller.register(raw_fd(&conn.stream), tok).is_ok()
            {
                conn.registered = true;
            }
        }
        for tok in doomed {
            close_conn(&mut conns, &mut poller, tok, shared);
        }

        ready.clear();
        poller.wait(&mut ready, Duration::from_millis(20));

        for &tok in &ready {
            if tok == LISTENER_TOKEN {
                accept_burst(listener, &mut poller, &mut conns, &mut next_token, shared);
                last_activity = Instant::now();
                continue;
            }
            let Some(conn) = conns.get_mut(&tok) else {
                continue; // stale event for a connection closed this round
            };
            if faults::fire(Site::ConnRead) {
                // Injected fault: the connection drops mid-stream.
                close_conn(&mut conns, &mut poller, tok, shared);
                continue;
            }
            if !read_into_buf(conn, shared.cfg.max_request_bytes) || !drain_buf(conn, shared) {
                close_conn(&mut conns, &mut poller, tok, shared);
                continue;
            }
            conn.last_activity = Instant::now();
            last_activity = conn.last_activity;
            if conn.registered && (conn.eof || at_cap(conn, shared)) {
                // EOF: nothing further to read, ever.  At cap:
                // backpressure — stop reading until responses drain.
                poller.deregister(raw_fd(&conn.stream), tok);
                conn.registered = false;
            }
            if conn_done(conn) {
                close_conn(&mut conns, &mut poller, tok, shared);
            }
        }

        // Housekeeping tick: decay the brown-out EWMAs while no requests
        // complete (so a drained server walks back to level 0 instead of
        // freezing at its storm level) and sweep quiescent connections.
        if last_tick.elapsed() >= Duration::from_millis(50) {
            last_tick = Instant::now();
            observe_pressure(shared, Duration::ZERO);
            let stale: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    let inflight = c.shared.inflight.load(Ordering::Relaxed);
                    let quiesced = inflight == 0 && !c.buf.contains(&b'\n');
                    (c.shared.closed.load(Ordering::Relaxed) && inflight == 0)
                        || (c.eof && quiesced)
                        // Quiescence, not per-read, is what times a
                        // pipelined connection out: no in-flight requests
                        // AND no buffered bytes for the whole window.
                        || (quiesced
                            && c.buf.is_empty()
                            && c.last_activity.elapsed() >= shared.cfg.read_timeout)
                })
                .map(|(&tok, _)| tok)
                .collect();
            for tok in stale {
                close_conn(&mut conns, &mut poller, tok, shared);
            }
        }
        if let Some(idle) = shared.cfg.idle_timeout {
            let quiet = conns.is_empty()
                && shared.metrics.workers_busy.load(Ordering::Relaxed) == 0
                && lock(&shared.queue).is_empty();
            if quiet && last_activity.elapsed() >= idle {
                shared.shutdown.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// True when a connection has nothing left to do: the client half-closed
/// and every pipelined response has been written.
fn conn_done(conn: &Conn) -> bool {
    conn.eof && !conn.buf.contains(&b'\n') && conn.shared.inflight.load(Ordering::Relaxed) == 0
}

/// Accepts every pending connection (the listener is level-triggered, so
/// stopping early would be re-reported anyway; draining keeps the accept
/// backlog short under a connect storm).
fn accept_burst(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &Shared,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let Ok(writer) = stream.try_clone() else { continue };
                let tok = *next_token;
                *next_token += 1;
                let mut conn = Conn {
                    shared: Arc::new(ConnShared {
                        writer: Mutex::new(writer),
                        inflight: AtomicUsize::new(0),
                        closed: AtomicBool::new(false),
                    }),
                    stream,
                    buf: Vec::new(),
                    registered: false,
                    eof: false,
                    last_activity: Instant::now(),
                };
                shared.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
                if poller.register(raw_fd(&conn.stream), tok).is_ok() {
                    conn.registered = true;
                }
                conns.insert(tok, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Removes a connection and severs the socket.  `shutdown` (not a writer
/// lock) severs so a worker mid-write is interrupted, not waited on.
fn close_conn(conns: &mut HashMap<u64, Conn>, poller: &mut Poller, tok: u64, shared: &Shared) {
    if let Some(conn) = conns.remove(&tok) {
        if conn.registered {
            poller.deregister(raw_fd(&conn.stream), tok);
        }
        conn.shared.closed.store(true, Ordering::Relaxed);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Pulls every available byte off the socket.  Returns `false` when the
/// connection is dead.  On EOF any complete buffered lines still run; a
/// partial trailing line is discarded, matching the blocking framing.
fn read_into_buf(conn: &mut Conn, max: usize) -> bool {
    let mut tmp = [0u8; 8192];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                return true;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                if conn.buf.len() > max.saturating_add(1) {
                    // Enough buffered to either frame requests or answer
                    // too-large; stop pulling (level-triggered readiness
                    // re-reports the remainder).
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// The pipeline cap: past this many in-flight requests the event loop
/// stops reading the connection until responses drain.
fn at_cap(conn: &Conn, shared: &Shared) -> bool {
    conn.shared.inflight.load(Ordering::Relaxed) >= shared.cfg.pipeline_depth.max(1)
}

/// Frames complete lines out of the read buffer and queues each as a
/// job, stopping at the pipeline cap (the line stays buffered).  Returns
/// `false` when the connection must close (framing is unrecoverable).
fn drain_buf(conn: &mut Conn, shared: &Shared) -> bool {
    loop {
        if conn.shared.closed.load(Ordering::Relaxed) {
            return false;
        }
        let Some(nl) = conn.buf.iter().position(|&b| b == b'\n') else {
            if conn.buf.len() > shared.cfg.max_request_bytes {
                answer_too_large(conn, shared);
                return false;
            }
            return true; // need more bytes
        };
        if nl > shared.cfg.max_request_bytes {
            answer_too_large(conn, shared);
            return false;
        }
        if at_cap(conn, shared) {
            return true; // backpressure: leave the line buffered
        }
        let mut line: Vec<u8> = conn.buf.drain(..=nl).collect();
        line.pop(); // the newline
        if line.is_empty() {
            continue; // tolerate keep-alive blank lines
        }
        enqueue(line, conn, shared);
    }
}

/// Answers an over-long line with a structured error.  The caller closes
/// the connection: the line framing cannot be resynchronised.
fn answer_too_large(conn: &Conn, shared: &Shared) {
    let e = ServeError::new(
        ErrorKind::TooLarge,
        format!("request exceeds {} bytes", shared.cfg.max_request_bytes),
    );
    shared.metrics.count_error(e.kind);
    let mut resp = protocol::error_response(&e);
    resp.push('\n');
    write_line(&conn.shared, resp.as_bytes(), Duration::from_secs(1));
}

/// Queues one framed request, or sheds it with a busy response when the
/// queue is full.  The shed is request-level: the connection stays open
/// and later requests may be admitted.
fn enqueue(line: Vec<u8>, conn: &Conn, shared: &Shared) {
    let mut q = lock(&shared.queue);
    if q.len() >= shared.cfg.queue_depth {
        drop(q);
        shared.metrics.count_shed_conn();
        shared.metrics.busy_total.fetch_add(1, Ordering::Relaxed);
        shared.metrics.count_error(ErrorKind::Busy);
        let mut resp = protocol::error_response(&ServeError::busy());
        resp.push('\n');
        write_line(&conn.shared, resp.as_bytes(), Duration::from_secs(1));
        return;
    }
    conn.shared.inflight.fetch_add(1, Ordering::Relaxed);
    q.push_back(Job { line, conn: Arc::clone(&conn.shared), enqueued_at: Instant::now() });
    shared.metrics.queue_depth.store(q.len() as u64, Ordering::Relaxed);
    drop(q);
    shared.cv.notify_one();
}

/// Writes one response line, retrying `WouldBlock` (the stream shares the
/// connection's nonblocking flag) until `timeout`.  Holding the writer
/// lock across the whole line keeps pipelined responses uninterleaved.
fn write_line(conn: &ConnShared, line: &[u8], timeout: Duration) {
    if conn.closed.load(Ordering::Relaxed) {
        return;
    }
    let mut w = lock(&conn.writer);
    if faults::fire(Site::ConnWriteShort) {
        // Injected fault: half a response, then a dropped connection.
        // The newline never arrives, so a client can not mistake the
        // prefix for a frame.
        let _ = write_all_nb(&mut w, &line[..line.len() / 2], timeout);
        let _ = w.shutdown(std::net::Shutdown::Both);
        conn.closed.store(true, Ordering::Relaxed);
        return;
    }
    if write_all_nb(&mut w, line, timeout).is_err() {
        let _ = w.shutdown(std::net::Shutdown::Both);
        conn.closed.store(true, Ordering::Relaxed);
    }
}

fn write_all_nb(stream: &mut TcpStream, mut buf: &[u8], timeout: Duration) -> std::io::Result<()> {
    let deadline = Instant::now() + timeout;
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Worker loop: pop a job, serve it, repeat; exit once shutdown is
/// flagged *and* the queue is drained.
///
/// Per-request panics are already caught in [`process_line`]; if one
/// still escapes `handle_job` (a failure outside a request), the worker
/// counts a respawn and continues in place rather than unwinding out of
/// the pool — the loop *is* the respawned worker.
fn worker(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    shared.metrics.queue_depth.store(q.len() as u64, Ordering::Relaxed);
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = wait_timeout(&shared.cv, q, Duration::from_millis(100));
            }
        };
        let Some(job) = job else { return };
        if faults::fire(Site::WorkerStall) {
            // Injected fault: the worker stalls with the job already
            // popped, so queued requests age toward expiry.
            if let Some(d) = faults::handler_delay() {
                std::thread::sleep(d);
            }
        }
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_job(&job, shared)));
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
        // The in-flight count must drop even if the handler escaped, or
        // the connection would stay suspended forever.
        job.conn.inflight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.metrics.worker_respawns_total.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serves one job end to end: charge queue wait, run the request, write
/// the response to the owning connection.
fn handle_job(job: &Job, shared: &Shared) {
    let queue_age = job.enqueued_at.elapsed();
    let (mut resp, drain) = process_line(&job.line, shared, queue_age);
    resp.push('\n');
    write_line(&job.conn, resp.as_bytes(), shared.cfg.read_timeout);
    if drain {
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.cv.notify_all();
    }
}

/// Processes one request line; returns the response line (no newline)
/// and whether a graceful drain was requested.
///
/// This is the panic-isolation boundary: a panic anywhere in request
/// handling — a transform bug, a poisoned invariant, an injected fault —
/// is caught here and answered with a structured `internal` error, so the
/// connection and worker keep serving.
fn process_line(line: &[u8], shared: &Shared, queue_age: Duration) -> (String, bool) {
    let meter = mbb_bench::runner::Meter::start();
    // The request's `"id"`, captured as soon as it parses so even error
    // and panic responses pair up under pipelining.
    let mut rid: Option<String> = None;
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        respond(line, shared, queue_age, &mut rid)
    }));
    let busy = meter.finish().busy();
    shared.metrics.latency.observe(busy);
    observe_pressure(shared, busy);
    match out {
        Ok(Ok((resp, drain))) => (resp, drain),
        Ok(Err(e)) => {
            shared.metrics.count_error(e.kind);
            (protocol::error_response_with_id(&e, rid.as_deref()), false)
        }
        Err(_panic) => {
            shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
            let e =
                ServeError::new(ErrorKind::Internal, "internal error: request handler panicked");
            shared.metrics.count_error(e.kind);
            (protocol::error_response_with_id(&e, rid.as_deref()), false)
        }
    }
}

/// Feeds the brown-out controller one observation — queue fullness and a
/// busy-time reading (both normalised per-1024) — and publishes the
/// possibly-updated level for the lock-free request path.
fn observe_pressure(shared: &Shared, busy: Duration) {
    if !shared.cfg.brownout {
        return;
    }
    let cap = shared.cfg.queue_depth.max(1) as u64;
    let queue_frac = shared.metrics.queue_depth.load(Ordering::Relaxed).saturating_mul(1024) / cap;
    let target = shared.cfg.brownout_target.as_nanos().max(1) as u64;
    let busy_ns = busy.as_nanos().min(u64::MAX as u128) as u64;
    let busy_frac = busy_ns.saturating_mul(1024) / target;
    let level = lock(&shared.overload).observe(queue_frac, busy_frac);
    shared.metrics.brownout_level.store(level as u64, Ordering::Relaxed);
    shared.metrics.brownout_level_max.fetch_max(level as u64, Ordering::Relaxed);
}

fn respond(
    line: &[u8],
    shared: &Shared,
    queue_age: Duration,
    rid: &mut Option<String>,
) -> Result<(String, bool), ServeError> {
    if faults::fire(Site::HandlerDelay) {
        if let Some(d) = faults::handler_delay() {
            std::thread::sleep(d);
        }
    }
    if faults::fire(Site::HandlerPanic) {
        panic!("{}", faults::PANIC_PAYLOAD);
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ServeError::new(ErrorKind::BadRequest, "request is not UTF-8"))?;
    let req = protocol::parse_request(text)?;
    rid.clone_from(&req.id);
    let id = req.id.as_deref();
    shared.metrics.count_request(req.kind);
    if req.forwarded {
        shared.metrics.forwarded_in_total.fetch_add(1, Ordering::Relaxed);
        shared.cluster.count_forwarded_in();
    }
    let class = Class::of(req.kind);
    // The published brown-out level.  Only the controller stores to this
    // gauge (and only when `cfg.brownout` is on), so it stays 0 when the
    // controller is disabled — but reading it unconditionally lets tests
    // pin a level without racing the controller.
    let level = shared.metrics.brownout_level.load(Ordering::Relaxed);
    match req.kind {
        Kind::Metrics => {
            let result = Json::obj([("text", Json::str(shared.metrics.render(&shared.cache)))])
                .render_compact();
            Ok((protocol::ok_response(Kind::Metrics, false, &result, id), false))
        }
        Kind::Shutdown => {
            let result = Json::obj([("draining", Json::Bool(true))]).render_compact();
            Ok((protocol::ok_response(Kind::Shutdown, false, &result, id), true))
        }
        Kind::Machines => {
            let a = analysis::machines();
            let result =
                Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact();
            Ok((protocol::ok_response(Kind::Machines, false, &result, id), false))
        }
        Kind::ClusterStats => {
            let result = shared.cluster.stats_json();
            Ok((protocol::ok_response(Kind::ClusterStats, false, &result, id), false))
        }
        Kind::Health => {
            let ctl = lock(&shared.overload);
            let result = Json::obj([
                ("status", Json::str(ctl.status())),
                ("level", Json::UInt(ctl.level() as u64)),
                (
                    "max_level",
                    Json::UInt(shared.metrics.brownout_level_max.load(Ordering::Relaxed)),
                ),
                ("queue_pressure", Json::UInt(ctl.queue_ewma())),
                ("busy_pressure", Json::UInt(ctl.busy_ewma())),
                ("shed_total", Json::UInt(shared.metrics.shed_total())),
                ("brownout_enabled", Json::Bool(shared.cfg.brownout)),
            ])
            .render_compact();
            Ok((protocol::ok_response(Kind::Health, false, &result, id), false))
        }
        kind => {
            // Priority shedding: as the request queue fills past a class's
            // threshold, that class is refused with a structured busy —
            // low classes give way first, admin traffic never does.
            let depth = shared.metrics.queue_depth.load(Ordering::Relaxed);
            let weight = u64::from(shared.cfg.class_weights[class.index()]);
            if depth * 100 > (shared.cfg.queue_depth as u64) * weight {
                shared.metrics.count_shed(class, Reason::Saturation);
                return Err(ServeError::new(
                    ErrorKind::Busy,
                    format!(
                        "shedding {} traffic: accept queue {depth}/{} is past the class threshold ({weight}%)",
                        class.as_str(),
                        shared.cfg.queue_depth
                    ),
                ));
            }
            // Brown-out level 3: the lowest class is shed outright.
            if level >= 3 && class == Class::Search {
                shared.metrics.count_shed(class, Reason::Brownout);
                return Err(ServeError::new(
                    ErrorKind::Busy,
                    "brown-out level 3: optimize-search is shed until pressure drops",
                ));
            }
            let src = req.program.as_deref().expect("enforced by parse_request");
            let mut opts = req.flags.to_options(&req.machine)?;
            opts.budget = effective_budget(&shared.cfg, req.budget);
            // The wall deadline has been running since the request was
            // queued: charge the time it spent waiting for a worker, and
            // answer expiry without ever touching the analysis layer.
            if let Some(wall) = opts.budget.wall {
                if queue_age >= wall {
                    shared.metrics.count_shed(class, Reason::Expired);
                    return Err(ServeError::new(
                        ErrorKind::DeadlineExceeded,
                        format!(
                            "deadline of {}ms expired after {}ms in the accept queue",
                            wall.as_millis(),
                            queue_age.as_millis()
                        ),
                    ));
                }
                opts.budget.wall = Some(wall - queue_age);
            }
            opts.profile = req.profile;
            opts.engine = req.engine;
            let prog = analysis::load(src)?;
            // Cost-based admission: a request that cannot possibly finish
            // inside its remaining deadline is rejected up front.
            if shared.cfg.admission {
                if let Some(remaining) = opts.budget.wall {
                    let est = overload::estimate_cost_ms(&prog, kind);
                    if Duration::from_millis(est) > remaining {
                        shared.metrics.count_shed(class, Reason::Admission);
                        return Err(ServeError::new(
                            ErrorKind::DeadlineExceeded,
                            format!(
                                "admission: estimated cost ~{est}ms cannot fit the remaining {}ms deadline",
                                remaining.as_millis()
                            ),
                        ));
                    }
                }
            }
            // Search width/depth come from the flags (and are part of the
            // cache key via `Flags::key`); the seed stays at the crate
            // default so responses are a pure function of the request.
            let mut sp = analysis::SearchParams {
                beam: req
                    .flags
                    .beam
                    .map_or_else(|| analysis::SearchParams::default().beam, |b| b as usize),
                steps: req
                    .flags
                    .search_steps
                    .map_or_else(|| analysis::SearchParams::default().steps, |s| s as usize),
                ..analysis::SearchParams::default()
            };
            // Brown-out degradation: level 1 drops profile splicing,
            // level 2 also clamps search width/depth.  Either action makes
            // the response *degraded*: it carries an explicit marker and
            // bypasses the result cache in both directions (the profile
            // rule), so cached bytes stay identical at every level.
            let mut actions: Vec<DegradeAction> = Vec::new();
            if level >= 1 && opts.profile {
                opts.profile = false;
                actions.push(DegradeAction::NoProfile);
            }
            if level >= 2
                && kind == Kind::OptimizeSearch
                && (sp.beam > BROWNOUT_BEAM || sp.steps > BROWNOUT_STEPS)
            {
                sp.beam = sp.beam.min(BROWNOUT_BEAM);
                sp.steps = sp.steps.min(BROWNOUT_STEPS);
                actions.push(DegradeAction::SearchClamp);
            }
            let compute = || -> Result<analysis::Analysis, ServeError> {
                let a = match kind {
                    Kind::Report => analysis::report(&prog, &opts)?,
                    Kind::Advise => analysis::advise(&prog, &opts)?,
                    Kind::TraceStats => analysis::trace_stats(&prog, &opts)?,
                    Kind::Optimize => analysis::optimize(&prog, &opts)?.0,
                    Kind::OptimizeSearch => analysis::optimize_search(&prog, &opts, &sp)?.0,
                    _ => unreachable!("non-program kinds handled above"),
                };
                Ok(a)
            };
            if !actions.is_empty() {
                for &a in &actions {
                    shared.metrics.count_degraded(a);
                }
                let a = compute()?;
                let val =
                    Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact();
                let degraded = Json::obj([
                    ("level", Json::UInt(level)),
                    ("actions", Json::Arr(actions.iter().map(|a| Json::str(a.as_str())).collect())),
                ])
                .render_compact();
                return Ok((protocol::degraded_response(kind, &degraded, &val, id), false));
            }
            if req.profile {
                // Profiles describe *this* execution (wall/CPU time), so a
                // profiled request bypasses the cache in both directions:
                // it neither reads a cached result nor stores one.
                let a = compute()?;
                let mut pairs = vec![("text", Json::str(a.text)), ("data", a.data)];
                if let Some(p) = &a.profile {
                    shared.metrics.record_phases(p);
                    pairs.push(("profile", analysis::profile_json(p)));
                }
                let val = Json::obj(pairs).render_compact();
                return Ok((protocol::ok_response(kind, false, &val, id), false));
            }
            // Key on the *resolved* machine name (aliases collapse, scaled
            // variants stay distinct) and the canonical pretty-printed
            // program (formatting collapses).
            let canon = analysis::canonical_source(&prog);
            let key = mbb_core::canon::cache_key(
                kind.as_str(),
                &opts.machine.name,
                &req.flags.key(),
                &canon,
            );
            // Shard routing: if another node owns this content-address,
            // relay the request one hop (never re-forward a relay) so the
            // whole tier shares one cache fill per unique key.  A failed
            // relay falls back to computing locally — correctness never
            // depends on a peer being up.
            if !req.forwarded {
                match shared.cluster.route(key) {
                    Route::Peer(peer) => {
                        shared.metrics.route_forward_total.fetch_add(1, Ordering::Relaxed);
                        match shared.cluster.forward(peer, text) {
                            Ok(resp) => return Ok((resp, false)),
                            Err(_) => {
                                shared.metrics.forward_errors_total.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Route::Local => {
                        shared.metrics.route_local_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let (val, hit) = shared.cache.get_or_compute(key, || {
                let a = compute()?;
                Ok(Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact())
            })?;
            Ok((protocol::ok_response(kind, hit, &val, id), false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(shared: &Shared, line: &str) -> Json {
        let (resp, _) = process_line(line.as_bytes(), shared, Duration::ZERO);
        Json::parse(&resp).expect("response is valid JSON")
    }

    fn test_shared() -> Arc<Shared> {
        Arc::new(Shared::new(Config::default()))
    }

    const REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[64]\\nscalar s = 0  // printed\\nfor i = 0, 63\\n  s = (s + a[i])\\nend for\\n\"}";

    #[test]
    fn report_request_round_trips_and_caches() {
        let shared = test_shared();
        let first = process(&shared, REQ);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let text = first.get("result").and_then(|r| r.get("text")).and_then(|t| t.as_str());
        assert!(text.unwrap().contains("CPU utilisation bound"));

        let second = process(&shared, REQ);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.get("result"), second.get("result"), "hit must equal miss");
        assert_eq!(shared.cache.stats().hits, 1);
        assert_eq!(shared.metrics.requests_of(Kind::Report), 2);
    }

    #[test]
    fn formatting_differences_share_a_cache_entry() {
        let shared = test_shared();
        process(&shared, REQ);
        // Same program, different whitespace and a comment.
        let noisy = REQ.replace("array a[64]\\n", "array   a[64]   // demand\\n\\n");
        let resp = process(&shared, &noisy);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(true)), "{resp:?}");
    }

    #[test]
    fn parse_and_validate_errors_carry_distinct_codes() {
        let shared = test_shared();
        let bad_syntax = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"for i = 0, 3\\n  bogus[i] = 1\\nend for\\n\"}";
        let e = process(&shared, bad_syntax);
        let code = e.get("error").and_then(|x| x.get("code")).and_then(|c| c.as_str());
        assert_eq!(code, Some("parse"));

        let dup = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[16]\\nfor i = 0, 3\\n  for i = 0, 3\\n    a[i] = 1\\n  end for\\nend for\\n\"}";
        let e = process(&shared, dup);
        let err = e.get("error").unwrap();
        assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("validate"));
        assert_eq!(err.get("exit_code"), Some(&Json::UInt(4)));
        assert_eq!(shared.metrics.errors_of(ErrorKind::Parse), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Validate), 1);
        // Failed analyses must not occupy cache entries.
        assert_eq!(shared.cache.stats().entries, 0);
    }

    #[test]
    fn metrics_request_reports_the_traffic_so_far() {
        let shared = test_shared();
        process(&shared, REQ);
        let m = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"metrics\"}");
        let text = m
            .get("result")
            .and_then(|r| r.get("text"))
            .and_then(|t| t.as_str())
            .expect("metrics text");
        assert!(text.contains("mbb_serve_requests_total{kind=\"report\"} 1"), "{text}");
        assert!(text.contains("mbb_serve_cache_misses_total 1"), "{text}");
        assert!(text.contains("mbb_serve_route_total{dest=\"local\"} 1"), "{text}");
    }

    #[test]
    fn shutdown_request_flags_a_drain() {
        let shared = test_shared();
        let (resp, drain) = process_line(
            b"{\"schema\":\"mbb-serve/1\",\"kind\":\"shutdown\"}",
            &shared,
            Duration::ZERO,
        );
        assert!(drain);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("result").and_then(|r| r.get("draining")), Some(&Json::Bool(true)));
    }

    #[test]
    fn id_echo_pairs_responses_with_requests() {
        let shared = test_shared();
        let with_id = REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"id\":\"r-1\"");
        let resp = process(&shared, &with_id);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("r-1"), "{resp:?}");
        // The id is not part of the cache key: the id-less twin hits.
        let twin = process(&shared, REQ);
        assert_eq!(twin.get("cached"), Some(&Json::Bool(true)), "{twin:?}");
        assert!(twin.get("id").is_none(), "{twin:?}");

        // Errors after parse echo the id too, so pipelined failures still
        // pair up.
        let bad = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"id\":7,\"program\":\"for i = 0, 3\\n  bogus[i] = 1\\nend for\\n\"}";
        let e = process(&shared, bad);
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)), "{e:?}");
        assert_eq!(e.get("id"), Some(&Json::UInt(7)), "{e:?}");
        // Pre-parse failures have no id to echo.
        let garbage = process(&shared, "not json");
        assert_eq!(garbage.get("ok"), Some(&Json::Bool(false)), "{garbage:?}");
        assert!(garbage.get("id").is_none(), "{garbage:?}");
    }

    #[test]
    fn cluster_stats_reports_the_single_node_shape() {
        let shared = test_shared();
        let resp =
            process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"cluster-stats\",\"id\":1}");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("id"), Some(&Json::UInt(1)), "{resp:?}");
        let r = resp.get("result").expect("result");
        assert_eq!(r.get("schema").and_then(Json::as_str), Some("mbb-cluster-stats/1"));
        assert_eq!(r.get("nodes"), Some(&Json::UInt(0)));
        assert_eq!(r.get("forwarded_in"), Some(&Json::UInt(0)));
    }

    #[test]
    fn forwarded_requests_are_counted_and_never_reforwarded() {
        let me = "127.0.0.1:1".to_string();
        let peer = "127.0.0.1:2".to_string();
        let shared = Arc::new(Shared::new(Config {
            peers: vec![me.clone(), peer],
            advertise: me,
            ..Config::default()
        }));
        let fwd = REQ.replace("{\"schema\"", "{\"fwd\":true,\"schema\"");
        let resp = process(&shared, &fwd);
        // Served locally regardless of ring ownership: a relay is one hop.
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(shared.metrics.forwarded_in_total.load(Ordering::Relaxed), 1);
        assert_eq!(shared.cluster.forwarded_in(), 1);
        assert_eq!(shared.metrics.route_forward_total.load(Ordering::Relaxed), 0);
        assert_eq!(shared.metrics.route_local_total.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tier_mode_falls_back_to_local_when_the_peer_is_down() {
        let me = "127.0.0.1:1".to_string();
        let peer = "127.0.0.1:2".to_string();
        let shared = Arc::new(Shared::new(Config {
            peers: vec![me.clone(), peer],
            advertise: me,
            ..Config::default()
        }));
        let resp = process(&shared, REQ);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let local = shared.metrics.route_local_total.load(Ordering::Relaxed);
        let fwd = shared.metrics.route_forward_total.load(Ordering::Relaxed);
        assert_eq!(local + fwd, 1, "exactly one routing decision");
        if fwd == 1 {
            // The peer is down: the relay failed and the local fallback
            // still produced a full answer.
            assert_eq!(shared.metrics.forward_errors_total.load(Ordering::Relaxed), 1);
        }
        assert_eq!(shared.cache.stats().entries, 1, "fallback fills the local cache");
    }

    /// ~2.6M innermost iterations: quick unbudgeted, far over any small
    /// step quota.
    const BIG_REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"optimize\",\"program\":\"array a[8]\\nscalar s = 0  // printed\\nfor i = 0, 327679\\n  for j = 0, 7\\n    s = (s + a[j])\\n  end for\\nend for\\n\"}";

    fn error_code(resp: &Json) -> Option<String> {
        resp.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()).map(str::to_string)
    }

    #[test]
    fn config_step_cap_turns_unbounded_optimize_into_deadline_exceeded() {
        let shared =
            Arc::new(Shared::new(Config { request_max_steps: Some(4096), ..Config::default() }));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.errors_of(ErrorKind::DeadlineExceeded), 1);
        // Budget errors are not cached, and the worker serves normal
        // requests afterwards.
        assert_eq!(shared.cache.stats().entries, 0);
        let ok = process(&shared, REQ);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "{ok:?}");
    }

    #[test]
    fn envelope_budget_tightens_but_cannot_loosen_the_config_cap() {
        let shared = test_shared(); // default cap: 2^32 steps
        let tight = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize\",\"budget\":{\"max_steps\":4096}",
        );
        let resp = process(&shared, &tight);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");

        let shared =
            Arc::new(Shared::new(Config { request_max_steps: Some(4096), ..Config::default() }));
        let loose = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize\",\"budget\":{\"max_steps\":99999999999}",
        );
        let resp = process(&shared, &loose);
        assert_eq!(
            error_code(&resp).as_deref(),
            Some("deadline_exceeded"),
            "a client ask must not loosen the server cap: {resp:?}"
        );
    }

    #[test]
    fn effective_budget_takes_the_tighter_axis() {
        let cfg = Config {
            request_max_steps: Some(1000),
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        };
        let b =
            effective_budget(&cfg, RequestBudget { max_steps: Some(2000), deadline_ms: Some(10) });
        assert_eq!(b.max_steps, Some(1000));
        assert_eq!(b.wall, Some(Duration::from_millis(10)));
        let b = effective_budget(&cfg, RequestBudget::default());
        assert_eq!(b.max_steps, Some(1000));
        assert_eq!(b.wall, Some(Duration::from_millis(50)));
        let none = Config { request_max_steps: None, request_deadline: None, ..Config::default() };
        assert!(effective_budget(&none, RequestBudget::default()).is_unlimited());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_handler_panic_yields_internal_error_and_counts() {
        let _t = crate::faults::TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let shared = test_shared();
        let resp = {
            let _g = crate::faults::install(
                crate::faults::FaultPlan::new(3).rate(Site::HandlerPanic, 1024),
            );
            process(&shared, REQ)
        };
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(error_code(&resp).as_deref(), Some("internal"), "{resp:?}");
        assert_eq!(shared.metrics.panics_total.load(Ordering::Relaxed), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Internal), 1);
        // Disarmed again: the same request now succeeds on the same state.
        let ok = process(&shared, REQ);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "{ok:?}");
    }

    #[test]
    fn profiled_requests_carry_spans_and_bypass_the_cache() {
        let shared = test_shared();
        let profiled = REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"profile\":true");

        // Warm the cache with the plain request first.
        let plain = process(&shared, REQ);
        assert_eq!(plain.get("cached"), Some(&Json::Bool(false)));

        let resp = process(&shared, &profiled);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        // Same program + machine, but per-execution data: no cache read...
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        let result = resp.get("result").expect("result object");
        let profile = result.get("profile").expect("profile object in result");
        let Some(Json::Arr(spans)) = profile.get("spans") else {
            panic!("profile.spans array missing: {profile:?}");
        };
        let names: Vec<&str> =
            spans.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"measure"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("nest:")), "{names:?}");
        assert!(profile.get("nest_table").is_some(), "{profile:?}");
        // ...and the analysis text/data agree with the unprofiled answer.
        assert_eq!(result.get("text"), plain.get("result").and_then(|r| r.get("text")));
        assert_eq!(result.get("data"), plain.get("result").and_then(|r| r.get("data")));
        // ...and no cache write either: still just the plain entry.
        assert_eq!(shared.cache.stats().entries, 1);
        assert_eq!(shared.cache.stats().hits, 0);

        // Phase timings landed in the metrics (bounded span names only).
        let (_, count) = shared.metrics.phase_of("measure").expect("measure phase recorded");
        assert_eq!(count, 1);

        // A later plain request still hits the warm entry.
        let again = process(&shared, REQ);
        assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "{again:?}");
    }

    #[test]
    fn profiled_optimize_reports_before_and_after_tables() {
        let shared = test_shared();
        let req = REQ.replace("\"kind\":\"report\"", "\"kind\":\"optimize\",\"profile\":true");
        let resp = process(&shared, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let profile = resp.get("result").and_then(|r| r.get("profile")).expect("profile in result");
        assert!(profile.get("nest_table_before").is_some(), "{profile:?}");
        assert!(profile.get("nest_table_after").is_some(), "{profile:?}");
        assert_eq!(shared.cache.stats().entries, 0, "profiled runs must not populate the cache");
    }

    #[test]
    fn machine_scaling_does_not_collide_in_the_cache() {
        let shared = test_shared();
        let scaled =
            REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"machine\":\"origin/64\"");
        process(&shared, REQ);
        let resp = process(&shared, &scaled);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        // But the alias `origin2000` collapses onto `origin`.
        let alias =
            REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"machine\":\"origin2000\"");
        let resp = process(&shared, &alias);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(true)), "{resp:?}");
    }

    /// Two fusable nests: a producer into `res` and a reduction over it.
    const SEARCH_REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"optimize-search\",\"program\":\"array res[64]\\narray data[64]\\nscalar sum = 0  // printed\\nfor i = 0, 63\\n  res[i] = (res[i] + data[i])\\nend for\\nfor j = 0, 63\\n  sum = (sum + res[j])\\nend for\\n\",\"options\":{\"beam\":2,\"search_steps\":2}}";

    #[test]
    fn optimize_search_round_trips_and_repeats_byte_identically_from_cache() {
        let shared = test_shared();
        let (first_raw, _) = process_line(SEARCH_REQ.as_bytes(), &shared, Duration::ZERO);
        let first = Json::parse(&first_raw).expect("valid JSON");
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first:?}");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let result = first.get("result").expect("result in response");
        let text = result.get("text").and_then(|t| t.as_str()).expect("text in result");
        assert!(text.contains("winning sequence:"), "{text}");
        assert!(text.contains("equivalence:      verified"), "{text}");
        let search = result.get("data").and_then(|d| d.get("search")).expect("search stats");
        assert!(search.get("best_spec").is_some(), "{search:?}");
        assert!(search.get("fixed_spec").is_some(), "{search:?}");

        // A second identical request is a cache hit, and the response
        // bytes differ from the miss only in the `cached` flag.
        let (second_raw, _) = process_line(SEARCH_REQ.as_bytes(), &shared, Duration::ZERO);
        let second = Json::parse(&second_raw).expect("valid JSON");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        assert_eq!(
            first_raw.replace("\"cached\":false", "\"cached\":true"),
            second_raw,
            "cache hit must replay the response byte-for-byte"
        );
        assert_eq!(shared.cache.stats().hits, 1);
        assert_eq!(shared.metrics.requests_of(Kind::OptimizeSearch), 2);
    }

    #[test]
    fn queue_expiry_answers_deadline_exceeded_without_consulting_analysis() {
        let shared = Arc::new(Shared::new(Config {
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        }));
        // A program that *fails validation* (duplicate loop variable): if
        // the expired request ever reached `analysis::load`, the answer
        // would be a `validate` error, not `deadline_exceeded`.
        let invalid = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[16]\\nfor i = 0, 3\\n  for i = 0, 3\\n    a[i] = 1\\n  end for\\nend for\\n\"}";
        let (resp, _) = process_line(invalid.as_bytes(), &shared, Duration::from_millis(200));
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(error_code(&doc).as_deref(), Some("deadline_exceeded"), "{doc:?}");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("exit_code")),
            Some(&Json::UInt(6)),
            "{doc:?}"
        );
        assert_eq!(shared.metrics.shed_of(Class::Report, Reason::Expired), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Validate), 0, "analysis was consulted");
        assert_eq!(shared.cache.stats().entries, 0);
        // The same line un-aged is a plain validate error: the expiry
        // branch, not the program, produced the deadline answer.
        let fresh = process(&shared, invalid);
        assert_eq!(error_code(&fresh).as_deref(), Some("validate"), "{fresh:?}");
    }

    #[test]
    fn queue_age_tightens_the_remaining_wall_deadline() {
        // 50ms deadline minus 40ms queueing leaves ~10ms: far too little
        // for the ~2.6M-iteration program, so admission rejects it.
        let shared = Arc::new(Shared::new(Config {
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        }));
        let (resp, _) = process_line(BIG_REQ.as_bytes(), &shared, Duration::from_millis(40));
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(error_code(&doc).as_deref(), Some("deadline_exceeded"), "{doc:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 1);
    }

    #[test]
    fn admission_rejects_oversized_programs_and_can_be_disabled() {
        let cfg = Config { request_deadline: Some(Duration::from_millis(1)), ..Config::default() };
        let shared = Arc::new(Shared::new(cfg.clone()));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 1);
        let msg = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(|m| m.as_str())
            .unwrap_or_default()
            .to_string();
        assert!(msg.starts_with("admission:"), "{msg}");

        // With admission off the request runs and overruns the wall
        // deadline the hard way instead.
        let shared = Arc::new(Shared::new(Config { admission: false, ..cfg }));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 0);
    }

    #[test]
    fn class_thresholds_shed_low_priority_traffic_first() {
        let shared = Arc::new(Shared::new(Config { queue_depth: 10, ..Config::default() }));
        // Pretend the request queue sits at 7/10: past search (30%) and
        // optimize (60%), under report (90%) and admin (100%).
        shared.metrics.queue_depth.store(7, Ordering::Relaxed);
        let search = process(&shared, SEARCH_REQ);
        assert_eq!(error_code(&search).as_deref(), Some("busy"), "{search:?}");
        let opt = process(&shared, &REQ.replace("\"kind\":\"report\"", "\"kind\":\"optimize\""));
        assert_eq!(error_code(&opt).as_deref(), Some("busy"), "{opt:?}");
        let report = process(&shared, REQ);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)), "{report:?}");
        let health = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        assert_eq!(health.get("ok"), Some(&Json::Bool(true)), "{health:?}");
        assert_eq!(shared.metrics.shed_of(Class::Search, Reason::Saturation), 1);
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Saturation), 1);
        assert_eq!(shared.metrics.shed_of(Class::Report, Reason::Saturation), 0);
    }

    #[test]
    fn health_reports_status_level_and_shed_totals() {
        let shared = test_shared();
        let resp = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let r = resp.get("result").expect("result");
        assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(r.get("level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("max_level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("shed_total"), Some(&Json::UInt(0)));
        assert!(r.get("queue_pressure").is_some() && r.get("busy_pressure").is_some(), "{r:?}");

        // The high-water mark survives after the live level drops back.
        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        shared.metrics.brownout_level_max.fetch_max(2, Ordering::Relaxed);
        shared.metrics.brownout_level.store(0, Ordering::Relaxed);
        let resp = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        let r = resp.get("result").expect("result");
        assert_eq!(r.get("level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("max_level"), Some(&Json::UInt(2)));
    }

    #[test]
    fn brownout_level_one_drops_profile_and_marks_the_response_degraded() {
        let shared = test_shared();
        shared.metrics.brownout_level.store(1, Ordering::Relaxed);
        let profiled = REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"profile\":true");
        let resp = process(&shared, &profiled);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)));
        let degraded = resp.get("degraded").expect("degraded marker");
        assert_eq!(degraded.get("level"), Some(&Json::UInt(1)), "{degraded:?}");
        assert_eq!(
            degraded.get("actions"),
            Some(&Json::Arr(vec![Json::str("no-profile")])),
            "{degraded:?}"
        );
        // Profile splicing was skipped: no profile object in the result.
        assert!(resp.get("result").and_then(|r| r.get("profile")).is_none(), "{resp:?}");
        // Degraded responses bypass the cache entirely.
        assert_eq!(shared.cache.stats().entries, 0);
        assert_eq!(shared.metrics.degraded_of(DegradeAction::NoProfile), 1);
        // An unprofiled request at level 1 is untouched: cached, no marker.
        // (The controller re-publishes the live level after every request,
        // so pin it again for each request under test.)
        shared.metrics.brownout_level.store(1, Ordering::Relaxed);
        let plain = process(&shared, REQ);
        assert!(plain.get("degraded").is_none(), "{plain:?}");
        assert_eq!(plain.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(shared.cache.stats().entries, 1);
    }

    #[test]
    fn brownout_level_two_clamps_search_and_level_three_sheds_it() {
        let shared = test_shared();
        // Warm the cache at level 0 with a wide search.
        let wide = SEARCH_REQ.replace(
            "\"options\":{\"beam\":2,\"search_steps\":2}",
            "\"options\":{\"beam\":4,\"search_steps\":5}",
        );
        let (baseline_raw, _) = process_line(wide.as_bytes(), &shared, Duration::ZERO);
        let baseline = Json::parse(&baseline_raw).unwrap();
        assert_eq!(baseline.get("ok"), Some(&Json::Bool(true)), "{baseline:?}");

        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        let resp = process(&shared, &wide);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let degraded = resp.get("degraded").expect("degraded marker at level 2");
        assert_eq!(
            degraded.get("actions"),
            Some(&Json::Arr(vec![Json::str("search-clamp")])),
            "{degraded:?}"
        );
        // Clamped runs never read or write the cache, even with a warm
        // entry for the same request line.
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(shared.cache.stats().hits, 0);
        assert_eq!(shared.metrics.degraded_of(DegradeAction::SearchClamp), 1);
        // A request already within the clamp is served normally.  (Pin the
        // level again: the controller re-publishes it after each request.)
        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        let narrow = process(&shared, SEARCH_REQ);
        assert!(narrow.get("degraded").is_none(), "{narrow:?}");

        shared.metrics.brownout_level.store(3, Ordering::Relaxed);
        let shed = process(&shared, SEARCH_REQ);
        assert_eq!(error_code(&shed).as_deref(), Some("busy"), "{shed:?}");
        assert_eq!(shared.metrics.shed_of(Class::Search, Reason::Brownout), 1);
        // Higher classes still flow at level 3 (with the profile action
        // available but unused here).
        shared.metrics.brownout_level.store(3, Ordering::Relaxed);
        let report = process(&shared, REQ);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)), "{report:?}");

        // Back at level 0 the warm entry replays byte-identically.
        shared.metrics.brownout_level.store(0, Ordering::Relaxed);
        let (hit_raw, _) = process_line(wide.as_bytes(), &shared, Duration::ZERO);
        assert_eq!(
            baseline_raw.replace("\"cached\":false", "\"cached\":true"),
            hit_raw,
            "cache bytes must be untouched by intervening brown-out traffic"
        );
    }

    #[test]
    fn optimize_search_beam_variants_key_separately_but_defaults_collapse() {
        let shared = test_shared();
        process(&shared, SEARCH_REQ);
        // Different beam: a different search, so a different cache entry.
        let wider = SEARCH_REQ.replace("\"beam\":2", "\"beam\":3");
        let resp = process(&shared, &wider);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        // Spelling out the defaults collapses onto omitting them.
        let spelled = SEARCH_REQ.replace(
            "\"options\":{\"beam\":2,\"search_steps\":2}",
            "\"options\":{\"beam\":4,\"search_steps\":5}",
        );
        let explicit = process(&shared, &spelled);
        let implicit = process(
            &shared,
            &SEARCH_REQ.replace(",\"options\":{\"beam\":2,\"search_steps\":2}", ""),
        );
        assert_eq!(explicit.get("cached"), Some(&Json::Bool(false)), "{explicit:?}");
        assert_eq!(implicit.get("cached"), Some(&Json::Bool(true)), "{implicit:?}");
    }

    #[test]
    fn optimize_search_rejects_out_of_range_options() {
        let shared = test_shared();
        let huge = SEARCH_REQ.replace("\"beam\":2", "\"beam\":65");
        let resp = process(&shared, &huge);
        assert_eq!(error_code(&resp).as_deref(), Some("bad-request"), "{resp:?}");
        let zero = SEARCH_REQ.replace("\"search_steps\":2", "\"search_steps\":0");
        let resp = process(&shared, &zero);
        assert_eq!(error_code(&resp).as_deref(), Some("bad-request"), "{resp:?}");
    }

    #[test]
    fn optimize_search_honours_a_request_deadline() {
        let shared = test_shared();
        let big_search = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize-search\",\"budget\":{\"deadline_ms\":1}",
        );
        let resp = process(&shared, &big_search);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        let err = resp.get("error").expect("error payload");
        assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("deadline_exceeded"));
        assert_eq!(err.get("exit_code"), Some(&Json::UInt(6)));
        // Budget errors must not occupy cache entries.
        assert_eq!(shared.cache.stats().entries, 0);
    }
}
