//! The concurrent analysis service.
//!
//! Architecture (std only — no async runtime):
//!
//! * one acceptor thread runs a nonblocking `accept` poll loop so it can
//!   also watch the shutdown flag and the idle deadline;
//! * accepted connections go into a bounded queue; when the queue is
//!   full the connection is *shed* immediately with a structured busy
//!   response (the 429 of this protocol) rather than left to time out;
//! * a fixed pool of scoped worker threads pops connections and speaks
//!   newline-delimited `mbb-serve/1` on each, one request at a time,
//!   with per-read timeouts and a request-size limit;
//! * a `shutdown` admin request (or the idle timeout) flips one flag:
//!   the acceptor stops accepting, workers finish the queued
//!   connections' current requests, and [`serve`] returns.
//!
//! Analysis results flow through the sharded content-addressed
//! [`ResultCache`], so identical requests — concurrent or repeated —
//! simulate once and return bit-identical bytes.

use std::collections::VecDeque;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mbb_bench::json::Json;
use mbb_ir::budget::Budget;

use crate::analysis;
use crate::cache::ResultCache;
use crate::error::{ErrorKind, ServeError};
use crate::faults::{self, Site};
use crate::metrics::Metrics;
use crate::overload::{
    self, Brownout, BrownoutConfig, Class, DegradeAction, Reason, BROWNOUT_BEAM, BROWNOUT_STEPS,
    DEFAULT_CLASS_WEIGHTS,
};
use crate::protocol::{self, Kind, Line, RequestBudget};
use crate::sync::{lock, wait_timeout};

/// Server configuration (see `mbbc serve` for the CLI spelling).
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; port 0 picks a free port (reported via `on_ready`).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Result-cache capacity in bytes (0 disables storage).
    pub cache_bytes: u64,
    /// Accepted connections allowed to wait for a worker before new ones
    /// are shed with a busy response.
    pub queue_depth: usize,
    /// Per-connection read (and write) timeout.
    pub read_timeout: Duration,
    /// Maximum request-line length in bytes.
    pub max_request_bytes: usize,
    /// Exit after this long with no connections and no work (`None` =
    /// serve until a `shutdown` request).
    pub idle_timeout: Option<Duration>,
    /// Step-quota cap per request: the most innermost-loop iterations one
    /// request's analysis may interpret (`None` = unlimited).  A request
    /// envelope's own `budget.max_steps` can tighten this, never loosen
    /// it.  Overruns get a structured `deadline_exceeded` error.
    pub request_max_steps: Option<u64>,
    /// Wall-deadline cap per request, with the same tighten-only
    /// interaction with the envelope's `budget.deadline_ms`.
    pub request_deadline: Option<Duration>,
    /// Cost-based admission: reject a request whose estimated cost (from
    /// nest trip counts) cannot fit its remaining wall deadline, instead
    /// of burning a worker to discover the same overrun.
    pub admission: bool,
    /// Brown-out controller: under sustained pressure, progressively drop
    /// profile splicing, clamp search width/depth, and shed the lowest
    /// class (see `overload::Brownout`).
    pub brownout: bool,
    /// Per-[`Class`] queue-fullness thresholds, percent of `queue_depth`:
    /// a class is shed once the queue is more than this full.  Highest
    /// priority first; `[100, …]` keeps admin traffic unsheddable.
    pub class_weights: [u8; Class::ALL.len()],
    /// Per-request busy time treated as "at target" (pressure 1.0) by the
    /// brown-out controller's busy-time EWMA.
    pub brownout_target: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_bytes: 32 << 20,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            max_request_bytes: 1 << 20,
            idle_timeout: None,
            // ~4.3G innermost iterations: far above every paper workload,
            // but a guaranteed stop for an effectively unbounded nest.
            request_max_steps: Some(1 << 32),
            request_deadline: None,
            admission: true,
            brownout: true,
            class_weights: DEFAULT_CLASS_WEIGHTS,
            brownout_target: Duration::from_millis(250),
        }
    }
}

/// The budget a request actually runs under: per axis, the tighter of the
/// server's cap and the client's ask.
fn effective_budget(cfg: &Config, req: RequestBudget) -> Budget {
    let max_steps = match (cfg.request_max_steps, req.max_steps) {
        (Some(cap), Some(ask)) => Some(cap.min(ask)),
        (cap, ask) => cap.or(ask),
    };
    let ask_wall = req.deadline_ms.map(Duration::from_millis);
    let wall = match (cfg.request_deadline, ask_wall) {
        (Some(cap), Some(ask)) => Some(cap.min(ask)),
        (cap, ask) => cap.or(ask),
    };
    Budget { max_steps, wall }
}

struct Shared {
    cfg: Config,
    /// Accepted connections with their accept instant: a queue entry
    /// carries its deadline clock from accept time, so time spent waiting
    /// for a worker is charged against the request's wall budget.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: ResultCache,
    overload: Mutex<Brownout>,
}

impl Shared {
    fn new(cfg: Config) -> Shared {
        let workers = cfg.workers.max(1);
        // One shard per worker (rounded up to a power of two) keeps lock
        // contention off the fast path without over-allocating.
        let shards = workers.next_power_of_two().min(64);
        Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: ResultCache::new(cfg.cache_bytes, shards),
            overload: Mutex::new(Brownout::new(BrownoutConfig::default())),
            cfg,
        }
    }
}

/// A handle to a running server: metrics access and remote shutdown.
/// Handed to the `on_ready` callback; integration tests keep it to poll
/// gauges deterministically instead of racing the request path.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The live result cache (for its counters).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Initiates the same graceful drain as a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }
}

/// Runs the service until shut down.  `on_ready` receives the bound
/// address (resolving port 0) and a [`Handle`] once the listener exists —
/// after it returns, connections are being accepted.
pub fn serve(cfg: Config, on_ready: impl FnOnce(SocketAddr, Handle)) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared::new(cfg));
    on_ready(addr, Handle { shared: Arc::clone(&shared) });

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker(&shared));
        }
        let mut last_activity = Instant::now();
        let mut last_tick = Instant::now();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    last_activity = Instant::now();
                    shared.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                    let mut q = lock(&shared.queue);
                    if q.len() >= shared.cfg.queue_depth {
                        drop(q);
                        shared.metrics.count_shed_conn();
                        shed(stream, &shared);
                    } else {
                        q.push_back((stream, Instant::now()));
                        shared.metrics.queue_depth.store(q.len() as u64, Ordering::Relaxed);
                        drop(q);
                        shared.cv.notify_one();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Idle tick: decay the brown-out EWMAs while no
                    // requests complete, so a drained server walks back to
                    // level 0 instead of freezing at its storm level.
                    if shared.cfg.brownout && last_tick.elapsed() >= Duration::from_millis(50) {
                        last_tick = Instant::now();
                        observe_pressure(&shared, Duration::ZERO);
                    }
                    if let Some(idle) = shared.cfg.idle_timeout {
                        let quiet = shared.metrics.workers_busy.load(Ordering::Relaxed) == 0
                            && lock(&shared.queue).is_empty();
                        if quiet && last_activity.elapsed() >= idle {
                            shared.shutdown.store(true, Ordering::SeqCst);
                            continue;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // Wake every worker so it can observe the flag and drain out.
        shared.cv.notify_all();
    });
    Ok(())
}

/// Sheds a connection with the structured busy response.
fn shed(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.busy_total.fetch_add(1, Ordering::Relaxed);
    shared.metrics.count_error(ErrorKind::Busy);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut line = protocol::error_response(&ServeError::busy());
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// Worker loop: pop a connection, serve it, repeat; exit once shutdown is
/// flagged *and* the queue is drained.
///
/// Per-request panics are already caught in [`process_line`]; if one
/// still escapes `handle_conn` (a connection-level failure outside a
/// request), the worker counts a respawn and continues in place rather
/// than unwinding out of the pool — the loop *is* the respawned worker.
fn worker(shared: &Shared) {
    loop {
        let entry = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(e) = q.pop_front() {
                    shared.metrics.queue_depth.store(q.len() as u64, Ordering::Relaxed);
                    break Some(e);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = wait_timeout(&shared.cv, q, Duration::from_millis(100));
            }
        };
        let Some((stream, accepted_at)) = entry else { return };
        if faults::fire(Site::WorkerStall) {
            // Injected fault: the worker stalls with the connection
            // already popped, so queued requests age toward expiry.
            if let Some(d) = faults::handler_delay() {
                std::thread::sleep(d);
            }
        }
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_conn(stream, accepted_at, shared)
        }));
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.metrics.worker_respawns_total.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serves one connection: request lines in, response lines out, until
/// EOF, an unrecoverable framing error, a timeout, or shutdown.
fn handle_conn(stream: TcpStream, accepted_at: Instant, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.read_timeout));
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    // Only the connection's *first* request waited in the accept queue;
    // later requests on a kept-alive connection have a dedicated worker,
    // so their queue age is zero.
    let mut queued_since = Some(accepted_at);
    loop {
        if faults::fire(Site::ConnRead) {
            return; // injected fault: connection dropped mid-stream
        }
        match protocol::read_line_limited(&mut reader, shared.cfg.max_request_bytes) {
            Line::Eof | Line::Gone => return,
            Line::TooLarge => {
                let e = ServeError::new(
                    ErrorKind::TooLarge,
                    format!("request exceeds {} bytes", shared.cfg.max_request_bytes),
                );
                shared.metrics.count_error(e.kind);
                let mut resp = protocol::error_response(&e);
                resp.push('\n');
                let _ = writer.write_all(resp.as_bytes());
                return; // cannot resynchronise the line framing
            }
            Line::Full(line) => {
                if line.is_empty() {
                    continue; // tolerate keep-alive blank lines
                }
                let queue_age = queued_since.take().map(|t| t.elapsed()).unwrap_or_default();
                let (mut resp, drain) = process_line(&line, shared, queue_age);
                resp.push('\n');
                if faults::fire(Site::ConnWriteShort) {
                    // Injected fault: half a response, then a dropped
                    // connection.  The newline never arrives, so a client
                    // can not mistake the prefix for a frame.
                    let _ = writer.write_all(&resp.as_bytes()[..resp.len() / 2]);
                    return;
                }
                if writer.write_all(resp.as_bytes()).is_err() {
                    return;
                }
                if drain {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.cv.notify_all();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // finish this request, then close the door
                }
            }
        }
    }
}

/// Processes one request line; returns the response line (no newline)
/// and whether a graceful drain was requested.
///
/// This is the panic-isolation boundary: a panic anywhere in request
/// handling — a transform bug, a poisoned invariant, an injected fault —
/// is caught here and answered with a structured `internal` error, so the
/// connection and worker keep serving.
fn process_line(line: &[u8], shared: &Shared, queue_age: Duration) -> (String, bool) {
    let meter = mbb_bench::runner::Meter::start();
    let out =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| respond(line, shared, queue_age)));
    let busy = meter.finish().busy();
    shared.metrics.latency.observe(busy);
    observe_pressure(shared, busy);
    match out {
        Ok(Ok((resp, drain))) => (resp, drain),
        Ok(Err(e)) => {
            shared.metrics.count_error(e.kind);
            (protocol::error_response(&e), false)
        }
        Err(_panic) => {
            shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
            let e =
                ServeError::new(ErrorKind::Internal, "internal error: request handler panicked");
            shared.metrics.count_error(e.kind);
            (protocol::error_response(&e), false)
        }
    }
}

/// Feeds the brown-out controller one observation — queue fullness and a
/// busy-time reading (both normalised per-1024) — and publishes the
/// possibly-updated level for the lock-free request path.
fn observe_pressure(shared: &Shared, busy: Duration) {
    if !shared.cfg.brownout {
        return;
    }
    let cap = shared.cfg.queue_depth.max(1) as u64;
    let queue_frac = shared.metrics.queue_depth.load(Ordering::Relaxed).saturating_mul(1024) / cap;
    let target = shared.cfg.brownout_target.as_nanos().max(1) as u64;
    let busy_ns = busy.as_nanos().min(u64::MAX as u128) as u64;
    let busy_frac = busy_ns.saturating_mul(1024) / target;
    let level = lock(&shared.overload).observe(queue_frac, busy_frac);
    shared.metrics.brownout_level.store(level as u64, Ordering::Relaxed);
    shared.metrics.brownout_level_max.fetch_max(level as u64, Ordering::Relaxed);
}

fn respond(
    line: &[u8],
    shared: &Shared,
    queue_age: Duration,
) -> Result<(String, bool), ServeError> {
    if faults::fire(Site::HandlerDelay) {
        if let Some(d) = faults::handler_delay() {
            std::thread::sleep(d);
        }
    }
    if faults::fire(Site::HandlerPanic) {
        panic!("{}", faults::PANIC_PAYLOAD);
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ServeError::new(ErrorKind::BadRequest, "request is not UTF-8"))?;
    let req = protocol::parse_request(text)?;
    shared.metrics.count_request(req.kind);
    let class = Class::of(req.kind);
    // The published brown-out level.  Only the controller stores to this
    // gauge (and only when `cfg.brownout` is on), so it stays 0 when the
    // controller is disabled — but reading it unconditionally lets tests
    // pin a level without racing the controller.
    let level = shared.metrics.brownout_level.load(Ordering::Relaxed);
    match req.kind {
        Kind::Metrics => {
            let result = Json::obj([("text", Json::str(shared.metrics.render(&shared.cache)))])
                .render_compact();
            Ok((protocol::ok_response(Kind::Metrics, false, &result), false))
        }
        Kind::Shutdown => {
            let result = Json::obj([("draining", Json::Bool(true))]).render_compact();
            Ok((protocol::ok_response(Kind::Shutdown, false, &result), true))
        }
        Kind::Machines => {
            let a = analysis::machines();
            let result =
                Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact();
            Ok((protocol::ok_response(Kind::Machines, false, &result), false))
        }
        Kind::Health => {
            let ctl = lock(&shared.overload);
            let result = Json::obj([
                ("status", Json::str(ctl.status())),
                ("level", Json::UInt(ctl.level() as u64)),
                (
                    "max_level",
                    Json::UInt(shared.metrics.brownout_level_max.load(Ordering::Relaxed)),
                ),
                ("queue_pressure", Json::UInt(ctl.queue_ewma())),
                ("busy_pressure", Json::UInt(ctl.busy_ewma())),
                ("shed_total", Json::UInt(shared.metrics.shed_total())),
                ("brownout_enabled", Json::Bool(shared.cfg.brownout)),
            ])
            .render_compact();
            Ok((protocol::ok_response(Kind::Health, false, &result), false))
        }
        kind => {
            // Priority shedding: as the accept queue fills past a class's
            // threshold, that class is refused with a structured busy —
            // low classes give way first, admin traffic never does.
            let depth = shared.metrics.queue_depth.load(Ordering::Relaxed);
            let weight = u64::from(shared.cfg.class_weights[class.index()]);
            if depth * 100 > (shared.cfg.queue_depth as u64) * weight {
                shared.metrics.count_shed(class, Reason::Saturation);
                return Err(ServeError::new(
                    ErrorKind::Busy,
                    format!(
                        "shedding {} traffic: accept queue {depth}/{} is past the class threshold ({weight}%)",
                        class.as_str(),
                        shared.cfg.queue_depth
                    ),
                ));
            }
            // Brown-out level 3: the lowest class is shed outright.
            if level >= 3 && class == Class::Search {
                shared.metrics.count_shed(class, Reason::Brownout);
                return Err(ServeError::new(
                    ErrorKind::Busy,
                    "brown-out level 3: optimize-search is shed until pressure drops",
                ));
            }
            let src = req.program.as_deref().expect("enforced by parse_request");
            let mut opts = req.flags.to_options(&req.machine)?;
            opts.budget = effective_budget(&shared.cfg, req.budget);
            // The wall deadline has been running since accept: charge the
            // time this request spent queued, and answer expiry without
            // ever touching the analysis layer.
            if let Some(wall) = opts.budget.wall {
                if queue_age >= wall {
                    shared.metrics.count_shed(class, Reason::Expired);
                    return Err(ServeError::new(
                        ErrorKind::DeadlineExceeded,
                        format!(
                            "deadline of {}ms expired after {}ms in the accept queue",
                            wall.as_millis(),
                            queue_age.as_millis()
                        ),
                    ));
                }
                opts.budget.wall = Some(wall - queue_age);
            }
            opts.profile = req.profile;
            opts.engine = req.engine;
            let prog = analysis::load(src)?;
            // Cost-based admission: a request that cannot possibly finish
            // inside its remaining deadline is rejected up front.
            if shared.cfg.admission {
                if let Some(remaining) = opts.budget.wall {
                    let est = overload::estimate_cost_ms(&prog, kind);
                    if Duration::from_millis(est) > remaining {
                        shared.metrics.count_shed(class, Reason::Admission);
                        return Err(ServeError::new(
                            ErrorKind::DeadlineExceeded,
                            format!(
                                "admission: estimated cost ~{est}ms cannot fit the remaining {}ms deadline",
                                remaining.as_millis()
                            ),
                        ));
                    }
                }
            }
            // Search width/depth come from the flags (and are part of the
            // cache key via `Flags::key`); the seed stays at the crate
            // default so responses are a pure function of the request.
            let mut sp = analysis::SearchParams {
                beam: req
                    .flags
                    .beam
                    .map_or_else(|| analysis::SearchParams::default().beam, |b| b as usize),
                steps: req
                    .flags
                    .search_steps
                    .map_or_else(|| analysis::SearchParams::default().steps, |s| s as usize),
                ..analysis::SearchParams::default()
            };
            // Brown-out degradation: level 1 drops profile splicing,
            // level 2 also clamps search width/depth.  Either action makes
            // the response *degraded*: it carries an explicit marker and
            // bypasses the result cache in both directions (the profile
            // rule), so cached bytes stay identical at every level.
            let mut actions: Vec<DegradeAction> = Vec::new();
            if level >= 1 && opts.profile {
                opts.profile = false;
                actions.push(DegradeAction::NoProfile);
            }
            if level >= 2
                && kind == Kind::OptimizeSearch
                && (sp.beam > BROWNOUT_BEAM || sp.steps > BROWNOUT_STEPS)
            {
                sp.beam = sp.beam.min(BROWNOUT_BEAM);
                sp.steps = sp.steps.min(BROWNOUT_STEPS);
                actions.push(DegradeAction::SearchClamp);
            }
            let compute = || -> Result<analysis::Analysis, ServeError> {
                let a = match kind {
                    Kind::Report => analysis::report(&prog, &opts)?,
                    Kind::Advise => analysis::advise(&prog, &opts)?,
                    Kind::TraceStats => analysis::trace_stats(&prog, &opts)?,
                    Kind::Optimize => analysis::optimize(&prog, &opts)?.0,
                    Kind::OptimizeSearch => analysis::optimize_search(&prog, &opts, &sp)?.0,
                    _ => unreachable!("non-program kinds handled above"),
                };
                Ok(a)
            };
            if !actions.is_empty() {
                for &a in &actions {
                    shared.metrics.count_degraded(a);
                }
                let a = compute()?;
                let val =
                    Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact();
                let degraded = Json::obj([
                    ("level", Json::UInt(level)),
                    ("actions", Json::Arr(actions.iter().map(|a| Json::str(a.as_str())).collect())),
                ])
                .render_compact();
                return Ok((protocol::degraded_response(kind, &degraded, &val), false));
            }
            if req.profile {
                // Profiles describe *this* execution (wall/CPU time), so a
                // profiled request bypasses the cache in both directions:
                // it neither reads a cached result nor stores one.
                let a = compute()?;
                let mut pairs = vec![("text", Json::str(a.text)), ("data", a.data)];
                if let Some(p) = &a.profile {
                    shared.metrics.record_phases(p);
                    pairs.push(("profile", analysis::profile_json(p)));
                }
                let val = Json::obj(pairs).render_compact();
                return Ok((protocol::ok_response(kind, false, &val), false));
            }
            // Key on the *resolved* machine name (aliases collapse, scaled
            // variants stay distinct) and the canonical pretty-printed
            // program (formatting collapses).
            let canon = analysis::canonical_source(&prog);
            let key = mbb_core::canon::cache_key(
                kind.as_str(),
                &opts.machine.name,
                &req.flags.key(),
                &canon,
            );
            let (val, hit) = shared.cache.get_or_compute(key, || {
                let a = compute()?;
                Ok(Json::obj([("text", Json::str(a.text)), ("data", a.data)]).render_compact())
            })?;
            Ok((protocol::ok_response(kind, hit, &val), false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(shared: &Shared, line: &str) -> Json {
        let (resp, _) = process_line(line.as_bytes(), shared, Duration::ZERO);
        Json::parse(&resp).expect("response is valid JSON")
    }

    fn test_shared() -> Arc<Shared> {
        Arc::new(Shared::new(Config::default()))
    }

    const REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[64]\\nscalar s = 0  // printed\\nfor i = 0, 63\\n  s = (s + a[i])\\nend for\\n\"}";

    #[test]
    fn report_request_round_trips_and_caches() {
        let shared = test_shared();
        let first = process(&shared, REQ);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let text = first.get("result").and_then(|r| r.get("text")).and_then(|t| t.as_str());
        assert!(text.unwrap().contains("CPU utilisation bound"));

        let second = process(&shared, REQ);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(first.get("result"), second.get("result"), "hit must equal miss");
        assert_eq!(shared.cache.stats().hits, 1);
        assert_eq!(shared.metrics.requests_of(Kind::Report), 2);
    }

    #[test]
    fn formatting_differences_share_a_cache_entry() {
        let shared = test_shared();
        process(&shared, REQ);
        // Same program, different whitespace and a comment.
        let noisy = REQ.replace("array a[64]\\n", "array   a[64]   // demand\\n\\n");
        let resp = process(&shared, &noisy);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(true)), "{resp:?}");
    }

    #[test]
    fn parse_and_validate_errors_carry_distinct_codes() {
        let shared = test_shared();
        let bad_syntax = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"for i = 0, 3\\n  bogus[i] = 1\\nend for\\n\"}";
        let e = process(&shared, bad_syntax);
        let code = e.get("error").and_then(|x| x.get("code")).and_then(|c| c.as_str());
        assert_eq!(code, Some("parse"));

        let dup = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[16]\\nfor i = 0, 3\\n  for i = 0, 3\\n    a[i] = 1\\n  end for\\nend for\\n\"}";
        let e = process(&shared, dup);
        let err = e.get("error").unwrap();
        assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("validate"));
        assert_eq!(err.get("exit_code"), Some(&Json::UInt(4)));
        assert_eq!(shared.metrics.errors_of(ErrorKind::Parse), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Validate), 1);
        // Failed analyses must not occupy cache entries.
        assert_eq!(shared.cache.stats().entries, 0);
    }

    #[test]
    fn metrics_request_reports_the_traffic_so_far() {
        let shared = test_shared();
        process(&shared, REQ);
        let m = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"metrics\"}");
        let text = m
            .get("result")
            .and_then(|r| r.get("text"))
            .and_then(|t| t.as_str())
            .expect("metrics text");
        assert!(text.contains("mbb_serve_requests_total{kind=\"report\"} 1"), "{text}");
        assert!(text.contains("mbb_serve_cache_misses_total 1"), "{text}");
    }

    #[test]
    fn shutdown_request_flags_a_drain() {
        let shared = test_shared();
        let (resp, drain) = process_line(
            b"{\"schema\":\"mbb-serve/1\",\"kind\":\"shutdown\"}",
            &shared,
            Duration::ZERO,
        );
        assert!(drain);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("result").and_then(|r| r.get("draining")), Some(&Json::Bool(true)));
    }

    /// ~2.6M innermost iterations: quick unbudgeted, far over any small
    /// step quota.
    const BIG_REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"optimize\",\"program\":\"array a[8]\\nscalar s = 0  // printed\\nfor i = 0, 327679\\n  for j = 0, 7\\n    s = (s + a[j])\\n  end for\\nend for\\n\"}";

    fn error_code(resp: &Json) -> Option<String> {
        resp.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()).map(str::to_string)
    }

    #[test]
    fn config_step_cap_turns_unbounded_optimize_into_deadline_exceeded() {
        let shared =
            Arc::new(Shared::new(Config { request_max_steps: Some(4096), ..Config::default() }));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.errors_of(ErrorKind::DeadlineExceeded), 1);
        // Budget errors are not cached, and the worker serves normal
        // requests afterwards.
        assert_eq!(shared.cache.stats().entries, 0);
        let ok = process(&shared, REQ);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "{ok:?}");
    }

    #[test]
    fn envelope_budget_tightens_but_cannot_loosen_the_config_cap() {
        let shared = test_shared(); // default cap: 2^32 steps
        let tight = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize\",\"budget\":{\"max_steps\":4096}",
        );
        let resp = process(&shared, &tight);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");

        let shared =
            Arc::new(Shared::new(Config { request_max_steps: Some(4096), ..Config::default() }));
        let loose = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize\",\"budget\":{\"max_steps\":99999999999}",
        );
        let resp = process(&shared, &loose);
        assert_eq!(
            error_code(&resp).as_deref(),
            Some("deadline_exceeded"),
            "a client ask must not loosen the server cap: {resp:?}"
        );
    }

    #[test]
    fn effective_budget_takes_the_tighter_axis() {
        let cfg = Config {
            request_max_steps: Some(1000),
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        };
        let b =
            effective_budget(&cfg, RequestBudget { max_steps: Some(2000), deadline_ms: Some(10) });
        assert_eq!(b.max_steps, Some(1000));
        assert_eq!(b.wall, Some(Duration::from_millis(10)));
        let b = effective_budget(&cfg, RequestBudget::default());
        assert_eq!(b.max_steps, Some(1000));
        assert_eq!(b.wall, Some(Duration::from_millis(50)));
        let none = Config { request_max_steps: None, request_deadline: None, ..Config::default() };
        assert!(effective_budget(&none, RequestBudget::default()).is_unlimited());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_handler_panic_yields_internal_error_and_counts() {
        let _t = crate::faults::TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let shared = test_shared();
        let resp = {
            let _g = crate::faults::install(
                crate::faults::FaultPlan::new(3).rate(Site::HandlerPanic, 1024),
            );
            process(&shared, REQ)
        };
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(error_code(&resp).as_deref(), Some("internal"), "{resp:?}");
        assert_eq!(shared.metrics.panics_total.load(Ordering::Relaxed), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Internal), 1);
        // Disarmed again: the same request now succeeds on the same state.
        let ok = process(&shared, REQ);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "{ok:?}");
    }

    #[test]
    fn profiled_requests_carry_spans_and_bypass_the_cache() {
        let shared = test_shared();
        let profiled = REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"profile\":true");

        // Warm the cache with the plain request first.
        let plain = process(&shared, REQ);
        assert_eq!(plain.get("cached"), Some(&Json::Bool(false)));

        let resp = process(&shared, &profiled);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        // Same program + machine, but per-execution data: no cache read...
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        let result = resp.get("result").expect("result object");
        let profile = result.get("profile").expect("profile object in result");
        let Some(Json::Arr(spans)) = profile.get("spans") else {
            panic!("profile.spans array missing: {profile:?}");
        };
        let names: Vec<&str> =
            spans.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"measure"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("nest:")), "{names:?}");
        assert!(profile.get("nest_table").is_some(), "{profile:?}");
        // ...and the analysis text/data agree with the unprofiled answer.
        assert_eq!(result.get("text"), plain.get("result").and_then(|r| r.get("text")));
        assert_eq!(result.get("data"), plain.get("result").and_then(|r| r.get("data")));
        // ...and no cache write either: still just the plain entry.
        assert_eq!(shared.cache.stats().entries, 1);
        assert_eq!(shared.cache.stats().hits, 0);

        // Phase timings landed in the metrics (bounded span names only).
        let (_, count) = shared.metrics.phase_of("measure").expect("measure phase recorded");
        assert_eq!(count, 1);

        // A later plain request still hits the warm entry.
        let again = process(&shared, REQ);
        assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "{again:?}");
    }

    #[test]
    fn profiled_optimize_reports_before_and_after_tables() {
        let shared = test_shared();
        let req = REQ.replace("\"kind\":\"report\"", "\"kind\":\"optimize\",\"profile\":true");
        let resp = process(&shared, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let profile = resp.get("result").and_then(|r| r.get("profile")).expect("profile in result");
        assert!(profile.get("nest_table_before").is_some(), "{profile:?}");
        assert!(profile.get("nest_table_after").is_some(), "{profile:?}");
        assert_eq!(shared.cache.stats().entries, 0, "profiled runs must not populate the cache");
    }

    #[test]
    fn machine_scaling_does_not_collide_in_the_cache() {
        let shared = test_shared();
        let scaled =
            REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"machine\":\"origin/64\"");
        process(&shared, REQ);
        let resp = process(&shared, &scaled);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        // But the alias `origin2000` collapses onto `origin`.
        let alias =
            REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"machine\":\"origin2000\"");
        let resp = process(&shared, &alias);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(true)), "{resp:?}");
    }

    /// Two fusable nests: a producer into `res` and a reduction over it.
    const SEARCH_REQ: &str = "{\"schema\":\"mbb-serve/1\",\"kind\":\"optimize-search\",\"program\":\"array res[64]\\narray data[64]\\nscalar sum = 0  // printed\\nfor i = 0, 63\\n  res[i] = (res[i] + data[i])\\nend for\\nfor j = 0, 63\\n  sum = (sum + res[j])\\nend for\\n\",\"options\":{\"beam\":2,\"search_steps\":2}}";

    #[test]
    fn optimize_search_round_trips_and_repeats_byte_identically_from_cache() {
        let shared = test_shared();
        let (first_raw, _) = process_line(SEARCH_REQ.as_bytes(), &shared, Duration::ZERO);
        let first = Json::parse(&first_raw).expect("valid JSON");
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first:?}");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let result = first.get("result").expect("result in response");
        let text = result.get("text").and_then(|t| t.as_str()).expect("text in result");
        assert!(text.contains("winning sequence:"), "{text}");
        assert!(text.contains("equivalence:      verified"), "{text}");
        let search = result.get("data").and_then(|d| d.get("search")).expect("search stats");
        assert!(search.get("best_spec").is_some(), "{search:?}");
        assert!(search.get("fixed_spec").is_some(), "{search:?}");

        // A second identical request is a cache hit, and the response
        // bytes differ from the miss only in the `cached` flag.
        let (second_raw, _) = process_line(SEARCH_REQ.as_bytes(), &shared, Duration::ZERO);
        let second = Json::parse(&second_raw).expect("valid JSON");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        assert_eq!(
            first_raw.replace("\"cached\":false", "\"cached\":true"),
            second_raw,
            "cache hit must replay the response byte-for-byte"
        );
        assert_eq!(shared.cache.stats().hits, 1);
        assert_eq!(shared.metrics.requests_of(Kind::OptimizeSearch), 2);
    }

    #[test]
    fn queue_expiry_answers_deadline_exceeded_without_consulting_analysis() {
        let shared = Arc::new(Shared::new(Config {
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        }));
        // A program that *fails validation* (duplicate loop variable): if
        // the expired request ever reached `analysis::load`, the answer
        // would be a `validate` error, not `deadline_exceeded`.
        let invalid = "{\"schema\":\"mbb-serve/1\",\"kind\":\"report\",\"program\":\"array a[16]\\nfor i = 0, 3\\n  for i = 0, 3\\n    a[i] = 1\\n  end for\\nend for\\n\"}";
        let (resp, _) = process_line(invalid.as_bytes(), &shared, Duration::from_millis(200));
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(error_code(&doc).as_deref(), Some("deadline_exceeded"), "{doc:?}");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("exit_code")),
            Some(&Json::UInt(6)),
            "{doc:?}"
        );
        assert_eq!(shared.metrics.shed_of(Class::Report, Reason::Expired), 1);
        assert_eq!(shared.metrics.errors_of(ErrorKind::Validate), 0, "analysis was consulted");
        assert_eq!(shared.cache.stats().entries, 0);
        // The same line un-aged is a plain validate error: the expiry
        // branch, not the program, produced the deadline answer.
        let fresh = process(&shared, invalid);
        assert_eq!(error_code(&fresh).as_deref(), Some("validate"), "{fresh:?}");
    }

    #[test]
    fn queue_age_tightens_the_remaining_wall_deadline() {
        // 50ms deadline minus 40ms queueing leaves ~10ms: far too little
        // for the ~2.6M-iteration program, so admission rejects it.
        let shared = Arc::new(Shared::new(Config {
            request_deadline: Some(Duration::from_millis(50)),
            ..Config::default()
        }));
        let (resp, _) = process_line(BIG_REQ.as_bytes(), &shared, Duration::from_millis(40));
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(error_code(&doc).as_deref(), Some("deadline_exceeded"), "{doc:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 1);
    }

    #[test]
    fn admission_rejects_oversized_programs_and_can_be_disabled() {
        let cfg = Config { request_deadline: Some(Duration::from_millis(1)), ..Config::default() };
        let shared = Arc::new(Shared::new(cfg.clone()));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 1);
        let msg = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(|m| m.as_str())
            .unwrap_or_default()
            .to_string();
        assert!(msg.starts_with("admission:"), "{msg}");

        // With admission off the request runs and overruns the wall
        // deadline the hard way instead.
        let shared = Arc::new(Shared::new(Config { admission: false, ..cfg }));
        let resp = process(&shared, BIG_REQ);
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"), "{resp:?}");
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Admission), 0);
    }

    #[test]
    fn class_thresholds_shed_low_priority_traffic_first() {
        let shared = Arc::new(Shared::new(Config { queue_depth: 10, ..Config::default() }));
        // Pretend the accept queue sits at 7/10: past search (30%) and
        // optimize (60%), under report (90%) and admin (100%).
        shared.metrics.queue_depth.store(7, Ordering::Relaxed);
        let search = process(&shared, SEARCH_REQ);
        assert_eq!(error_code(&search).as_deref(), Some("busy"), "{search:?}");
        let opt = process(&shared, &REQ.replace("\"kind\":\"report\"", "\"kind\":\"optimize\""));
        assert_eq!(error_code(&opt).as_deref(), Some("busy"), "{opt:?}");
        let report = process(&shared, REQ);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)), "{report:?}");
        let health = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        assert_eq!(health.get("ok"), Some(&Json::Bool(true)), "{health:?}");
        assert_eq!(shared.metrics.shed_of(Class::Search, Reason::Saturation), 1);
        assert_eq!(shared.metrics.shed_of(Class::Optimize, Reason::Saturation), 1);
        assert_eq!(shared.metrics.shed_of(Class::Report, Reason::Saturation), 0);
    }

    #[test]
    fn health_reports_status_level_and_shed_totals() {
        let shared = test_shared();
        let resp = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let r = resp.get("result").expect("result");
        assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(r.get("level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("max_level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("shed_total"), Some(&Json::UInt(0)));
        assert!(r.get("queue_pressure").is_some() && r.get("busy_pressure").is_some(), "{r:?}");

        // The high-water mark survives after the live level drops back.
        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        shared.metrics.brownout_level_max.fetch_max(2, Ordering::Relaxed);
        shared.metrics.brownout_level.store(0, Ordering::Relaxed);
        let resp = process(&shared, "{\"schema\":\"mbb-serve/1\",\"kind\":\"health\"}");
        let r = resp.get("result").expect("result");
        assert_eq!(r.get("level"), Some(&Json::UInt(0)));
        assert_eq!(r.get("max_level"), Some(&Json::UInt(2)));
    }

    #[test]
    fn brownout_level_one_drops_profile_and_marks_the_response_degraded() {
        let shared = test_shared();
        shared.metrics.brownout_level.store(1, Ordering::Relaxed);
        let profiled = REQ.replace("\"kind\":\"report\"", "\"kind\":\"report\",\"profile\":true");
        let resp = process(&shared, &profiled);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)));
        let degraded = resp.get("degraded").expect("degraded marker");
        assert_eq!(degraded.get("level"), Some(&Json::UInt(1)), "{degraded:?}");
        assert_eq!(
            degraded.get("actions"),
            Some(&Json::Arr(vec![Json::str("no-profile")])),
            "{degraded:?}"
        );
        // Profile splicing was skipped: no profile object in the result.
        assert!(resp.get("result").and_then(|r| r.get("profile")).is_none(), "{resp:?}");
        // Degraded responses bypass the cache entirely.
        assert_eq!(shared.cache.stats().entries, 0);
        assert_eq!(shared.metrics.degraded_of(DegradeAction::NoProfile), 1);
        // An unprofiled request at level 1 is untouched: cached, no marker.
        // (The controller re-publishes the live level after every request,
        // so pin it again for each request under test.)
        shared.metrics.brownout_level.store(1, Ordering::Relaxed);
        let plain = process(&shared, REQ);
        assert!(plain.get("degraded").is_none(), "{plain:?}");
        assert_eq!(plain.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(shared.cache.stats().entries, 1);
    }

    #[test]
    fn brownout_level_two_clamps_search_and_level_three_sheds_it() {
        let shared = test_shared();
        // Warm the cache at level 0 with a wide search.
        let wide = SEARCH_REQ.replace(
            "\"options\":{\"beam\":2,\"search_steps\":2}",
            "\"options\":{\"beam\":4,\"search_steps\":5}",
        );
        let (baseline_raw, _) = process_line(wide.as_bytes(), &shared, Duration::ZERO);
        let baseline = Json::parse(&baseline_raw).unwrap();
        assert_eq!(baseline.get("ok"), Some(&Json::Bool(true)), "{baseline:?}");

        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        let resp = process(&shared, &wide);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let degraded = resp.get("degraded").expect("degraded marker at level 2");
        assert_eq!(
            degraded.get("actions"),
            Some(&Json::Arr(vec![Json::str("search-clamp")])),
            "{degraded:?}"
        );
        // Clamped runs never read or write the cache, even with a warm
        // entry for the same request line.
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        assert_eq!(shared.cache.stats().hits, 0);
        assert_eq!(shared.metrics.degraded_of(DegradeAction::SearchClamp), 1);
        // A request already within the clamp is served normally.  (Pin the
        // level again: the controller re-publishes it after each request.)
        shared.metrics.brownout_level.store(2, Ordering::Relaxed);
        let narrow = process(&shared, SEARCH_REQ);
        assert!(narrow.get("degraded").is_none(), "{narrow:?}");

        shared.metrics.brownout_level.store(3, Ordering::Relaxed);
        let shed = process(&shared, SEARCH_REQ);
        assert_eq!(error_code(&shed).as_deref(), Some("busy"), "{shed:?}");
        assert_eq!(shared.metrics.shed_of(Class::Search, Reason::Brownout), 1);
        // Higher classes still flow at level 3 (with the profile action
        // available but unused here).
        shared.metrics.brownout_level.store(3, Ordering::Relaxed);
        let report = process(&shared, REQ);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)), "{report:?}");

        // Back at level 0 the warm entry replays byte-identically.
        shared.metrics.brownout_level.store(0, Ordering::Relaxed);
        let (hit_raw, _) = process_line(wide.as_bytes(), &shared, Duration::ZERO);
        assert_eq!(
            baseline_raw.replace("\"cached\":false", "\"cached\":true"),
            hit_raw,
            "cache bytes must be untouched by intervening brown-out traffic"
        );
    }

    #[test]
    fn optimize_search_beam_variants_key_separately_but_defaults_collapse() {
        let shared = test_shared();
        process(&shared, SEARCH_REQ);
        // Different beam: a different search, so a different cache entry.
        let wider = SEARCH_REQ.replace("\"beam\":2", "\"beam\":3");
        let resp = process(&shared, &wider);
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");
        // Spelling out the defaults collapses onto omitting them.
        let spelled = SEARCH_REQ.replace(
            "\"options\":{\"beam\":2,\"search_steps\":2}",
            "\"options\":{\"beam\":4,\"search_steps\":5}",
        );
        let explicit = process(&shared, &spelled);
        let implicit = process(
            &shared,
            &SEARCH_REQ.replace(",\"options\":{\"beam\":2,\"search_steps\":2}", ""),
        );
        assert_eq!(explicit.get("cached"), Some(&Json::Bool(false)), "{explicit:?}");
        assert_eq!(implicit.get("cached"), Some(&Json::Bool(true)), "{implicit:?}");
    }

    #[test]
    fn optimize_search_rejects_out_of_range_options() {
        let shared = test_shared();
        let huge = SEARCH_REQ.replace("\"beam\":2", "\"beam\":65");
        let resp = process(&shared, &huge);
        assert_eq!(error_code(&resp).as_deref(), Some("bad-request"), "{resp:?}");
        let zero = SEARCH_REQ.replace("\"search_steps\":2", "\"search_steps\":0");
        let resp = process(&shared, &zero);
        assert_eq!(error_code(&resp).as_deref(), Some("bad-request"), "{resp:?}");
    }

    #[test]
    fn optimize_search_honours_a_request_deadline() {
        let shared = test_shared();
        let big_search = BIG_REQ.replace(
            "\"kind\":\"optimize\"",
            "\"kind\":\"optimize-search\",\"budget\":{\"deadline_ms\":1}",
        );
        let resp = process(&shared, &big_search);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
        let err = resp.get("error").expect("error payload");
        assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("deadline_exceeded"));
        assert_eq!(err.get("exit_code"), Some(&Json::UInt(6)));
        // Budget errors must not occupy cache entries.
        assert_eq!(shared.cache.stats().entries, 0);
    }
}
