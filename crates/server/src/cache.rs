//! Sharded, content-addressed result cache with single-flight computes.
//!
//! Keys are FNV-1a hashes of `(request kind, machine name, option flags,
//! canonical program text)` — the canonical text is the pretty-printer's
//! stable rendering, so two requests that differ only in formatting share
//! an entry.  Values are the compact-rendered `result` JSON, stored behind
//! `Arc` so a hit hands back the *same bytes* the miss produced —
//! responses are bit-identical by construction.
//!
//! Concurrency: the key space is split over shards, each behind its own
//! mutex, so unrelated requests never contend.  Within a shard an
//! *in-flight* registry gives single-flight semantics: when several
//! clients ask for the same uncomputed key at once, one computes and the
//! rest block on a condvar and then read the fresh entry — the simulation
//! runs once.  Failed computes are not cached; a waiter whose leader
//! failed retries as the new leader.
//!
//! Eviction is least-recently-used under a byte budget, approximated with
//! a logical clock per shard: each hit stamps the entry, and eviction
//! removes the oldest stamps until the shard fits.
//!
//! In a shard tier ([`cluster`](crate::cluster)) each node keeps its own
//! cache; coherence comes from routing, not replication — the
//! consistent-hash ring sends every key to one owning node, so the tier
//! as a whole fills one entry per unique key and serves the same bytes
//! from every member.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{ErrorKind, ServeError};
use crate::faults::{self, Site};
use crate::sync::{lock, wait};

/// 64-bit FNV-1a over a byte string.  Delegates to the shared
/// [`mbb_core::canon`] definition so every content-addressed cache in the
/// workspace (this result cache, the search score cache) hashes
/// identically; kept as a re-export for existing callers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    mbb_core::canon::fnv1a(bytes)
}

/// Per-entry bookkeeping overhead charged against the byte budget (key,
/// stamps, map slot) — approximate, but it keeps a flood of tiny entries
/// from being "free".
const ENTRY_OVERHEAD: u64 = 64;

struct Entry {
    val: Arc<String>,
    bytes: u64,
    stamp: u64,
}

struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    inflight: HashMap<u64, Arc<Flight>>,
    bytes: u64,
    clock: u64,
}

impl Shard {
    fn evict_to(&mut self, budget: u64, entries: &AtomicU64, bytes: &AtomicU64) {
        while self.bytes > budget {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            let e = self.entries.remove(&victim).expect("victim chosen from map");
            self.bytes -= e.bytes;
            entries.fetch_sub(1, Ordering::Relaxed);
            bytes.fetch_sub(e.bytes, Ordering::Relaxed);
        }
    }
}

/// The cache. All counters are monotonic except the `entries`/`bytes`
/// gauges.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a stored or in-flight result.
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// Live entries.
    pub entries: u64,
    /// Bytes charged against the budget.
    pub bytes: u64,
}

impl ResultCache {
    /// A cache bounded by `capacity_bytes` split over `shards` locks.
    /// Capacity 0 disables storage (every request computes) but keeps the
    /// counters, so a cacheless server still reports a 0% hit rate rather
    /// than lying.
    pub fn new(capacity_bytes: u64, shards: usize) -> ResultCache {
        let n = shards.max(1);
        ResultCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: capacity_bytes / n as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits pick the shard; low bits already vary per key.
        &self.shards[(key >> 32) as usize % self.shards.len()]
    }

    /// Returns the cached value for `key`, or runs `compute` to fill it.
    /// The boolean is `true` on a hit (including waiting on another
    /// thread's in-flight compute). Errors are returned uncached.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<String, ServeError>,
    ) -> Result<(Arc<String>, bool), ServeError> {
        let shard = self.shard(key);
        loop {
            let flight = {
                let mut s = lock(shard);
                if s.entries.contains_key(&key) {
                    s.clock += 1;
                    let stamp = s.clock;
                    let e = s.entries.get_mut(&key).expect("entry just seen");
                    e.stamp = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&e.val), true));
                }
                match s.inflight.get(&key) {
                    Some(f) => Arc::clone(f),
                    None => {
                        let f = Arc::new(Flight { done: Mutex::new(false), cv: Condvar::new() });
                        s.inflight.insert(key, Arc::clone(&f));
                        drop(s);
                        return self.lead(key, compute);
                    }
                }
            };
            // Another thread is computing this key: wait for it, then loop
            // to read the entry (or take over leadership if it failed).
            let mut done = lock(&flight.done);
            while !*done {
                done = wait(&flight.cv, done);
            }
            drop(done);
            let mut s = lock(shard);
            if s.entries.contains_key(&key) {
                s.clock += 1;
                let stamp = s.clock;
                let e = s.entries.get_mut(&key).expect("entry just seen");
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&e.val), true));
            }
            // Leader failed (or the entry was evicted under extreme
            // pressure): retry from the top as a potential new leader.
        }
    }

    /// Leader path: compute outside the shard lock, publish, wake waiters.
    ///
    /// The compute runs under `catch_unwind`: if it panics, the in-flight
    /// entry is still removed and the waiters still woken (they retry as
    /// new leaders) before the panic resumes — otherwise one panicking
    /// compute would wedge every concurrent request for the same key.
    fn lead(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<String, ServeError>,
    ) -> Result<(Arc<String>, bool), ServeError> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = if faults::fire(Site::CacheCompute) {
            Ok(Err(ServeError::new(ErrorKind::Internal, "injected fault: cache compute failed")))
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
        };
        let shard = self.shard(key);
        let mut s = lock(shard);
        let flight = s.inflight.remove(&key).expect("leader owns the flight");
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                drop(s);
                *lock(&flight.done) = true;
                flight.cv.notify_all();
                std::panic::resume_unwind(payload);
            }
        };
        let out = match result {
            Ok(text) => {
                let val = Arc::new(text);
                let cost = val.len() as u64 + ENTRY_OVERHEAD;
                // Values larger than a whole shard can never fit; serve
                // them uncached rather than flushing everything else.
                if self.shard_budget > 0 && cost <= self.shard_budget {
                    s.clock += 1;
                    let stamp = s.clock;
                    s.entries.insert(key, Entry { val: Arc::clone(&val), bytes: cost, stamp });
                    s.bytes += cost;
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    self.bytes.fetch_add(cost, Ordering::Relaxed);
                    s.evict_to(self.shard_budget, &self.entries, &self.bytes);
                }
                Ok((val, false))
            }
            Err(e) => Err(e),
        };
        drop(s);
        *lock(&flight.done) = true;
        flight.cv.notify_all();
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn fnv_distinguishes_close_inputs() {
        assert_ne!(fnv1a(b"report\0origin"), fnv1a(b"advise\0origin"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn second_lookup_hits_and_returns_the_same_arc() {
        let c = ResultCache::new(1 << 20, 4);
        let (a, hit_a) = c.get_or_compute(42, || Ok("payload".into())).unwrap();
        let (b, hit_b) = c.get_or_compute(42, || panic!("must not recompute")).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the miss's bytes");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let c = ResultCache::new(1 << 20, 4);
        let e = c.get_or_compute(7, || Err(ServeError::new(ErrorKind::Run, "boom"))).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Run);
        let (_, hit) = c.get_or_compute(7, || Ok("fine".into())).unwrap();
        assert!(!hit, "a failed compute must not satisfy later requests");
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // One shard, room for about two of these entries.
        let cost = 100 + ENTRY_OVERHEAD;
        let c = ResultCache::new(2 * cost + 10, 1);
        let payload = "x".repeat(100);
        for key in 0..3u64 {
            c.get_or_compute(key, || Ok(payload.clone())).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.entries, 2, "{s:?}");
        assert!(s.bytes <= 2 * cost + 10, "{s:?}");
        // Key 0 was the oldest and should be gone; 2 should hit.
        let (_, hit2) = c.get_or_compute(2, || Ok(payload.clone())).unwrap();
        assert!(hit2);
        let (_, hit0) = c.get_or_compute(0, || Ok(payload.clone())).unwrap();
        assert!(!hit0, "oldest entry should have been evicted");
    }

    #[test]
    fn hits_refresh_recency() {
        let cost = 100 + ENTRY_OVERHEAD;
        let c = ResultCache::new(2 * cost + 10, 1);
        let payload = "x".repeat(100);
        c.get_or_compute(0, || Ok(payload.clone())).unwrap();
        c.get_or_compute(1, || Ok(payload.clone())).unwrap();
        c.get_or_compute(0, || Ok(payload.clone())).unwrap(); // refresh 0
        c.get_or_compute(2, || Ok(payload.clone())).unwrap(); // evicts 1
        let (_, hit0) = c.get_or_compute(0, || Ok(payload.clone())).unwrap();
        assert!(hit0, "refreshed entry must survive");
        let (_, hit1) = c.get_or_compute(1, || Ok(payload.clone())).unwrap();
        assert!(!hit1, "stale entry must be the victim");
    }

    #[test]
    fn oversized_values_are_served_but_not_stored() {
        let c = ResultCache::new(64, 1);
        let big = "y".repeat(1000);
        let (v, hit) = c.get_or_compute(5, || Ok(big.clone())).unwrap();
        assert!(!hit);
        assert_eq!(*v, big);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bytes, 0);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let c = Arc::new(ResultCache::new(1 << 20, 4));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (v, _) = c
                    .get_or_compute(99, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok("slow".into())
                    })
                    .unwrap();
                assert_eq!(*v, "slow");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight violated");
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn panicking_compute_does_not_wedge_waiters() {
        let c = Arc::new(ResultCache::new(1 << 20, 1));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let c = Arc::clone(&c);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    c.get_or_compute(11, || {
                        gate.wait(); // waiter is queued behind this flight
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("compute exploded");
                    })
                }));
                assert!(r.is_err(), "the panic must propagate to the leader");
            })
        };
        gate.wait();
        // This call joins the in-flight compute; when the leader panics it
        // must wake up, retry as the new leader, and succeed.
        let (v, _) = c.get_or_compute(11, || Ok("recovered".into())).unwrap();
        assert_eq!(*v, "recovered");
        leader.join().unwrap();
        // No stale flight remains: a fresh request is an ordinary hit.
        let (_, hit) = c.get_or_compute(11, || panic!("must not recompute")).unwrap();
        assert!(hit);
    }

    #[test]
    fn zero_capacity_disables_storage_but_counts() {
        let c = ResultCache::new(0, 2);
        c.get_or_compute(1, || Ok("a".into())).unwrap();
        let (_, hit) = c.get_or_compute(1, || Ok("a".into())).unwrap();
        assert!(!hit);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().entries, 0);
    }
}
