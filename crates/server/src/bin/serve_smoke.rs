//! CI smoke driver for a running `mbbc serve` instance.
//!
//! ```text
//! serve_smoke ADDR
//! ```
//!
//! Drives one request of every kind through the blocking client, repeats
//! one to assert a cache hit with bit-identical bytes, scrapes the
//! metrics exposition, and shuts the server down via the admin request.
//! Exits nonzero (printing what failed) on any deviation, so the CI job
//! is a single process invocation.

use std::process::ExitCode;
use std::time::Duration;

use mbb_bench::json::Json;
use mbb_server::client::{expect_ok, Client, Pipeline};

const PROGRAM: &str = "array res[4096]\narray data[4096]\nscalar sum = 0  // printed\nfor i = 0, 4095\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 4095\n  sum = (sum + res[j])\nend for\n";

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("check failed: {what}"))
    }
}

fn drive(addr: &str) -> Result<(), String> {
    let mut c = Client::connect(addr, Duration::from_secs(60))
        .map_err(|e| format!("connect {addr}: {e}"))?;

    // One request of each analysis kind plus the catalogue.
    let mut first_report = None;
    for kind in ["report", "advise", "optimize", "trace-stats"] {
        let resp = c.analyze(kind, PROGRAM, "origin").map_err(|e| format!("{kind}: {e}"))?;
        expect_ok(&resp).map_err(|e| format!("{kind}: {e}"))?;
        let text = resp
            .get("result")
            .and_then(|r| r.get("text"))
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("{kind}: response without result.text"))?;
        check(!text.is_empty(), "analysis text nonempty")?;
        check(resp.get("cached") == Some(&Json::Bool(false)), "first request uncached")?;
        if kind == "report" {
            first_report = Some(resp.get("result").cloned());
        }
        println!("serve_smoke: {kind} ok ({} text bytes)", text.len());
    }
    let resp = c
        .roundtrip(&mbb_server::client::request("machines", None, ""))
        .map_err(|e| e.to_string())?;
    expect_ok(&resp).map_err(|e| format!("machines: {e}"))?;
    println!("serve_smoke: machines ok");

    // The overload-status admin kind: a lightly-loaded server is healthy.
    let resp =
        c.roundtrip(&mbb_server::client::request("health", None, "")).map_err(|e| e.to_string())?;
    expect_ok(&resp).map_err(|e| format!("health: {e}"))?;
    let h = resp.get("result").ok_or("health: response without result")?;
    check(h.get("status").and_then(Json::as_str) == Some("ok"), "health status is ok")?;
    check(h.get("level") == Some(&Json::UInt(0)), "brown-out level is 0")?;
    check(h.get("max_level") == Some(&Json::UInt(0)), "high-water level is 0 when never loaded")?;
    check(h.get("shed_total").is_some(), "health carries shed_total")?;
    println!("serve_smoke: health ok");

    // The cluster-stats admin kind: a standalone server reports the
    // single-node shape of the mbb-cluster-stats/1 schema.
    let resp = c
        .roundtrip(&mbb_server::client::request("cluster-stats", None, ""))
        .map_err(|e| e.to_string())?;
    expect_ok(&resp).map_err(|e| format!("cluster-stats: {e}"))?;
    let s = resp.get("result").ok_or("cluster-stats: response without result")?;
    check(
        s.get("schema").and_then(Json::as_str) == Some("mbb-cluster-stats/1"),
        "cluster-stats schema marker",
    )?;
    check(s.get("forwarded_in").is_some(), "cluster-stats carries forwarded_in")?;
    check(s.get("nodes") == Some(&Json::UInt(0)), "standalone server reports 0 tier nodes")?;
    println!("serve_smoke: cluster-stats ok");

    // Pipelining: two in-flight requests on one connection, answered with
    // byte-faithful id echoes so the responses pair up.
    let mut p =
        Pipeline::connect(addr, Duration::from_secs(60)).map_err(|e| format!("pipeline: {e}"))?;
    let m = mbb_server::client::request("machines", None, "");
    p.send(&m, 7).map_err(|e| format!("pipeline send: {e}"))?;
    p.send(&m, 8).map_err(|e| format!("pipeline send: {e}"))?;
    let by_id = p.drain().map_err(|e| format!("pipeline drain: {e}"))?;
    check(by_id.len() == 2, "both pipelined responses arrived")?;
    for id in [7u64, 8] {
        let resp = by_id.get(&id).ok_or_else(|| format!("pipeline: id {id} not echoed"))?;
        expect_ok(resp).map_err(|e| format!("pipeline id {id}: {e}"))?;
        check(
            resp.get("kind").and_then(Json::as_str) == Some("machines"),
            "pipelined response pairs with its request",
        )?;
    }
    println!("serve_smoke: pipelined id echo ok");

    // Repeat: must be a cache hit with bit-identical result payload.
    let again = c.analyze("report", PROGRAM, "origin").map_err(|e| format!("repeat: {e}"))?;
    expect_ok(&again).map_err(|e| format!("repeat: {e}"))?;
    check(again.get("cached") == Some(&Json::Bool(true)), "repeated request is a cache hit")?;
    check(
        again.get("result").cloned() == first_report.flatten(),
        "cache hit is bit-identical to the original result",
    )?;
    println!("serve_smoke: repeat is a cache hit");

    // A distinct-exit-code probe: a syntax error must come back as code
    // `parse` / exit_code 3 without closing the connection.
    let bad = c
        .analyze("report", "for i = 0, 3\n  bogus[i] = 1\nend for\n", "origin")
        .map_err(|e| format!("bad program: {e}"))?;
    let code =
        bad.get("error").and_then(|e| e.get("code")).and_then(|x| x.as_str()).unwrap_or("<none>");
    check(code == "parse", "syntax error surfaces as code=parse")?;
    println!("serve_smoke: parse error classified");

    // Scrape metrics and sanity-check the counters we just generated.
    let metrics = c.metrics_text().map_err(|e| format!("metrics: {e}"))?;
    for needle in [
        "mbb_serve_requests_total{kind=\"report\"} 3",
        "mbb_serve_requests_total{kind=\"optimize\"} 1",
        "mbb_serve_errors_total{code=\"parse\"} 1",
        "mbb_serve_cache_hits_total 1",
        "mbb_serve_request_cpu_seconds_count",
        "mbb_serve_requests_total{kind=\"health\"} 1",
        "mbb_serve_requests_total{kind=\"cluster-stats\"} 1",
        "mbb_serve_requests_total{kind=\"machines\"} 3",
        // 4 first-pass analyses + the repeat; admin kinds never route.
        "mbb_serve_route_total{dest=\"local\"} 5",
        "mbb_serve_route_total{dest=\"forward\"} 0",
        "mbb_serve_forwarded_in_total 0",
        "mbb_serve_connections_open",
        "mbb_serve_brownout_level",
        "mbb_serve_shed_total",
    ] {
        check(metrics.contains(needle), &format!("metrics contain `{needle}`"))
            .map_err(|e| format!("{e}\n--- scrape ---\n{metrics}"))?;
    }
    println!("serve_smoke: metrics scrape ok");

    c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("serve_smoke: shutdown acknowledged");
    Ok(())
}

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: serve_smoke ADDR");
        return ExitCode::from(2);
    };
    match drive(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_smoke: {e}");
            ExitCode::FAILURE
        }
    }
}
