//! CI smoke driver for a running shard tier.
//!
//! ```text
//! cluster_smoke ADDR1 ADDR2 [ADDR3 …]
//! ```
//!
//! Spins up an in-process *single-node* reference server, drives one
//! corpus of analysis requests through it, then drives the same corpus
//! through every tier node twice and checks the tier against the
//! reference:
//!
//! * **byte-identity** — every tier response carries result bytes
//!   identical to the single-node run, whether it was computed locally,
//!   relayed to the owning shard, or served from a peer's cache;
//! * **shard coherence** — duplicate keys resolve to one shard: the
//!   tier-wide cache-miss total stays within 110% of the unique-key
//!   count (the issue's "≥90% of duplicates resolved by exactly one
//!   shard" bound), and at least one cache hit arrives via forwarding;
//! * **stats reconciliation** — each node's `cluster-stats` response
//!   agrees with its own `mbb_serve_*` Prometheus counters, and
//!   tier-wide forwarded-out equals tier-wide forwarded-in.
//!
//! On any divergence the driver writes per-node transcripts (request and
//! response lines, in order) under `$CLUSTER_SMOKE_ARTIFACTS` (default
//! `cluster-smoke-artifacts/`) and prints a replay command, then exits
//! nonzero so the CI lane fails with the evidence attached.

use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use mbb_bench::json::Json;
use mbb_server::client::{expect_ok, request, Client};
use mbb_server::server::{serve, Config};

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";
const SAXPY: &str = "program saxpy\narray x[512]\narray y[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  y[i] = (y[i] + (2 * x[i]))\nend for\nfor j = 0, 511\n  s = (s + y[j])\nend for\n";
const STRIDE: &str = "program stride\narray m[4096]\nscalar acc = 0  // printed\nfor i = 0, 511\n  acc = (acc + m[8 * i])\nend for\n";

const KINDS: [&str; 3] = ["report", "trace-stats", "advise"];
const PROGRAMS: [&str; 4] = [SUM, FIG7, SAXPY, STRIDE];

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("check failed: {what}"))
    }
}

/// Pulls the first sample whose exposition line starts with `name` +
/// space out of a Prometheus scrape.
fn sample(scrape: &str, name: &str) -> Result<u64, String> {
    scrape
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .ok_or_else(|| format!("metric {name} missing from scrape"))
}

fn uint(j: Option<&Json>, what: &str) -> Result<u64, String> {
    match j {
        Some(Json::UInt(n)) => Ok(*n),
        other => Err(format!("{what}: expected a uint, got {other:?}")),
    }
}

/// One corpus pass through one node; appends to that node's transcript
/// and to `responses[entry]`.
fn drive_pass(
    addr: &str,
    transcript: &mut Vec<String>,
    responses: &mut [Vec<String>],
) -> Result<(), String> {
    let mut c = Client::connect(addr, Duration::from_secs(60))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    for (ci, (kind, program)) in corpus().enumerate() {
        let req = request(kind, Some(program), "origin");
        transcript.push(format!("> {}", req.render_compact()));
        let resp = c.roundtrip(&req).map_err(|e| format!("{addr} entry {ci}: {e}"))?;
        transcript.push(format!("< {}", resp.render_compact()));
        expect_ok(&resp).map_err(|e| format!("{addr} entry {ci}: {e}"))?;
        let result = resp.get("result").ok_or_else(|| format!("{addr} entry {ci}: no result"))?;
        responses[ci].push(result.render_compact());
    }
    Ok(())
}

fn corpus() -> impl Iterator<Item = (&'static str, &'static str)> {
    KINDS.iter().flat_map(|&k| PROGRAMS.iter().map(move |&p| (k, p)))
}

fn drive(nodes: &[String], transcripts: &mut [Vec<String>]) -> Result<(), String> {
    let unique = KINDS.len() * PROGRAMS.len();

    // The single-node reference: same crate, same analysis code, no tier.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        serve(Config { workers: 2, ..Config::default() }, move |addr, handle| {
            tx.send((addr, handle)).unwrap()
        })
        .unwrap();
    });
    let (ref_addr, ref_handle) = rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "reference server did not come up".to_string())?;
    let mut reference = vec![Vec::new(); unique];
    let mut ref_transcript = Vec::new();
    drive_pass(&ref_addr.to_string(), &mut ref_transcript, &mut reference)?;
    println!("cluster_smoke: single-node reference computed {unique} corpus entries");

    // Two full passes through every tier node.  Pass 1 fills the tier's
    // caches (one shard per key); pass 2 is all hits, many forwarded.
    let mut responses: Vec<Vec<String>> = vec![Vec::new(); unique];
    for pass in 0..2 {
        for (ni, addr) in nodes.iter().enumerate() {
            drive_pass(addr, &mut transcripts[ni], &mut responses)
                .map_err(|e| format!("pass {pass}: {e}"))?;
        }
        println!("cluster_smoke: pass {pass} done ({} requests)", unique * nodes.len());
    }

    // Byte-identity: every tier response — any node, any pass, local or
    // forwarded, hit or miss — matches the single-node reference bytes.
    for (ci, all) in responses.iter().enumerate() {
        for (ri, r) in all.iter().enumerate() {
            check(
                r == &reference[ci][0],
                &format!("corpus entry {ci} response {ri} is byte-identical to single-node"),
            )?;
        }
    }
    println!("cluster_smoke: byte-identity holds for {} tier responses", unique * nodes.len() * 2);

    // Per-node metrics: scrape once, then reconcile (a) the tier-wide
    // miss bound, (b) routing identities, (c) cluster-stats totals.
    let per_pass = unique as u64;
    let mut total_misses = 0u64;
    let mut fwd_out = 0u64;
    let mut fwd_in = 0u64;
    for (ni, addr) in nodes.iter().enumerate() {
        let mut c = Client::connect(addr, Duration::from_secs(30))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let scrape = c.metrics_text().map_err(|e| format!("{addr}: metrics: {e}"))?;
        let local = sample(&scrape, "mbb_serve_route_total{dest=\"local\"}")?;
        let forward = sample(&scrape, "mbb_serve_route_total{dest=\"forward\"}")?;
        let fwd_err = sample(&scrape, "mbb_serve_forward_errors_total")?;
        let forwarded_in = sample(&scrape, "mbb_serve_forwarded_in_total")?;
        total_misses += sample(&scrape, "mbb_serve_cache_misses_total")?;
        fwd_out += forward;
        fwd_in += forwarded_in;
        check(
            local + forward == 2 * per_pass,
            &format!("node {ni}: every corpus request made one routing decision (local {local} + forward {forward})"),
        )?;

        let resp = c
            .roundtrip(&Json::obj([
                ("schema", Json::str("mbb-serve/1")),
                ("kind", Json::str("cluster-stats")),
            ]))
            .map_err(|e| format!("{addr}: cluster-stats: {e}"))?;
        expect_ok(&resp).map_err(|e| format!("{addr}: cluster-stats: {e}"))?;
        let stats = resp.get("result").ok_or("cluster-stats: no result")?;
        check(
            stats.get("schema").and_then(Json::as_str) == Some("mbb-cluster-stats/1"),
            "cluster-stats schema marker",
        )?;
        check(
            stats.get("nodes") == Some(&Json::UInt(nodes.len() as u64)),
            &format!("node {ni} sees the whole tier"),
        )?;
        check(
            uint(stats.get("forwarded_in"), "forwarded_in")? == forwarded_in,
            &format!("node {ni}: cluster-stats forwarded_in matches the counter"),
        )?;
        let Some(Json::Arr(peers)) = stats.get("peers") else {
            return Err(format!("node {ni}: cluster-stats without a peers array"));
        };
        let (mut self_routed, mut other_routed, mut relayed) = (0u64, 0u64, 0u64);
        for p in peers {
            let routed = uint(p.get("routed"), "peer routed")?;
            if p.get("self") == Some(&Json::Bool(true)) {
                self_routed += routed;
            } else {
                other_routed += routed;
                relayed += uint(p.get("forwarded"), "peer forwarded")?;
            }
        }
        check(
            self_routed == local && other_routed == forward && relayed == forward - fwd_err,
            &format!(
                "node {ni}: cluster-stats ({self_routed}/{other_routed}/{relayed}) reconciles \
                 with metrics (local {local}, forward {forward}, errors {fwd_err})"
            ),
        )?;
        println!("cluster_smoke: node {ni} ({addr}) reconciled: local {local} forward {forward} err {fwd_err}");
    }
    check(fwd_out == fwd_in, "tier-wide forwarded-out equals forwarded-in")?;

    // The coherence bound: 2 passes × N nodes × `unique` requests over
    // `unique` keys.  Perfect sharding misses exactly once per key;
    // ≥90% duplicate resolution allows 10% slack for transient fallback.
    let bound = (unique as u64) + (unique as u64).div_ceil(10);
    check(
        total_misses <= bound,
        &format!("tier-wide misses {total_misses} within the coherence bound {bound}"),
    )?;
    println!("cluster_smoke: tier-wide misses {total_misses} (unique {unique}, bound {bound})");

    // Forwarded cache hits: relayed responses are byte-verbatim (no tier
    // marker reaches the client), so derive the lower bound from the
    // counters — every forwarded request beyond the miss total was a hit
    // served through peer forwarding.
    let forwarded_hits = fwd_out.saturating_sub(total_misses);
    check(forwarded_hits > 0, "some cache hits were served via peer forwarding")?;
    println!("cluster_smoke: >= {forwarded_hits} cache hits arrived via peer forwarding");

    ref_handle.shutdown();
    Ok(())
}

fn dump_artifacts(nodes: &[String], transcripts: &[Vec<String>]) {
    let dir = std::env::var("CLUSTER_SMOKE_ARTIFACTS")
        .unwrap_or_else(|_| "cluster-smoke-artifacts".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("cluster_smoke: cannot create {dir}; transcripts not saved");
        return;
    }
    for (ni, t) in transcripts.iter().enumerate() {
        let path = format!("{dir}/node-{ni}.transcript.txt");
        let mut body = format!(
            "# mbb-serve/1 transcript, node {ni} ({}) — `>` sent, `<` received\n",
            nodes[ni]
        );
        body.push_str(&t.join("\n"));
        body.push('\n');
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cluster_smoke: writing {path}: {e}");
        } else {
            eprintln!("cluster_smoke: transcript saved to {path}");
        }
    }
    eprintln!(
        "cluster_smoke: replay with: cargo run --release -p mbb-server --bin cluster_smoke -- {}",
        nodes.join(" ")
    );
}

fn main() -> ExitCode {
    let nodes: Vec<String> = std::env::args().skip(1).collect();
    if nodes.len() < 2 {
        eprintln!("usage: cluster_smoke ADDR1 ADDR2 [ADDR3 …]");
        return ExitCode::from(2);
    }
    let mut transcripts: Vec<Vec<String>> = vec![Vec::new(); nodes.len()];
    match drive(&nodes, &mut transcripts) {
        Ok(()) => {
            println!("cluster_smoke: tier coherent, byte-identical, reconciled");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cluster_smoke: {e}");
            dump_artifacts(&nodes, &transcripts);
            ExitCode::FAILURE
        }
    }
}
