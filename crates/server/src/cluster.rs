//! The shard tier: peer forwarding over the consistent-hash [`Ring`].
//!
//! N `mbb-server` instances become one cache-coherent tier: every node
//! builds the same [`Ring`] from the same `--peers` list, hashes each
//! request's content-address, and — when another node owns the key —
//! relays the request line to that peer over a fresh connection, marked
//! `"fwd":true` so the hop count is capped at one.  The owning node
//! computes (or serves from its cache) and the relay returns its bytes
//! verbatim, so a cache hit on the owner is byte-identical no matter
//! which node the client happened to dial.
//!
//! **Failure semantics.**  Liveness is not consensus: when a relay
//! fails, the request falls back to *local* computation (correct, just a
//! duplicate cache fill) and the peer enters a short cooldown
//! ([`Cluster::COOLDOWN`]) during which further relays to it fail fast.
//! The ring itself never reshuffles — ownership stays a pure function of
//! configuration, so a recovered peer resumes serving its arcs with its
//! cache intact.
//!
//! **Accounting.**  Per peer: `routed` (requests whose key the peer
//! owns, counted at the routing decision), `forwarded` (relays that
//! returned a response), `forward_errors` (relays that fell back), and
//! `hits` (relays answered `"cached":true` — the tier-coherence signal).
//! `forwarded_in` counts requests *received* pre-marked.  The
//! `cluster-stats` admin kind reports all of these; CI reconciles them
//! against the per-node `mbb_serve_route_total`/`mbb_serve_forward_*`
//! Prometheus counters.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mbb_bench::json::Json;

use crate::ring::Ring;

/// Where a request should run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// This node owns the key (or there is no tier): run locally.
    Local,
    /// Peer `index` (into [`Cluster::peer_names`]) owns the key.
    Peer(usize),
}

#[derive(Default)]
struct PeerState {
    routed: AtomicU64,
    forwarded: AtomicU64,
    forward_errors: AtomicU64,
    hits: AtomicU64,
    /// Breaker: relays fail fast until this many ms since `started`.
    down_until_ms: AtomicU64,
}

/// The tier view from one node: the ring, this node's identity, and
/// per-peer relay accounting.
pub struct Cluster {
    ring: Ring,
    self_index: Option<usize>,
    peers: Vec<PeerState>,
    forwarded_in: AtomicU64,
    started: Instant,
    io_timeout: Duration,
}

impl Cluster {
    /// How long a peer's relays fail fast after a connect/IO error.
    pub const COOLDOWN: Duration = Duration::from_secs(1);
    /// Connect budget per relay; small so a dead peer costs one quick
    /// probe, not a worker stalled for the full read timeout.
    pub const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

    /// A tier of one: every key routes [`Route::Local`], stats still work.
    pub fn single(io_timeout: Duration) -> Cluster {
        Cluster {
            ring: Ring::new::<&str>(&[]),
            self_index: None,
            peers: Vec::new(),
            forwarded_in: AtomicU64::new(0),
            started: Instant::now(),
            io_timeout,
        }
    }

    /// Builds the tier view.  `advertise` must be one of `peers` —
    /// otherwise this node would forward keys it owns to itself forever.
    pub fn new<S: AsRef<str>>(
        peers: &[S],
        advertise: &str,
        io_timeout: Duration,
    ) -> io::Result<Cluster> {
        if peers.is_empty() {
            return Ok(Cluster::single(io_timeout));
        }
        let ring = Ring::new(peers);
        let Some(self_index) = ring.index_of(advertise) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("--advertise {advertise} is not in the --peers list"),
            ));
        };
        let states = ring.nodes().iter().map(|_| PeerState::default()).collect();
        Ok(Cluster {
            ring,
            self_index: Some(self_index),
            peers: states,
            forwarded_in: AtomicU64::new(0),
            started: Instant::now(),
            io_timeout,
        })
    }

    /// True when there is more than one node to route across.
    pub fn is_tier(&self) -> bool {
        self.ring.len() > 1
    }

    /// Peer names (sorted; index space for [`Route::Peer`]).
    pub fn peer_names(&self) -> &[String] {
        self.ring.nodes()
    }

    /// This node's index in [`Cluster::peer_names`], if a tier is up.
    pub fn self_index(&self) -> Option<usize> {
        self.self_index
    }

    /// Routes `key` and counts the decision against the owning peer.
    /// This is the only place `routed` is bumped, so per-peer `routed`
    /// totals reconcile exactly with `mbb_serve_route_total`.
    pub fn route(&self, key: u64) -> Route {
        if !self.is_tier() {
            return Route::Local;
        }
        let owner = self.ring.owner(key).expect("non-empty ring");
        self.peers[owner].routed.fetch_add(1, Ordering::Relaxed);
        if Some(owner) == self.self_index {
            Route::Local
        } else {
            Route::Peer(owner)
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Marks a request line as forwarded: `{"fwd":true,` spliced over the
    /// opening brace, so the peer sees the identical request plus the
    /// single-hop marker.
    pub fn mark_forwarded(line: &str) -> String {
        debug_assert!(line.starts_with('{') && line.len() > 2);
        format!("{{\"fwd\":true,{}", &line[1..])
    }

    /// Relays `line` (one request, no trailing newline) to peer `index`
    /// and returns the peer's response line verbatim.  On any failure the
    /// peer enters cooldown, `forward_errors` is bumped, and the caller
    /// falls back to local computation.
    pub fn forward(&self, index: usize, line: &str) -> io::Result<String> {
        let res = self.try_forward(index, line);
        let peer = &self.peers[index];
        match &res {
            Ok(resp) => {
                peer.forwarded.fetch_add(1, Ordering::Relaxed);
                peer.down_until_ms.store(0, Ordering::Relaxed);
                if resp.contains("\"cached\":true") {
                    peer.hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                peer.forward_errors.fetch_add(1, Ordering::Relaxed);
                let until = self.now_ms().saturating_add(Cluster::COOLDOWN.as_millis() as u64);
                peer.down_until_ms.store(until, Ordering::Relaxed);
            }
        }
        res
    }

    fn try_forward(&self, index: usize, line: &str) -> io::Result<String> {
        let peer = &self.peers[index];
        if self.now_ms() < peer.down_until_ms.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "peer cooling down"));
        }
        let name = &self.ring.nodes()[index];
        let addr = name
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "peer did not resolve"))?;
        let stream = TcpStream::connect_timeout(&addr, Cluster::CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let mut writer = stream.try_clone()?;
        writer.write_all(Cluster::mark_forwarded(line).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut resp = String::new();
        let n = BufReader::new(stream).read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-relay"));
        }
        let resp = resp.trim_end();
        if resp.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty relay response"));
        }
        Ok(resp.to_string())
    }

    /// Counts one request that arrived already `"fwd":true`-marked.
    pub fn count_forwarded_in(&self) {
        self.forwarded_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests received pre-forwarded.
    pub fn forwarded_in(&self) -> u64 {
        self.forwarded_in.load(Ordering::Relaxed)
    }

    /// Per-peer `(routed, forwarded, forward_errors, hits)` (testing and
    /// reconciliation).
    pub fn peer_counts(&self, index: usize) -> (u64, u64, u64, u64) {
        let p = &self.peers[index];
        (
            p.routed.load(Ordering::Relaxed),
            p.forwarded.load(Ordering::Relaxed),
            p.forward_errors.load(Ordering::Relaxed),
            p.hits.load(Ordering::Relaxed),
        )
    }

    /// The `cluster-stats` result payload (`mbb-cluster-stats/1`), one
    /// compact JSON object.
    pub fn stats_json(&self) -> String {
        use std::fmt::Write as _;
        let self_name = self.self_index.map(|i| self.ring.nodes()[i].as_str()).unwrap_or("");
        let mut o = String::with_capacity(256);
        let _ = write!(
            o,
            "{{\"schema\":\"mbb-cluster-stats/1\",\"self\":{},\"nodes\":{},\"forwarded_in\":{},\"peers\":[",
            Json::Str(self_name.to_string()).render_compact(),
            self.ring.len(),
            self.forwarded_in()
        );
        let now = self.now_ms();
        for (i, name) in self.ring.nodes().iter().enumerate() {
            let (routed, forwarded, forward_errors, hits) = self.peer_counts(i);
            let down = now < self.peers[i].down_until_ms.load(Ordering::Relaxed);
            let _ = write!(
                o,
                "{}{{\"name\":{},\"self\":{},\"routed\":{routed},\"forwarded\":{forwarded},\"forward_errors\":{forward_errors},\"hits\":{hits},\"down\":{down}}}",
                if i == 0 { "" } else { "," },
                Json::Str(name.clone()).render_compact(),
                Some(i) == self.self_index,
            );
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    #[test]
    fn single_node_routes_everything_local() {
        let c = Cluster::single(Duration::from_secs(1));
        assert!(!c.is_tier());
        for key in [0u64, 1, u64::MAX] {
            assert_eq!(c.route(key), Route::Local);
        }
        let stats = Json::parse(&c.stats_json()).unwrap();
        assert_eq!(stats.get("nodes"), Some(&Json::UInt(0)));
    }

    #[test]
    fn advertise_must_be_a_member() {
        let err = match Cluster::new(&["a:1", "b:1"], "c:1", Duration::from_secs(1)) {
            Err(e) => e,
            Ok(_) => panic!("a non-member advertise must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn routing_counts_the_owner_and_stats_reconcile() {
        let c = Cluster::new(&["a:1", "b:1", "c:1"], "b:1", Duration::from_secs(1)).unwrap();
        assert!(c.is_tier());
        let mut local = 0u64;
        let mut remote = 0u64;
        for i in 0..512u64 {
            let key = mbb_core::canon::fnv1a(format!("k{i}").as_bytes());
            match c.route(key) {
                Route::Local => local += 1,
                Route::Peer(p) => {
                    assert_ne!(Some(p), c.self_index());
                    remote += 1;
                }
            }
        }
        assert!(local > 0 && remote > 0, "local={local} remote={remote}");
        let self_idx = c.self_index().unwrap();
        assert_eq!(c.peer_counts(self_idx).0, local);
        let routed_sum: u64 = (0..3).map(|i| c.peer_counts(i).0).sum();
        assert_eq!(routed_sum, local + remote);
        let stats = Json::parse(&c.stats_json()).unwrap();
        assert_eq!(stats.get("self").and_then(Json::as_str), Some("b:1"));
        let peers = match stats.get("peers") {
            Some(Json::Arr(a)) => a,
            other => panic!("peers: {other:?}"),
        };
        let json_sum: u64 = peers
            .iter()
            .map(|p| match p.get("routed") {
                Some(Json::UInt(n)) => *n,
                other => panic!("routed: {other:?}"),
            })
            .sum();
        assert_eq!(json_sum, local + remote);
    }

    #[test]
    fn forwarding_relays_bytes_and_counts_a_hit() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
            assert!(line.starts_with("{\"fwd\":true,"), "missing marker: {line}");
            let mut conn = conn;
            conn.write_all(b"{\"ok\":true,\"cached\":true,\"result\":{}}\n").unwrap();
        });
        let me = "127.0.0.1:1"; // never dialled
        let c = Cluster::new(&[me, peer_addr.as_str()], me, Duration::from_secs(2)).unwrap();
        let idx = c.peer_names().iter().position(|n| n == &peer_addr).unwrap();
        let resp = c.forward(idx, "{\"kind\":\"report\",\"program\":\"x\"}").unwrap();
        assert_eq!(resp, "{\"ok\":true,\"cached\":true,\"result\":{}}");
        let (_, forwarded, errors, hits) = c.peer_counts(idx);
        assert_eq!((forwarded, errors, hits), (1, 0, 1));
        server.join().unwrap();
    }

    #[test]
    fn dead_peer_opens_the_breaker_and_fails_fast() {
        // Bind a port and drop the listener so the address refuses.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let me = "127.0.0.1:1";
        let c = Cluster::new(&[me, dead.as_str()], me, Duration::from_secs(1)).unwrap();
        let idx = c.peer_names().iter().position(|n| n == &dead).unwrap();
        assert!(c.forward(idx, "{\"kind\":\"health\"}").is_err());
        let start = Instant::now();
        let second = c.forward(idx, "{\"kind\":\"health\"}");
        assert!(second.is_err());
        assert!(
            start.elapsed() < Cluster::CONNECT_TIMEOUT,
            "breaker should fail fast, took {:?}",
            start.elapsed()
        );
        let (_, forwarded, errors, _) = c.peer_counts(idx);
        assert_eq!(forwarded, 0);
        assert_eq!(errors, 2);
        let stats = c.stats_json();
        assert!(stats.contains("\"down\":true"), "{stats}");
    }

    #[test]
    fn mark_forwarded_splices_after_the_opening_brace() {
        assert_eq!(
            Cluster::mark_forwarded("{\"kind\":\"report\",\"program\":\"x\"}"),
            "{\"fwd\":true,\"kind\":\"report\",\"program\":\"x\"}"
        );
    }
}
