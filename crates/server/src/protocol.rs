//! The `mbb-serve/1` wire protocol.
//!
//! Newline-delimited JSON over TCP: each request is one compact JSON
//! object on one line, each response one line back.  Requests carry the
//! schema tag, a request kind, and for the analysis kinds a `.loop`
//! program source plus an optional machine name and option flags:
//!
//! ```json
//! {"schema":"mbb-serve/1","kind":"report","program":"array a[8]\n…","machine":"origin"}
//! ```
//!
//! Responses echo the schema and kind and carry either `result` (the same
//! facts `mbbc` prints, structured) or `error`:
//!
//! ```json
//! {"schema":"mbb-serve/1","ok":true,"kind":"report","cached":false,"result":{…}}
//! {"schema":"mbb-serve/1","ok":false,"error":{"code":"parse","exit_code":3,"message":"…"}}
//! ```
//!
//! The `result` bytes of a cache hit are exactly the bytes the original
//! miss produced: the envelope is assembled by string concatenation
//! around the cached compact rendering, never re-serialised.
//!
//! **Pipelining.** A connection may have many requests in flight at once
//! and responses may complete out of order, so an envelope can carry an
//! optional `"id"` (a string or non-negative integer) that the response —
//! success, degraded or error — echoes verbatim right after `"kind"` (or
//! `"ok"` for pre-parse errors, which have no id to echo).  Correlation is
//! the client's job; the server only guarantees the echo is byte-faithful.
//!
//! **Tier forwarding.** A request relayed between shard-tier peers carries
//! `"fwd":true`; a node never re-forwards such a request (single hop max).
//! See [`crate::cluster`].

use std::io::BufRead;

use mbb_bench::json::Json;
use mbb_core::pipeline::FusionStrategy;

use crate::analysis::{machine_by_name, Options};
use crate::error::{ErrorKind, ServeError};

/// The protocol schema identifier.
pub const SCHEMA: &str = "mbb-serve/1";

/// Request kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// §2 balance report.
    Report,
    /// §4 tuning advice.
    Advise,
    /// The full §3 optimisation pipeline.
    Optimize,
    /// Beam search over the transformation space (never worse than the
    /// fixed pipeline; see `mbb-search`).
    OptimizeSearch,
    /// Trace-level counters on the machine's hierarchy.
    TraceStats,
    /// The machine-model catalogue.
    Machines,
    /// Prometheus metrics scrape.
    Metrics,
    /// Admin: overload status — brown-out level, smoothed pressure
    /// signals, and a status word (`ok`/`degraded`/`saturated`).
    Health,
    /// Admin: shard-tier routing stats — ring membership and per-peer
    /// routed/forwarded/error counts (see [`crate::cluster`]).
    ClusterStats,
    /// Admin: stop accepting, drain, exit.
    Shutdown,
}

impl Kind {
    /// Every kind, in wire order.
    pub const ALL: [Kind; 10] = [
        Kind::Report,
        Kind::Advise,
        Kind::Optimize,
        Kind::OptimizeSearch,
        Kind::TraceStats,
        Kind::Machines,
        Kind::Metrics,
        Kind::Health,
        Kind::ClusterStats,
        Kind::Shutdown,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Report => "report",
            Kind::Advise => "advise",
            Kind::Optimize => "optimize",
            Kind::OptimizeSearch => "optimize-search",
            Kind::TraceStats => "trace-stats",
            Kind::Machines => "machines",
            Kind::Metrics => "metrics",
            Kind::Health => "health",
            Kind::ClusterStats => "cluster-stats",
            Kind::Shutdown => "shutdown",
        }
    }

    /// Index into [`Kind::ALL`]-shaped counter arrays.
    pub fn index(self) -> usize {
        Kind::ALL.iter().position(|&k| k == self).expect("kind listed in ALL")
    }

    /// Parses a wire name.
    pub fn lookup(s: &str) -> Option<Kind> {
        Kind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Whether this kind analyses a program (and is therefore cacheable).
    pub fn takes_program(self) -> bool {
        matches!(
            self,
            Kind::Report | Kind::Advise | Kind::Optimize | Kind::OptimizeSearch | Kind::TraceStats
        )
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// What to do.
    pub kind: Kind,
    /// `.loop` source, for the analysis kinds.
    pub program: Option<String>,
    /// Machine-model name (default `origin`).
    pub machine: String,
    /// Pipeline flags.
    pub flags: Flags,
    /// Client-requested execution budget (tightened by the server's own
    /// per-request caps; a client can never loosen them).
    pub budget: RequestBudget,
    /// Opt-in span profile: the response gains a `"profile"` object with
    /// per-phase timing and per-nest attributed traffic.  Like the budget,
    /// deliberately *not* part of the cache key — but unlike the budget,
    /// a profiled request also *bypasses* the cache, because its payload
    /// describes one concrete execution.
    pub profile: bool,
    /// Interpreter engine (`"auto"` default, `"runs"`, `"scalar"`).  Also
    /// *not* part of the cache key: the engines produce byte-identical
    /// results (the differential-oracle CI lane enforces this), so a
    /// request pinned to one engine may be served from a result the other
    /// engine computed.
    pub engine: mbb_ir::Engine,
    /// The client's correlation id, stored as its *compact JSON
    /// rendering* (`"\"abc\""` or `"7"`) so the echo is byte-faithful.
    /// Not part of the cache key: the `result` bytes are id-independent,
    /// only the envelope around them carries the echo.
    pub id: Option<String>,
    /// True when the envelope carries `"fwd":true` — the request was
    /// relayed by a shard-tier peer and must be served locally (single
    /// hop max, see [`crate::cluster`]).
    pub forwarded: bool,
}

/// The optional `budget` object of a request envelope:
/// `{"budget":{"max_steps":N,"deadline_ms":M}}`.  Deliberately *not*
/// part of the cache key — analysis results do not depend on the budget
/// that produced them, so a tight-budget hit may be served from a
/// previous unconstrained miss.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestBudget {
    /// Maximum innermost-loop iterations across the request's
    /// interpreter runs.
    pub max_steps: Option<u64>,
    /// Wall-clock allowance in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Optimisation flags carried by a request (a subset of `mbbc`'s options).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// Fusion strategy override: `greedy` (default), `none`, `bisection`,
    /// `exhaustive`.
    pub fusion: FusionStrategy,
    /// Normalise before fusing.
    pub normalize: bool,
    /// Disable array shrinking.
    pub no_shrink: bool,
    /// Disable store elimination.
    pub no_store_elim: bool,
    /// Apply inter-array regrouping after the pipeline.
    pub regroup: bool,
    /// Beam width for `optimize-search` (bounded by
    /// [`MAX_SEARCH_BEAM`]; `None` = the search crate's default).
    pub beam: Option<u32>,
    /// Expansion steps for `optimize-search` (bounded by
    /// [`MAX_SEARCH_STEPS`]; `None` = the search crate's default).
    pub search_steps: Option<u32>,
}

/// Upper bound a request may set for the search beam width.
pub const MAX_SEARCH_BEAM: u32 = 64;
/// Upper bound a request may set for the search step count.
pub const MAX_SEARCH_STEPS: u32 = 64;

impl Flags {
    /// A canonical, order-stable form for cache keys.  Beam and step
    /// counts are keyed on their *resolved* values, so a request that
    /// spells out the defaults shares an entry with one that omits them.
    pub fn key(&self) -> String {
        format!(
            "fusion={:?};normalize={};no_shrink={};no_store_elim={};regroup={};beam={};search_steps={}",
            self.fusion,
            self.normalize,
            self.no_shrink,
            self.no_store_elim,
            self.regroup,
            self.beam.map_or(mbb_search::engine::DEFAULT_BEAM, |b| b as usize),
            self.search_steps.map_or(mbb_search::engine::DEFAULT_STEPS, |s| s as usize),
        )
    }

    /// Materialises [`Options`] for the analysis layer.
    pub fn to_options(self, machine: &str) -> Result<Options, ServeError> {
        let mut opts = Options { machine: machine_by_name(machine)?, ..Options::default() };
        opts.pipeline.fusion = self.fusion;
        opts.pipeline.normalize = self.normalize;
        opts.pipeline.shrink = !self.no_shrink;
        opts.pipeline.eliminate_stores = !self.no_store_elim;
        opts.regroup = self.regroup;
        Ok(opts)
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::new(ErrorKind::BadRequest, msg)
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(bad(format!("`options.{key}` must be a boolean"))),
    }
}

fn get_bounded(obj: &Json, key: &str, max: u32) -> Result<Option<u32>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::UInt(n)) if (1..=max as u64).contains(n) => Ok(Some(*n as u32)),
        Some(Json::Num(x)) if *x >= 1.0 && x.fract() == 0.0 && *x <= max as f64 => {
            Ok(Some(*x as u32))
        }
        Some(_) => Err(bad(format!("`options.{key}` must be an integer in 1..={max}"))),
    }
}

fn get_quota(obj: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::UInt(n)) if *n > 0 => Ok(Some(*n)),
        Some(Json::Num(x)) if *x >= 1.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
            Ok(Some(*x as u64))
        }
        Some(_) => Err(bad(format!("`budget.{key}` must be a positive integer"))),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc = Json::parse(line).map_err(|e| bad(format!("request is not valid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(SCHEMA) => {}
        Some(other) => return Err(bad(format!("unsupported schema `{other}` (want {SCHEMA})"))),
        None => return Err(bad(format!("missing `schema` (want {SCHEMA})"))),
    }
    let kind_name =
        doc.get("kind").and_then(|s| s.as_str()).ok_or_else(|| bad("missing `kind`"))?;
    let kind = Kind::lookup(kind_name).ok_or_else(|| bad(format!("unknown kind `{kind_name}`")))?;

    let program = match doc.get("program") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("`program` must be a string")),
    };
    if kind.takes_program() && program.is_none() {
        return Err(bad(format!("kind `{kind_name}` requires `program`")));
    }

    let machine = match doc.get("machine") {
        None | Some(Json::Null) => "origin".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(bad("`machine` must be a string")),
    };

    let mut flags = Flags::default();
    if let Some(options) = doc.get("options") {
        if !matches!(options, Json::Obj(_) | Json::Null) {
            return Err(bad("`options` must be an object"));
        }
        flags.fusion = match options.get("fusion").and_then(|s| s.as_str()) {
            None => FusionStrategy::Greedy,
            Some("greedy") => FusionStrategy::Greedy,
            Some("none") => FusionStrategy::None,
            Some("bisection") => FusionStrategy::Bisection,
            Some("exhaustive") => FusionStrategy::Exhaustive,
            Some(other) => return Err(bad(format!("unknown fusion strategy `{other}`"))),
        };
        flags.normalize = get_bool(options, "normalize")?;
        flags.no_shrink = get_bool(options, "no_shrink")?;
        flags.no_store_elim = get_bool(options, "no_store_elim")?;
        flags.regroup = get_bool(options, "regroup")?;
        flags.beam = get_bounded(options, "beam", MAX_SEARCH_BEAM)?;
        flags.search_steps = get_bounded(options, "search_steps", MAX_SEARCH_STEPS)?;
    }

    let mut budget = RequestBudget::default();
    match doc.get("budget") {
        None | Some(Json::Null) => {}
        Some(b @ Json::Obj(_)) => {
            budget.max_steps = get_quota(b, "max_steps")?;
            budget.deadline_ms = get_quota(b, "deadline_ms")?;
        }
        Some(_) => return Err(bad("`budget` must be an object")),
    }

    let profile = match doc.get("profile") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("`profile` must be a boolean")),
    };

    let engine = match doc.get("engine") {
        None | Some(Json::Null) => mbb_ir::Engine::Auto,
        Some(Json::Str(s)) => s.parse().map_err(bad)?,
        Some(_) => return Err(bad("`engine` must be a string")),
    };

    let id = match doc.get("id") {
        None | Some(Json::Null) => None,
        Some(v @ (Json::Str(_) | Json::UInt(_))) => Some(v.render_compact()),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
            Some(Json::UInt(*x as u64).render_compact())
        }
        Some(_) => return Err(bad("`id` must be a string or a non-negative integer")),
    };

    let forwarded = match doc.get("fwd") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("`fwd` must be a boolean")),
    };

    Ok(Request { kind, program, machine, flags, budget, profile, engine, id, forwarded })
}

/// The outcome of reading one length-bounded request line.
pub enum Line {
    /// A complete request line (without the newline).
    Full(Vec<u8>),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the size limit; the framing is lost.
    TooLarge,
    /// Read failure (including timeout).
    Gone,
}

/// Reads one newline-terminated line from `reader`, bounded by `max`
/// bytes.  This is the server's framing primitive; it never blocks past
/// the reader's own timeout and never allocates more than `max` bytes
/// (plus one buffered chunk) regardless of input.
pub fn read_line_limited<R: BufRead + ?Sized>(reader: &mut R, max: usize) -> Line {
    let mut buf = Vec::new();
    loop {
        let (found, used) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Line::Gone,
            };
            if chunk.is_empty() {
                // EOF; a partial trailing line is discarded.
                return Line::Eof;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&chunk[..pos]);
                    (true, pos + 1)
                }
                None => {
                    buf.extend_from_slice(chunk);
                    (false, chunk.len())
                }
            }
        };
        reader.consume(used);
        if buf.len() > max {
            return Line::TooLarge;
        }
        if found {
            return Line::Full(buf);
        }
    }
}

/// The `"id":<raw>,` fragment echoed after `"kind"` (empty when the
/// request carried no id).  `id` is the parsed request's raw compact
/// rendering, spliced back verbatim so the echo is byte-faithful.
fn id_part(id: Option<&str>) -> String {
    id.map(|raw| format!("\"id\":{raw},")).unwrap_or_default()
}

/// Assembles a success response line (no trailing newline).  `result` is
/// an already-compact JSON rendering, spliced in verbatim so cache hits
/// return bit-identical bytes; `id` is echoed from the request envelope.
pub fn ok_response(kind: Kind, cached: bool, result: &str, id: Option<&str>) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"ok\":true,\"kind\":\"{}\",{}\"cached\":{cached},\"result\":{result}}}",
        kind.as_str(),
        id_part(id)
    )
}

/// Assembles a *degraded* success response line: the brown-out controller
/// altered how the request was served (dropped profile splicing, clamped
/// search options), so the envelope says so explicitly.  `degraded` is an
/// already-compact JSON object (`{"level":N,"actions":[…]}`).  Degraded
/// responses are always `cached:false` — they bypass the result cache in
/// both directions, which keeps cached bytes identical at every level.
pub fn degraded_response(kind: Kind, degraded: &str, result: &str, id: Option<&str>) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"ok\":true,\"kind\":\"{}\",{}\"cached\":false,\"degraded\":{degraded},\"result\":{result}}}",
        kind.as_str(),
        id_part(id)
    )
}

/// Assembles an error response line (no trailing newline).
pub fn error_response(err: &ServeError) -> String {
    error_response_with_id(err, None)
}

/// [`error_response`] with the request's id echoed, for errors raised
/// after the envelope parsed.  Pre-parse failures (bad JSON, oversized
/// lines) have no id to echo and use the plain form.
pub fn error_response_with_id(err: &ServeError, id: Option<&str>) -> String {
    let payload = Json::obj([
        ("code", Json::str(err.kind.code())),
        ("exit_code", Json::UInt(err.kind.exit_code() as u64)),
        ("message", Json::str(err.message.clone())),
    ])
    .render_compact();
    format!("{{\"schema\":\"{SCHEMA}\",\"ok\":false,{}\"error\":{payload}}}", id_part(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: &str, extra: &str) -> String {
        format!("{{\"schema\":\"mbb-serve/1\",\"kind\":\"{kind}\"{extra}}}")
    }

    #[test]
    fn parses_a_minimal_report_request() {
        let r = parse_request(&req("report", ",\"program\":\"scalar s // printed\\n\"")).unwrap();
        assert_eq!(r.kind, Kind::Report);
        assert_eq!(r.machine, "origin");
        assert_eq!(r.flags, Flags::default());
        assert!(r.program.unwrap().contains("scalar"));
    }

    #[test]
    fn parses_options_and_machine() {
        let r = parse_request(&req(
            "optimize",
            ",\"program\":\"x\",\"machine\":\"exemplar\",\"options\":{\"fusion\":\"none\",\"regroup\":true}",
        ))
        .unwrap();
        assert_eq!(r.machine, "exemplar");
        assert_eq!(r.flags.fusion, FusionStrategy::None);
        assert!(r.flags.regroup);
        assert!(!r.flags.no_shrink);
    }

    #[test]
    fn rejects_bad_envelopes_with_bad_request() {
        for line in [
            "not json",
            "[1,2]",
            "{\"kind\":\"report\"}",
            "{\"schema\":\"mbb-serve/2\",\"kind\":\"report\"}",
            &req("report", ""),                     // missing program
            &req("teleport", ",\"program\":\"x\""), // unknown kind
            &req("report", ",\"program\":42"),      // wrong type
            &req("report", ",\"program\":\"x\",\"options\":{\"fusion\":\"psychic\"}"),
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{line} -> {e}");
        }
    }

    #[test]
    fn kinds_without_programs_parse_bare() {
        for kind in ["machines", "metrics", "health", "cluster-stats", "shutdown"] {
            let r = parse_request(&req(kind, "")).unwrap();
            assert!(!r.kind.takes_program());
            assert!(r.program.is_none());
        }
    }

    #[test]
    fn id_parses_as_string_or_integer_and_echoes_byte_faithfully() {
        let r = parse_request(&req("health", ",\"id\":7")).unwrap();
        assert_eq!(r.id.as_deref(), Some("7"));
        let r = parse_request(&req("health", ",\"id\":\"a\\\"b\"")).unwrap();
        assert_eq!(r.id.as_deref(), Some("\"a\\\"b\""));
        let r = parse_request(&req("health", "")).unwrap();
        assert_eq!(r.id, None);
        for bad in [",\"id\":true", ",\"id\":[1]", ",\"id\":-3", ",\"id\":1.5"] {
            let e = parse_request(&req("health", bad)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{bad} -> {e}");
        }

        // The echo lands right after "kind" in every envelope shape, and
        // string escapes survive the round trip.
        let ok = ok_response(Kind::Report, false, "{}", Some("\"a\\\"b\""));
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("a\"b"));
        let deg = degraded_response(Kind::Report, "{\"level\":1,\"actions\":[]}", "{}", Some("7"));
        assert_eq!(Json::parse(&deg).unwrap().get("id"), Some(&Json::UInt(7)));
        let err = error_response_with_id(&ServeError::busy(), Some("7"));
        assert_eq!(Json::parse(&err).unwrap().get("id"), Some(&Json::UInt(7)));
        // Without an id, no key appears at all.
        assert!(!ok_response(Kind::Report, false, "{}", None).contains("\"id\""));
        assert!(!error_response(&ServeError::busy()).contains("\"id\""));
    }

    #[test]
    fn fwd_marker_parses_and_rejects_non_booleans() {
        let r = parse_request(&req("report", ",\"program\":\"x\",\"fwd\":true")).unwrap();
        assert!(r.forwarded);
        let r = parse_request(&req("report", ",\"program\":\"x\"")).unwrap();
        assert!(!r.forwarded);
        let e = parse_request(&req("report", ",\"program\":\"x\",\"fwd\":1")).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn degraded_responses_carry_the_marker_and_parse_back() {
        let line = degraded_response(
            Kind::OptimizeSearch,
            "{\"level\":2,\"actions\":[\"search-clamp\"]}",
            "{\"flops\":1}",
            None,
        );
        assert!(!line.contains('\n'));
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)), "degraded is never cached");
        let d = doc.get("degraded").expect("degraded marker");
        assert_eq!(d.get("level"), Some(&Json::UInt(2)));
        // The plain envelope never carries the key at all.
        assert!(ok_response(Kind::OptimizeSearch, false, "{}", None).find("degraded").is_none());
    }

    #[test]
    fn responses_are_single_lines_that_parse_back() {
        let ok = ok_response(Kind::Report, true, "{\"flops\":1}", None);
        assert!(!ok.contains('\n'));
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("result").and_then(|r| r.get("flops")), Some(&Json::UInt(1)));

        let err = error_response(&ServeError::new(ErrorKind::Parse, "line 2: nope\n\"quoted\""));
        assert!(!err.contains('\n'));
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        let e = doc.get("error").unwrap();
        assert_eq!(e.get("code").and_then(|c| c.as_str()), Some("parse"));
        assert_eq!(e.get("exit_code"), Some(&Json::UInt(3)));
    }

    #[test]
    fn budget_envelope_parses_and_rejects_nonpositive_values() {
        let r = parse_request(&req(
            "report",
            ",\"program\":\"x\",\"budget\":{\"max_steps\":4096,\"deadline_ms\":250}",
        ))
        .unwrap();
        assert_eq!(r.budget, RequestBudget { max_steps: Some(4096), deadline_ms: Some(250) });

        let r = parse_request(&req("report", ",\"program\":\"x\"")).unwrap();
        assert_eq!(r.budget, RequestBudget::default());

        for bad in [
            ",\"program\":\"x\",\"budget\":7",
            ",\"program\":\"x\",\"budget\":{\"max_steps\":0}",
            ",\"program\":\"x\",\"budget\":{\"deadline_ms\":-5}",
            ",\"program\":\"x\",\"budget\":{\"max_steps\":\"lots\"}",
            ",\"program\":\"x\",\"budget\":{\"deadline_ms\":1.5}",
        ] {
            let e = parse_request(&req("report", bad)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{bad} -> {e}");
        }
    }

    #[test]
    fn profile_flag_parses_and_rejects_non_booleans() {
        let r = parse_request(&req("report", ",\"program\":\"x\",\"profile\":true")).unwrap();
        assert!(r.profile);
        let r = parse_request(&req("report", ",\"program\":\"x\"")).unwrap();
        assert!(!r.profile);
        let e = parse_request(&req("report", ",\"program\":\"x\",\"profile\":1")).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn engine_field_parses_and_rejects_unknown_names() {
        let r = parse_request(&req("report", ",\"program\":\"x\",\"engine\":\"scalar\"")).unwrap();
        assert_eq!(r.engine, mbb_ir::Engine::Scalar);
        let r = parse_request(&req("report", ",\"program\":\"x\"")).unwrap();
        assert_eq!(r.engine, mbb_ir::Engine::Auto);
        for bad in [",\"program\":\"x\",\"engine\":\"warp\"", ",\"program\":\"x\",\"engine\":9"] {
            let e = parse_request(&req("report", bad)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{bad} -> {e}");
        }
        // The engine is deliberately absent from the cache key.
        assert!(!Flags::default().key().contains("engine"));
    }

    #[test]
    fn read_line_limited_frames_and_classifies() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"first\nsecond\npartial".to_vec());
        assert!(matches!(read_line_limited(&mut r, 64), Line::Full(b) if b == b"first"));
        assert!(matches!(read_line_limited(&mut r, 64), Line::Full(b) if b == b"second"));
        // A trailing line without its newline is EOF, not a frame.
        assert!(matches!(read_line_limited(&mut r, 64), Line::Eof));

        let mut r = Cursor::new(vec![b'x'; 100]);
        assert!(matches!(read_line_limited(&mut r, 10), Line::TooLarge));
    }

    #[test]
    fn flag_keys_are_distinct_per_configuration() {
        let a = Flags::default().key();
        let b = Flags { regroup: true, ..Flags::default() }.key();
        let c = Flags { fusion: FusionStrategy::None, ..Flags::default() }.key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
