//! Readiness polling for the event-driven connection layer.
//!
//! [`Poller`] answers one question — *which registered sockets are
//! readable?* — behind two backends:
//!
//! * **Epoll** (Linux x86_64/aarch64): level-triggered `epoll` driven by
//!   raw syscalls (`core::arch::asm!`), keeping the crate std-only with
//!   no `libc` dependency.  Idle keep-alive connections cost one table
//!   slot and zero threads.
//! * **Scan** (everywhere else, and the runtime fallback if
//!   `epoll_create1` fails): sleep ~1 ms, then report *every* registered
//!   token as ready.  That is a level-triggered superset — spurious
//!   readiness is harmless because the server's sockets are all
//!   nonblocking and a read that finds nothing returns `WouldBlock`.
//!
//! Tokens are opaque `u64`s chosen by the caller (the server uses
//! connection ids, with token 0 reserved for the listener).  The poller
//! never owns the fds; the caller keeps them alive and deregisters
//! before close.

use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;
#[cfg(not(unix))]
#[allow(non_camel_case_types)]
pub type RawFd = i32;

/// Compile-time availability of the epoll backend.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const EPOLL_AVAILABLE: bool = true;
/// Compile-time availability of the epoll backend.
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub const EPOLL_AVAILABLE: bool = false;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    //! Just enough of the Linux epoll ABI, via inline-asm syscalls.

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: usize = 0o2000000;

    /// `struct epoll_event`: packed on x86_64 (the kernel ABI), naturally
    /// aligned elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// Raw 6-argument syscall; returns the kernel's `isize` (negative
    /// errno on failure).
    ///
    /// # Safety
    /// `nr` and the arguments must form a valid Linux syscall; pointer
    /// arguments must point at memory valid for the call's duration.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// See the x86_64 variant.
    ///
    /// # Safety
    /// Same contract as the x86_64 variant.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> std::io::Result<usize> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn epoll_create1() -> std::io::Result<i32> {
        // SAFETY: epoll_create1 takes one flag argument and no pointers.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: usize,
        fd: i32,
        event: Option<&mut EpollEvent>,
    ) -> std::io::Result<()> {
        let ptr = event.map(|e| e as *mut EpollEvent as usize).unwrap_or(0);
        // SAFETY: `ptr` is either null (DEL) or a live &mut EpollEvent.
        let ret = unsafe { syscall6(nr::EPOLL_CTL, epfd as usize, op, fd as usize, ptr, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn epoll_pwait(
        epfd: i32,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> std::io::Result<usize> {
        // SAFETY: `events` is a live mutable slice; sigmask is null so
        // sigsetsize is ignored (8 = sizeof(kernel sigset_t) regardless).
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            )
        };
        check(ret)
    }

    pub fn close(fd: i32) {
        // SAFETY: closing an fd we own; errors are ignorable on this path.
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    }
}

enum Backend {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Epoll {
        epfd: i32,
        buf: Vec<sys::EpollEvent>,
    },
    Scan {
        tokens: Vec<u64>,
    },
}

/// A readiness poller over nonblocking sockets.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens the best backend available: epoll where compiled in and the
    /// kernel cooperates, the scan fallback otherwise.
    pub fn new() -> Poller {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Ok(epfd) = sys::epoll_create1() {
            let buf = vec![sys::EpollEvent { events: 0, data: 0 }; 64];
            return Poller { backend: Backend::Epoll { epfd, buf } };
        }
        Poller { backend: Backend::Scan { tokens: Vec::new() } }
    }

    /// True when this poller is backed by epoll (testing/diagnostics).
    pub fn is_epoll(&self) -> bool {
        match &self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll { .. } => true,
            Backend::Scan { .. } => false,
        }
    }

    /// Watches `fd` for readability under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64) -> std::io::Result<()> {
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll { epfd, .. } => {
                let mut ev =
                    sys::EpollEvent { events: sys::EPOLLIN | sys::EPOLLRDHUP, data: token };
                sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
            }
            Backend::Scan { tokens } => {
                let _ = fd;
                tokens.push(token);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`/`token`.  Call *before* closing the fd.
    pub fn deregister(&mut self, fd: RawFd, token: u64) {
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll { epfd, .. } => {
                let _ = sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, None);
            }
            Backend::Scan { tokens } => {
                let _ = fd;
                if let Some(at) = tokens.iter().position(|&t| t == token) {
                    tokens.swap_remove(at);
                }
            }
        }
    }

    /// Blocks up to `timeout` and appends the tokens of ready (or, for
    /// the scan backend, *possibly* ready) sockets to `out`.  Errors,
    /// hangups and half-closes count as ready: the subsequent read
    /// surfaces them as EOF or an IO error, which is the one code path
    /// the caller already has.
    pub fn wait(&mut self, out: &mut Vec<u64>, timeout: Duration) {
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll { epfd, buf } => {
                let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
                match sys::epoll_pwait(*epfd, buf, ms) {
                    Ok(n) => {
                        for ev in &buf[..n] {
                            out.push(ev.data);
                        }
                    }
                    Err(_) => {
                        // EINTR or transient failure: report nothing this
                        // round; the caller loops.
                    }
                }
            }
            Backend::Scan { tokens } => {
                std::thread::sleep(timeout.min(Duration::from_millis(1)));
                out.extend_from_slice(tokens);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        match &self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll { epfd, .. } => sys::close(*epfd),
            Backend::Scan { .. } => {}
        }
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_backend_reports_every_registered_token() {
        let mut p = Poller { backend: Backend::Scan { tokens: Vec::new() } };
        p.register(-1, 7).unwrap();
        p.register(-1, 9).unwrap();
        let mut out = Vec::new();
        p.wait(&mut out, Duration::from_millis(2));
        out.sort_unstable();
        assert_eq!(out, [7, 9]);
        p.deregister(-1, 7);
        out.clear();
        p.wait(&mut out, Duration::from_millis(2));
        assert_eq!(out, [9]);
    }

    #[cfg(unix)]
    #[test]
    fn epoll_backend_sees_a_pending_connection_and_times_out_when_idle() {
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let mut p = Poller::new();
        if !p.is_epoll() {
            return; // scan fallback machine: nothing epoll-specific to pin
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        p.register(listener.as_raw_fd(), 0).unwrap();

        // Idle: a short wait yields nothing.
        let mut out = Vec::new();
        p.wait(&mut out, Duration::from_millis(10));
        assert!(out.is_empty(), "{out:?}");

        // A pending connection makes the listener readable.
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while out.is_empty() && std::time::Instant::now() < deadline {
            p.wait(&mut out, Duration::from_millis(50));
        }
        assert_eq!(out, [0]);

        // Level-triggered: still readable until accepted.
        out.clear();
        p.wait(&mut out, Duration::from_millis(100));
        assert_eq!(out, [0]);
        let (conn, _) = listener.accept().unwrap();

        // A registered idle connection reports nothing...
        conn.set_nonblocking(true).unwrap();
        p.register(conn.as_raw_fd(), 5).unwrap();
        out.clear();
        p.wait(&mut out, Duration::from_millis(10));
        assert!(out.is_empty(), "{out:?}");

        // ...until bytes (or a close) arrive.
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !out.contains(&5) && std::time::Instant::now() < deadline {
            out.clear();
            p.wait(&mut out, Duration::from_millis(50));
        }
        assert!(out.contains(&5), "{out:?}");
        p.deregister(conn.as_raw_fd(), 5);
    }
}
