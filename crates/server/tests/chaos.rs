//! Chaos suite: hundreds of live requests against a real server under a
//! seeded fault schedule (handler panics, injected delays, cache-compute
//! failures, dropped connections, short writes, failed connects), driven
//! through the retrying client.
//!
//! Invariants checked per seed:
//!
//! * **liveness** — the whole storm finishes inside a generous deadline;
//!   no connection or worker wedges;
//! * **well-formedness** — every response that reaches a client parses as
//!   a one-line `mbb-serve/1` envelope;
//! * **byte-identity** — all successful responses for one (kind, program,
//!   machine) key carry identical result bytes, hits and misses alike;
//! * **metrics sanity** — `mbb_serve_panics_total` equals the number of
//!   panics the plan injected, and the server serves normally once the
//!   plan is disarmed.
//!
//! A failing seed is printed (and written under `CARGO_TARGET_TMPDIR`)
//! for replay: `CHAOS_SEED=<seed> cargo test -p mbb-server --test chaos`.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mbb_bench::json::Json;
use mbb_server::client::{self, expect_ok, Client, Pipeline, RetryClient, RetryPolicy};
use mbb_server::faults::{self, FaultPlan, Site};
use mbb_server::server::{serve, Config, Handle};

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";
const SAXPY: &str = "program saxpy\narray x[512]\narray y[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  y[i] = (y[i] + (2 * x[i]))\nend for\nfor j = 0, 511\n  s = (s + y[j])\nend for\n";
/// ~2.6M innermost iterations — only ever sent with a tight step budget.
const HUGE: &str = "program huge\narray a[8]\nscalar s = 0  // printed\nfor i = 0, 327679\n  for j = 0, 7\n    s = (s + a[j])\n  end for\nend for\n";

/// Serialises the tests that arm the process-global fault plan —
/// concurrent `faults::install` calls panic by design, and an armed plan
/// would bleed into the other test's server anyway.
static ARM_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 60;
const SEED_DEADLINE: Duration = Duration::from_secs(120);

/// Swallows the stderr spam of *injected* panics (the default hook runs
/// before `catch_unwind` recovers them); everything else goes to the
/// previous hook so real failures stay visible.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.contains("injected fault")))
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn start(cfg: Config) -> (SocketAddr, Handle, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        serve(cfg, move |addr, handle| tx.send((addr, handle)).unwrap()).unwrap();
    });
    let (addr, handle) = rx.recv_timeout(Duration::from_secs(10)).expect("server came up");
    (addr, handle, thread)
}

fn scrape_counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
}

/// Pins a request to one interpreter engine (the field the differential
/// oracle lane varies; absent means `auto`).
fn with_engine(req: Json, engine: &str) -> Json {
    let Json::Obj(mut pairs) = req else { unreachable!("request() builds an object") };
    pairs.push(("engine".to_string(), Json::str(engine)));
    Json::Obj(pairs)
}

/// What one worker thread observed.
#[derive(Default)]
struct Observed {
    /// Successful `ok:true` result bytes per request key.
    results: Vec<(String, String)>,
    successes: u64,
    failures: u64,
    /// `deadline_exceeded` trips from the tight-budget probes, split by
    /// the engine the probe was pinned to: `[runs, scalar]`.
    deadline_exceeded: [u64; 2],
}

fn drive_thread(addr: SocketAddr, seed: u64, t: usize) -> Observed {
    let matrix: Vec<(&str, &str, &str)> = {
        let mut m = Vec::new();
        for kind in ["report", "advise", "optimize", "trace-stats"] {
            for program in [SUM, FIG7, SAXPY] {
                for machine in ["origin", "exemplar"] {
                    m.push((kind, program, machine));
                }
            }
        }
        m
    };
    let policy = RetryPolicy {
        attempts: 5,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: seed ^ t as u64,
    };
    let mut rc = RetryClient::new(addr, Duration::from_secs(10), policy);
    let mut obs = Observed::default();
    for i in 0..REQUESTS_PER_THREAD {
        // Which engine this iteration's budget probe (if any) pins.
        let mut probe_engine = None;
        let (req, key) = match i % 10 {
            7 => (client::request("metrics", None, ""), None),
            8 => {
                // Deliberately malformed: must yield a structured
                // bad-request envelope, never a hang or a panic.
                (client::request("report", None, ""), None)
            }
            9 => {
                // The tight-budget probe alternates engines so every storm
                // exercises the step quota through both the symbolic run
                // walk and the scalar element walk — the charge points
                // must line up or one engine blows past its budget.
                let engine = if (i / 10) % 2 == 0 { "runs" } else { "scalar" };
                probe_engine = Some(engine);
                (
                    with_engine(
                        client::request_with_budget("optimize", Some(HUGE), "origin", 4096, 0),
                        engine,
                    ),
                    None,
                )
            }
            _ => {
                let (kind, program, machine) = matrix[(i + t * 7) % matrix.len()];
                (
                    client::request(kind, Some(program), machine),
                    Some(format!("{kind}\0{program}\0{machine}")),
                )
            }
        };
        match rc.call(&req) {
            Ok(resp) => {
                // Well-formedness: every envelope names the schema and
                // carries a boolean `ok`.
                assert_eq!(
                    resp.get("schema").and_then(|s| s.as_str()),
                    Some("mbb-serve/1"),
                    "seed {seed:#x}: bad envelope {resp:?}"
                );
                match resp.get("ok") {
                    Some(&Json::Bool(true)) => {
                        obs.successes += 1;
                        if let (Some(key), Some(result)) = (key, resp.get("result")) {
                            obs.results.push((key, result.render_compact()));
                        }
                    }
                    Some(&Json::Bool(false)) => {
                        let code = resp
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(|c| c.as_str())
                            .unwrap_or_else(|| panic!("seed {seed:#x}: error without code"));
                        if code == "deadline_exceeded" {
                            let slot = match probe_engine {
                                Some("scalar") => 1,
                                _ => 0,
                            };
                            obs.deadline_exceeded[slot] += 1;
                        }
                        if i % 10 == 8 {
                            assert_eq!(code, "bad-request", "seed {seed:#x}: {resp:?}");
                        }
                        obs.failures += 1;
                    }
                    other => panic!("seed {seed:#x}: `ok` is {other:?}"),
                }
            }
            Err(_) => obs.failures += 1, // retries exhausted under faults
        }
    }
    obs
}

fn run_seed(seed: u64) {
    let _arm = ARM_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let started = Instant::now();
    let (addr, handle, server) =
        start(Config { workers: 3, read_timeout: Duration::from_secs(10), ..Config::default() });

    let plan = FaultPlan::new(seed)
        .rate(Site::HandlerPanic, 40)
        .rate(Site::HandlerDelay, 60)
        .rate(Site::CacheCompute, 40)
        .rate(Site::ConnRead, 40)
        .rate(Site::ConnWriteShort, 40)
        .rate(Site::ClientConnect, 40)
        .rate(Site::WorkerStall, 60)
        .delay(Duration::from_millis(3));
    let guard = faults::install(plan);

    let mut merged: HashMap<String, String> = HashMap::new();
    let mut successes = 0u64;
    let mut failures = 0u64;
    let mut deadline_exceeded = [0u64; 2];
    let threads: Vec<_> =
        (0..THREADS).map(|t| std::thread::spawn(move || drive_thread(addr, seed, t))).collect();
    for th in threads {
        let obs = th.join().expect("worker thread survived the storm");
        successes += obs.successes;
        failures += obs.failures;
        deadline_exceeded[0] += obs.deadline_exceeded[0];
        deadline_exceeded[1] += obs.deadline_exceeded[1];
        for (key, bytes) in obs.results {
            // Byte-identity: every success for a key — first miss, cache
            // hits, recomputes after injected failures — is identical.
            let prior = merged.entry(key.clone()).or_insert_with(|| bytes.clone());
            assert_eq!(*prior, bytes, "seed {seed:#x}: result bytes diverged for {key:?}");
        }
    }

    // Read the injected-fault counts while the plan is still armed, then
    // disarm before the verification traffic below.
    let injected_panics = faults::fired(Site::HandlerPanic);
    let worker_stalls = faults::fired(Site::WorkerStall);
    drop(guard);

    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(successes + failures, total, "seed {seed:#x}: requests lost");
    assert!(successes >= total / 2, "seed {seed:#x}: only {successes}/{total} requests succeeded");
    assert!(
        deadline_exceeded[0] > 0 && deadline_exceeded[1] > 0,
        "seed {seed:#x}: the tight-budget probes must trip deadline_exceeded under \
         both engines (runs: {}, scalar: {})",
        deadline_exceeded[0],
        deadline_exceeded[1],
    );
    // Workers stalled mid-pop dozens of times (4 threads × 60 requests at
    // 60/1024 draws a stall with overwhelming probability) and the storm
    // still finished with a success majority: queued requests age but the
    // pool never wedges.
    assert!(
        worker_stalls > 0,
        "seed {seed:#x}: the worker-stall site never fired — the plan is not exercising it"
    );
    assert!(
        started.elapsed() < SEED_DEADLINE,
        "seed {seed:#x}: storm took {:?} (liveness bound {SEED_DEADLINE:?})",
        started.elapsed()
    );

    // Metrics sanity on a clean connection: every caught panic was one we
    // injected, and the disarmed server serves normally.
    let mut clean = Client::connect(addr, Duration::from_secs(30)).expect("clean connect");
    let text = clean.metrics_text().expect("metrics scrape after disarm");
    assert_eq!(
        scrape_counter(&text, "mbb_serve_panics_total"),
        injected_panics,
        "seed {seed:#x}: panics_total diverged from the injected count"
    );
    let resp = clean.analyze("report", SUM, "origin").expect("post-storm request");
    expect_ok(&resp).unwrap_or_else(|e| panic!("seed {seed:#x}: post-storm request failed: {e}"));

    handle.shutdown();
    server.join().expect("server thread exits after drain");
}

/// Budget parity across engines, with no faults in the way: the same
/// request pinned to `runs` and to `scalar` must produce the *same
/// outcome* — the identical structured `deadline_exceeded` error under a
/// tight step budget, and byte-identical results under a generous one.
/// The step quota is charged at the same points in both engines
/// (`mbb_ir::budget`), so a budget that stops one must stop the other.
#[test]
fn budget_outcomes_are_engine_invariant() {
    quiet_injected_panics();
    let (addr, handle, server) = start(Config { workers: 2, ..Config::default() });
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");

    for kind in ["report", "optimize"] {
        // Tight budget: HUGE runs ~2.6M steps, the quota allows 4096.
        let mut outcomes = Vec::new();
        for engine in ["runs", "scalar"] {
            let req = with_engine(
                client::request_with_budget(kind, Some(HUGE), "origin", 4096, 0),
                engine,
            );
            let resp = client.roundtrip(&req).expect("tight-budget roundtrip");
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{kind}/{engine}: {resp:?}");
            let code = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str())
                .unwrap_or_else(|| panic!("{kind}/{engine}: error without code: {resp:?}"))
                .to_string();
            outcomes.push(code);
        }
        assert_eq!(outcomes[0], "deadline_exceeded", "{kind}: runs engine outcome");
        assert_eq!(outcomes[0], outcomes[1], "{kind}: engines disagree on the budget outcome");

        // Generous budget: both engines succeed with identical bytes.
        // (The cache would serve the second engine the first's result by
        // design — byte-identity is exactly why the engine is excluded
        // from the cache key — so this also guards that design choice.)
        let mut results = Vec::new();
        for engine in ["runs", "scalar"] {
            let req = with_engine(
                client::request_with_budget(kind, Some(SUM), "origin", 50_000_000, 0),
                engine,
            );
            let resp = client.roundtrip(&req).expect("generous-budget roundtrip");
            expect_ok(&resp).unwrap_or_else(|e| panic!("{kind}/{engine}: {e}"));
            results.push(resp.get("result").expect("result payload").render_compact());
        }
        assert_eq!(results[0], results[1], "{kind}: result bytes diverged across engines");
    }

    handle.shutdown();
    server.join().expect("server thread exits after drain");
}

/// The pipelining acceptance storm: one connection with 32 requests in
/// flight, under injected connection drops and short writes.  Whatever
/// the faults do to individual connections, every id must eventually be
/// answered by a *correctly paired* response — the kind echo pins each
/// response to its id's request — and liveness must hold.
#[test]
fn pipelined_storm_pairs_every_id_under_connection_faults() {
    quiet_injected_panics();
    let _arm = ARM_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (addr, handle, server) =
        start(Config { workers: 3, pipeline_depth: 32, ..Config::default() });
    let guard = faults::install(
        FaultPlan::new(0x51DE).rate(Site::ConnRead, 60).rate(Site::ConnWriteShort, 60),
    );

    let kinds = ["report", "advise", "trace-stats", "optimize"];
    let programs = [SUM, FIG7, SAXPY];
    let mut unanswered: BTreeSet<u64> = (0..32).collect();
    let deadline = Instant::now() + Duration::from_secs(90);
    while !unanswered.is_empty() {
        assert!(
            Instant::now() < deadline,
            "liveness: {} ids still unanswered under the fault plan",
            unanswered.len()
        );
        // (Re)connect and resend every still-unanswered id as one
        // pipelined batch.  A dropped or short-written connection just
        // triggers another round — ids, not connections, are the unit of
        // progress.
        let Ok(mut p) = Pipeline::connect(addr, Duration::from_secs(10)) else {
            continue;
        };
        let lines: Vec<String> = unanswered
            .iter()
            .map(|&i| {
                let req = client::request(
                    kinds[(i % 4) as usize],
                    Some(programs[(i % 3) as usize]),
                    "origin",
                );
                client::with_id(&req, i).render_compact()
            })
            .collect();
        if p.send_batch(&lines).is_err() {
            continue;
        }
        while p.inflight() > 0 {
            match p.recv() {
                Ok((Some(id), resp)) => {
                    if resp.get("ok") == Some(&Json::Bool(true)) {
                        let kind = resp.get("kind").and_then(Json::as_str).unwrap_or("?");
                        assert_eq!(
                            kind,
                            kinds[(id % 4) as usize],
                            "id {id} paired with the wrong response: {resp:?}"
                        );
                        unanswered.remove(&id);
                    }
                    // ok:false (shed, injected failure): the id stays in
                    // the set and is retried next round.
                }
                Ok((None, _)) => {} // unpairable response; retry the ids
                Err(_) => break,    // connection died: reconnect and resend
            }
        }
    }

    drop(guard);
    // Disarmed, the server serves a clean request normally.
    let mut clean = Client::connect(addr, Duration::from_secs(30)).expect("clean connect");
    let resp = clean.analyze("report", SUM, "origin").expect("post-storm request");
    expect_ok(&resp).expect("post-storm request succeeds");

    handle.shutdown();
    server.join().expect("server thread exits after drain");
}

#[test]
fn storm_of_faulty_requests_stays_live_wellformed_and_deterministic() {
    quiet_injected_panics();
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| s.parse());
            vec![parsed.unwrap_or_else(|_| panic!("CHAOS_SEED {s:?} is not a u64"))]
        }
        Err(_) => vec![0xC0FFEE, 0x5EED5],
    };
    for seed in seeds {
        eprintln!("chaos: seed {seed:#x}");
        let outcome = std::panic::catch_unwind(|| run_seed(seed));
        if let Err(payload) = outcome {
            let replay = format!(
                "chaos seed {seed:#x} failed; replay with:\n  CHAOS_SEED={seed:#x} cargo test -p mbb-server --test chaos\n"
            );
            let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos-replay.txt");
            let _ = std::fs::write(&path, &replay);
            eprintln!("{replay}(replay instructions written to {})", path.display());
            std::panic::resume_unwind(payload);
        }
    }
}
