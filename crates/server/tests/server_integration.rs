//! End-to-end tests against a live in-process server: real TCP sockets,
//! real worker pool, real cache.  `serve` runs on a helper thread and
//! hands back its bound address and [`Handle`] through `on_ready`; the
//! handle's direct metrics access lets the backpressure test observe
//! queue saturation deterministically instead of racing the request path.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

use mbb_bench::json::Json;
use mbb_server::analysis;
use mbb_server::client::{expect_ok, Client};
use mbb_server::server::{serve, Config, Handle};

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";
const SAXPY: &str = "program saxpy\narray x[512]\narray y[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  y[i] = (y[i] + (2 * x[i]))\nend for\nfor j = 0, 511\n  s = (s + y[j])\nend for\n";

/// Starts a server; returns its address, handle, and the join guard.
fn start(cfg: Config) -> (SocketAddr, Handle, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        serve(cfg, move |addr, handle| tx.send((addr, handle)).unwrap()).unwrap();
    });
    let (addr, handle) = rx.recv_timeout(Duration::from_secs(10)).expect("server came up");
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(60)).expect("connect")
}

/// The serial ground truth for one request: the deterministic text and
/// data the analysis layer produces (the same producer `mbbc` prints
/// from, minus its `simulation:` timing line).
fn serial(kind: &str, program: &str, machine: &str) -> Json {
    let opts = analysis::Options {
        machine: analysis::machine_by_name(machine).unwrap(),
        ..Default::default()
    };
    let p = analysis::load(program).unwrap();
    let a = match kind {
        "report" => analysis::report(&p, &opts).unwrap(),
        "advise" => analysis::advise(&p, &opts).unwrap(),
        "optimize" => analysis::optimize(&p, &opts).unwrap().0,
        "trace-stats" => analysis::trace_stats(&p, &opts).unwrap(),
        other => panic!("unknown kind {other}"),
    };
    Json::obj([("text", Json::str(a.text)), ("data", a.data)])
}

#[test]
fn concurrent_mixed_clients_match_serial_output_byte_for_byte() {
    let (addr, handle, thread) = start(Config { workers: 4, ..Config::default() });

    // The mixed workload: every (kind, program, machine) pairing, with
    // the serial expectation computed once up front.
    let mut matrix = Vec::new();
    for kind in ["report", "advise", "optimize", "trace-stats"] {
        for program in [SUM, FIG7, SAXPY] {
            for machine in ["origin", "exemplar"] {
                matrix.push((kind, program, machine));
            }
        }
    }
    let expected: Vec<Json> = matrix.iter().map(|(k, p, m)| serial(k, p, m)).collect();

    // 8 clients, each walking the whole matrix from a different offset so
    // identical requests collide in flight: 8 × 24 = 192 requests over 24
    // distinct keys.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let matrix = &matrix;
            let expected = &expected;
            scope.spawn(move || {
                let mut c = connect(addr);
                for k in 0..matrix.len() {
                    let idx = (k + t * 3) % matrix.len();
                    let (kind, program, machine) = matrix[idx];
                    let resp = c.analyze(kind, program, machine).unwrap();
                    expect_ok(&resp).unwrap();
                    // The compact rendering of the parsed response equals
                    // the compact rendering of the serial ground truth ⇔
                    // the payload bytes are identical (the parse is exact).
                    assert_eq!(
                        resp.get("result").unwrap().render_compact(),
                        expected[idx].render_compact(),
                        "{kind} diverged from serial output"
                    );
                }
            });
        }
    });

    let stats = handle.cache().stats();
    assert_eq!(stats.hits + stats.misses, 192, "{stats:?}");
    assert_eq!(stats.misses, 24, "every distinct request simulates exactly once: {stats:?}");
    assert_eq!(handle.metrics().requests_total(), 192);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn repeated_request_is_a_hit_with_bit_identical_bytes() {
    let (addr, handle, thread) = start(Config { workers: 2, ..Config::default() });
    let mut c = connect(addr);

    let first = c
        .roundtrip_raw(
            &mbb_server::client::request("report", Some(FIG7), "origin").render_compact(),
        )
        .unwrap();
    let second = c
        .roundtrip_raw(
            &mbb_server::client::request("report", Some(FIG7), "origin").render_compact(),
        )
        .unwrap();
    // Identical raw bytes except the cached flag flips false → true.
    assert_eq!(first.replace("\"cached\":false", "\"cached\":true"), second);
    let doc = Json::parse(&second).unwrap();
    assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn all_duplicate_workload_exceeds_ninety_percent_hit_rate() {
    let (addr, handle, thread) = start(Config { workers: 4, ..Config::default() });

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                let mut c = connect(addr);
                for _ in 0..13 {
                    let resp = c.analyze("report", SUM, "origin").unwrap();
                    expect_ok(&resp).unwrap();
                }
            });
        }
    });

    let stats = handle.cache().stats();
    let total = stats.hits + stats.misses;
    assert_eq!(total, 8 * 13);
    let rate = stats.hits as f64 / total as f64;
    assert!(rate >= 0.90, "hit rate {rate:.3} below 90%: {stats:?}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn queue_saturation_sheds_with_busy_responses_and_never_hangs() {
    let (addr, handle, thread) = start(Config {
        workers: 1,
        queue_depth: 2,
        read_timeout: Duration::from_secs(30),
        ..Config::default()
    });

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let wait_for = |what: &str, cond: &dyn Fn() -> bool| {
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    let m = handle.metrics();

    // Occupy the only worker with a multi-second optimize (the HUGE
    // program takes seconds in a debug build)…
    let mut hog = TcpStream::connect(addr).unwrap();
    let hog_line = mbb_server::client::request("optimize", Some(HUGE), "origin").render_compact();
    hog.write_all(hog_line.as_bytes()).unwrap();
    hog.write_all(b"\n").unwrap();
    wait_for("the worker to pick up the hog request", &|| {
        m.workers_busy.load(std::sync::atomic::Ordering::Relaxed) == 1
    });
    // …then fill the request queue with two more parsed requests.
    let quick = mbb_server::client::request("report", Some(SUM), "origin").render_compact();
    let mut queued = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(quick.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        queued.push(s);
    }
    wait_for("the request queue to fill", &|| {
        m.queue_depth.load(std::sync::atomic::Ordering::Relaxed) == 2
    });

    // Every further request must be shed promptly with a structured busy
    // response — a read, not a hang — and the shed is request-level: the
    // connection stays open.
    for k in 0..3 {
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        shed.write_all(quick.as_bytes()).unwrap();
        shed.write_all(b"\n").unwrap();
        let mut line = String::new();
        BufReader::new(shed).read_line(&mut line).unwrap();
        let doc = Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("shed {k}: {e}: {line}"));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{line}");
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("busy"), "{line}");
    }
    assert_eq!(m.busy_total.load(std::sync::atomic::Ordering::Relaxed), 3);

    // The hog and both queued requests still complete: shedding dropped
    // the excess, not the admitted work.
    for s in queued {
        s.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        let doc = Json::parse(line.trim_end()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
    }
    wait_for("the queue to drain", &|| {
        m.queue_depth.load(std::sync::atomic::Ordering::Relaxed) == 0
    });
    let mut c = connect(addr);
    let resp = c.analyze("report", SUM, "origin").unwrap();
    expect_ok(&resp).unwrap();

    handle.shutdown();
    thread.join().unwrap();
}

/// ~2.6M innermost iterations: effectively unbounded next to a 4096-step
/// quota, but quick enough to finish if a budget bug ever lets it run.
const HUGE: &str = "program huge\narray a[8]\nscalar s = 0  // printed\nfor i = 0, 327679\n  for j = 0, 7\n    s = (s + a[j])\n  end for\nend for\n";

#[test]
fn unbounded_optimize_gets_deadline_exceeded_and_the_worker_survives() {
    let (addr, handle, thread) = start(Config {
        workers: 1, // the budgeted request and the follow-ups share one worker
        request_max_steps: Some(4096),
        ..Config::default()
    });
    let mut c = connect(addr);

    let resp = c.analyze("optimize", HUGE, "origin").unwrap();
    let err = expect_ok(&resp).unwrap_err();
    assert_eq!(err.kind, mbb_server::ErrorKind::DeadlineExceeded, "{resp:?}");

    // Same connection, same (only) worker: normal service continues.
    for _ in 0..3 {
        let resp = c.analyze("report", SUM, "origin").unwrap();
        expect_ok(&resp).unwrap();
    }
    // The failed analysis occupies no cache entry.
    assert_eq!(handle.cache().stats().entries, 1, "only the report result is cached");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn request_envelope_budget_and_wall_deadline_trip_per_request() {
    let (addr, handle, thread) = start(Config { workers: 2, ..Config::default() });
    let mut c = connect(addr);

    // A per-request step quota trips even though the server cap is loose.
    let req = mbb_server::client::request_with_budget("report", Some(HUGE), "origin", 4096, 0);
    let resp = c.roundtrip(&req).unwrap();
    let err = expect_ok(&resp).unwrap_err();
    assert_eq!(err.kind, mbb_server::ErrorKind::DeadlineExceeded, "{resp:?}");

    // A 1 ms wall deadline cannot cover millions of iterations either.
    let req = mbb_server::client::request_with_budget("trace-stats", Some(HUGE), "origin", 0, 1);
    let resp = c.roundtrip(&req).unwrap();
    let err = expect_ok(&resp).unwrap_err();
    assert_eq!(err.kind, mbb_server::ErrorKind::DeadlineExceeded, "{resp:?}");

    // The same program without a budget envelope completes (server default
    // cap is far above 2.6M steps) — budgets are per request, not sticky.
    let resp = c.analyze("report", HUGE, "origin").unwrap();
    expect_ok(&resp).unwrap();

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn shutdown_request_drains_and_serve_returns() {
    let (addr, _handle, thread) = start(Config { workers: 2, ..Config::default() });
    let mut c = connect(addr);
    expect_ok(&c.analyze("report", SUM, "origin").unwrap()).unwrap();
    c.shutdown().unwrap();
    thread.join().unwrap();
    // The port is released: a fresh connect must fail (or be refused on
    // first use).
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.write_all(b"{\"schema\":\"mbb-serve/1\",\"kind\":\"machines\"}\n");
            let mut buf = String::new();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            BufReader::new(s).read_line(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    };
    assert!(refused, "server socket still serving after drain");
}

#[test]
fn idle_timeout_shuts_the_server_down_on_its_own() {
    let (addr, _handle, thread) = start(Config {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(200)),
        ..Config::default()
    });
    let mut c = connect(addr);
    expect_ok(&c.analyze("report", SUM, "origin").unwrap()).unwrap();
    drop(c);
    thread.join().unwrap(); // returns without any shutdown request
}
