//! Property tests for the consistent-hash ring: determinism across node
//! orderings, full coverage of the key space, and the consistency bound —
//! removing one node may move at most the arcs that node owned
//! (≈ `2/N` of the keys with a safety factor for hash variance).

use mbb_server::ring::Ring;
use proptest::collection::btree_set;
use proptest::prelude::*;

/// Distinct node names shaped like real `host:port` members.
fn arb_nodes(min: usize, max: usize) -> impl Strategy<Value = Vec<String>> {
    btree_set(0u32..500, min..max).prop_map(|ports| {
        ports.into_iter().map(|p| format!("10.0.0.{}:{}", p % 16, 9000 + p)).collect()
    })
}

fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..u64::MAX, 64..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The owner of every key is a pure function of the membership *set*:
    /// insertion order, duplicates, and reversal must not matter.
    #[test]
    fn ownership_is_order_insensitive_and_deterministic(
        nodes in arb_nodes(2, 8),
        keys in arb_keys(),
    ) {
        let forward = Ring::new(&nodes);
        let mut shuffled = nodes.clone();
        shuffled.reverse();
        shuffled.push(nodes[0].clone()); // duplicate member
        let backward = Ring::new(&shuffled);
        prop_assert_eq!(forward.nodes(), backward.nodes());
        for &k in &keys {
            prop_assert_eq!(forward.owner_name(k), backward.owner_name(k), "key {:#x}", k);
            prop_assert!(forward.owner(k).is_some(), "every key has an owner");
        }
    }

    /// Removing one node strands only that node's arcs: every key it did
    /// not own keeps its owner, and the moved fraction stays near `1/N`
    /// (bounded by `2/N` to absorb hash-placement variance).
    #[test]
    fn removing_a_node_moves_at_most_its_own_arcs(
        nodes in arb_nodes(3, 8),
        keys in arb_keys(),
    ) {
        let full = Ring::new(&nodes);
        let victim = nodes[0].clone();
        let rest: Vec<String> = nodes.iter().filter(|n| **n != victim).cloned().collect();
        let reduced = Ring::new(&rest);

        let mut moved = 0usize;
        for &k in &keys {
            let before = full.owner_name(k).expect("full ring owns every key");
            let after = reduced.owner_name(k).expect("reduced ring owns every key");
            if before == victim {
                moved += 1; // must move — its node is gone
            } else {
                prop_assert_eq!(before, after, "key {:#x} moved without its node leaving", k);
            }
        }
        let bound = keys.len() * 2 / nodes.len();
        prop_assert!(
            moved <= bound.max(1),
            "{} of {} keys moved on one departure from {} nodes (bound {})",
            moved, keys.len(), nodes.len(), bound
        );
    }

    /// Adding a node only *takes* keys (from any prior owner) — no key
    /// moves between two surviving nodes — and takes roughly its share.
    #[test]
    fn adding_a_node_only_claims_keys_for_itself(
        nodes in arb_nodes(2, 7),
        keys in arb_keys(),
    ) {
        let base = Ring::new(&nodes);
        let mut grown_nodes = nodes.clone();
        grown_nodes.push("10.0.9.9:19999".to_string());
        let grown = Ring::new(&grown_nodes);

        let mut claimed = 0usize;
        for &k in &keys {
            let before = base.owner_name(k).expect("owner");
            let after = grown.owner_name(k).expect("owner");
            if before != after {
                prop_assert_eq!(after, "10.0.9.9:19999", "key {:#x} moved to a survivor", k);
                claimed += 1;
            }
        }
        let bound = keys.len() * 2 / grown_nodes.len();
        prop_assert!(
            claimed <= bound.max(1),
            "the newcomer claimed {} of {} keys (bound {})",
            claimed, keys.len(), bound
        );
    }
}
