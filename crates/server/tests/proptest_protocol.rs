//! Property tests for the `mbb-serve/1` framing and envelope parsing.
//!
//! Both functions sit directly on the network boundary, so they must be
//! *total* over untrusted input: [`read_line_limited`] has to terminate
//! with the right classification on any byte stream (including pathological
//! chunking), and [`parse_request`] has to return a structured
//! `bad-request` error — never panic or hang — on anything that is not a
//! well-formed envelope.

use std::io::{BufReader, Cursor};

use mbb_server::client::request;
use mbb_server::protocol::{parse_request, read_line_limited, Line};
use mbb_server::ErrorKind;
use proptest::collection::vec;
use proptest::prelude::*;

/// Bytes with newlines common enough that multi-line framings appear.
fn arb_stream() -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![
            Just(b'\n'),
            Just(b'\n'),
            Just(b'{'),
            Just(b'}'),
            Just(b'"'),
            Just(b'\\'),
            Just(b'\r'),
            Just(0u8),
            Just(0xFFu8),
            0u8..=255u8,
        ],
        0..64,
    )
}

/// The specified framing of `read_line_limited`, derived independently:
/// each `\n`-terminated line yields `Full` when it fits in `max` and
/// `TooLarge` otherwise (losing the rest of the stream).  A trailing
/// unterminated fragment is `Eof` when it fits — but `TooLarge` when it
/// does not, since the bound is enforced per buffered chunk, before EOF
/// can be observed.
fn expected_frames(stream: &[u8], max: usize) -> Vec<Result<Vec<u8>, ()>> {
    let mut out = Vec::new();
    let mut rest = stream;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let line = &rest[..pos];
        if line.len() > max {
            out.push(Err(()));
            return out; // framing is lost; the reader stops here
        }
        out.push(Ok(line.to_vec()));
        rest = &rest[pos + 1..];
    }
    if rest.len() > max {
        out.push(Err(()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn framing_matches_the_specification_on_any_stream(
        stream in arb_stream(),
        max in 0usize..32,
        chunk in 1usize..9,
    ) {
        // A tiny BufReader capacity forces the continuation path: lines
        // arrive split across many fill_buf chunks.
        let mut reader = BufReader::with_capacity(chunk, Cursor::new(stream.clone()));
        for want in expected_frames(&stream, max) {
            match (read_line_limited(&mut reader, max), want) {
                (Line::Full(got), Ok(want)) => prop_assert_eq!(got, want),
                (Line::TooLarge, Err(())) => return Ok(()), // framing lost: done
                (got, want) => prop_assert!(
                    false,
                    "misframed {:?} with max {}: wanted {:?}, got {}",
                    stream,
                    max,
                    want,
                    match got {
                        Line::Full(b) => format!("Full({b:?})"),
                        Line::Eof => "Eof".into(),
                        Line::TooLarge => "TooLarge".into(),
                        Line::Gone => "Gone".into(),
                    }
                ),
            }
        }
        prop_assert!(matches!(read_line_limited(&mut reader, max), Line::Eof));
    }

    #[test]
    fn arbitrary_garbage_parses_to_a_structured_bad_request(stream in arb_stream()) {
        let text = String::from_utf8_lossy(&stream);
        if let Err(e) = parse_request(&text) {
            prop_assert_eq!(e.kind, ErrorKind::BadRequest);
            prop_assert!(!e.message.is_empty());
        }
        // (The astronomically unlikely Ok — garbage that happens to be a
        // valid envelope — is fine; the property is "no panic, structured
        // error".)
    }

    #[test]
    fn truncated_valid_requests_never_panic(cut in 0usize..200) {
        let full = request("optimize", Some("array a[8]\nfor i = 0, 7\n  a[i] = 1\nend for\n"), "origin")
            .render_compact();
        let cut = cut.min(full.len());
        if !full.is_char_boundary(cut) {
            return Ok(());
        }
        let truncated = &full[..cut];
        if truncated.len() < full.len() {
            let e = parse_request(truncated).unwrap_err();
            prop_assert_eq!(e.kind, ErrorKind::BadRequest);
        } else {
            prop_assert!(parse_request(truncated).is_ok());
        }
    }

    #[test]
    fn interleaved_garbage_fields_never_break_the_parser(
        key in vec(prop_oneof![Just('a'), Just('"'), Just('\\'), Just('{'), Just('0')], 0..8),
        num in 0u64..1_000_000,
    ) {
        let key: String = key.into_iter().collect();
        let line = format!(
            "{{\"schema\":\"mbb-serve/1\",\"kind\":\"machines\",\"{}\":{num},\"budget\":{{\"max_steps\":{num}}}}}",
            key.escape_default()
        );
        match parse_request(&line) {
            Ok(r) => {
                // Unknown fields are ignored; the budget must have parsed.
                prop_assert_eq!(r.budget.max_steps, if num > 0 { Some(num) } else { None });
            }
            Err(e) => {
                // num == 0 makes the budget invalid; anything else that
                // fails must still be a structured bad-request.
                prop_assert_eq!(e.kind, ErrorKind::BadRequest);
            }
        }
    }
}
