//! Tier tests: three live in-process nodes sharing one consistent-hash
//! ring.  Verifies peer forwarding, tier-wide cache coherence (one miss
//! per unique key no matter which node took the request), byte-identity
//! of cached responses across the tier, cluster-stats reconciliation
//! against the Prometheus counters, and local fallback when a peer dies.

use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::time::Duration;

use mbb_bench::json::Json;
use mbb_server::client::{expect_ok, Client};
use mbb_server::server::{serve, Config, Handle};

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";
const SAXPY: &str = "program saxpy\narray x[512]\narray y[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  y[i] = (y[i] + (2 * x[i]))\nend for\nfor j = 0, 511\n  s = (s + y[j])\nend for\n";

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners.  The tiny window between drop and the server's own bind is
/// harmless here: nothing else in the test process touches these ports.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn start_node(addr: SocketAddr, peers: Vec<String>) -> (Handle, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    let cfg = Config {
        addr: addr.to_string(),
        advertise: addr.to_string(),
        peers,
        workers: 2,
        ..Config::default()
    };
    let thread = std::thread::spawn(move || {
        serve(cfg, move |_addr, handle| tx.send(handle).unwrap()).unwrap();
    });
    let handle = rx.recv_timeout(Duration::from_secs(10)).expect("node came up");
    (handle, thread)
}

fn counter(m: &mbb_server::metrics::Metrics, which: &str) -> u64 {
    use std::sync::atomic::Ordering;
    match which {
        "local" => m.route_local_total.load(Ordering::Relaxed),
        "forward" => m.route_forward_total.load(Ordering::Relaxed),
        "fwd_err" => m.forward_errors_total.load(Ordering::Relaxed),
        "fwd_in" => m.forwarded_in_total.load(Ordering::Relaxed),
        other => panic!("unknown counter {other}"),
    }
}

#[test]
fn three_node_tier_is_cache_coherent_and_byte_identical() {
    let addrs = free_addrs(3);
    let peers: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let nodes: Vec<(Handle, std::thread::JoinHandle<()>)> =
        addrs.iter().map(|&a| start_node(a, peers.clone())).collect();

    // The corpus: 6 unique keys (3 programs × 2 kinds), sent through
    // *every* node — 18 requests, and a second identical pass of 18 more.
    let corpus: Vec<(&str, &str)> = ["report", "trace-stats"]
        .iter()
        .flat_map(|&k| [SUM, FIG7, SAXPY].iter().map(move |&p| (k, p)))
        .collect();

    let mut responses: Vec<Vec<String>> = vec![Vec::new(); corpus.len()];
    for pass in 0..2 {
        for &addr in &addrs {
            let mut c = Client::connect(addr, Duration::from_secs(60)).unwrap();
            for (ci, &(kind, program)) in corpus.iter().enumerate() {
                let resp = c.analyze(kind, program, "origin").unwrap();
                expect_ok(&resp).unwrap_or_else(|e| panic!("pass {pass} via {addr}: {e}"));
                responses[ci].push(resp.get("result").unwrap().render_compact());
            }
        }
    }
    // Byte-identity: all 6 responses per key — across nodes, across
    // passes, forwarded or local, hit or miss — carry identical result
    // bytes.
    for (ci, all) in responses.iter().enumerate() {
        assert_eq!(all.len(), 6);
        for r in all {
            assert_eq!(r, &all[0], "corpus entry {ci} diverged across the tier");
        }
    }

    // Cache coherence: 36 requests over 6 unique keys fill exactly 6
    // entries *tier-wide* — routing resolved every duplicate to one shard.
    let total_misses: u64 = nodes.iter().map(|(h, _)| h.cache().stats().misses).sum();
    let total_entries: u64 = nodes.iter().map(|(h, _)| h.cache().stats().entries).sum();
    assert_eq!(total_misses, 6, "one miss per unique key across the whole tier");
    assert_eq!(total_entries, 6);

    // Routing identities, per node: every program request was either
    // served locally or forwarded; no forward failed; what one node
    // counts as forwarded-out its peers count as forwarded-in.
    let mut fwd_out = 0u64;
    let mut fwd_in = 0u64;
    for (h, _) in &nodes {
        let m = h.metrics();
        assert_eq!(counter(m, "local") + counter(m, "forward"), 12, "12 routing decisions");
        assert_eq!(counter(m, "fwd_err"), 0);
        fwd_out += counter(m, "forward");
        fwd_in += counter(m, "fwd_in");
    }
    assert_eq!(fwd_out, fwd_in, "forwarded-out and forwarded-in must reconcile tier-wide");
    assert!(fwd_out > 0, "a 3-node tier with 6 keys forwards something");

    // cluster-stats reconciles with the node's own Prometheus counters.
    for (ni, &addr) in addrs.iter().enumerate() {
        let mut c = Client::connect(addr, Duration::from_secs(30)).unwrap();
        let resp = c
            .roundtrip(&Json::obj([
                ("schema", Json::str("mbb-serve/1")),
                ("kind", Json::str("cluster-stats")),
            ]))
            .unwrap();
        expect_ok(&resp).unwrap();
        let stats = resp.get("result").expect("result");
        assert_eq!(stats.get("schema").and_then(Json::as_str), Some("mbb-cluster-stats/1"));
        assert_eq!(stats.get("nodes"), Some(&Json::UInt(3)));
        let m = nodes[ni].0.metrics();
        assert_eq!(stats.get("forwarded_in"), Some(&Json::UInt(counter(m, "fwd_in"))), "node {ni}");
        let Some(Json::Arr(peers_arr)) = stats.get("peers") else {
            panic!("node {ni}: no peers array: {stats:?}");
        };
        assert_eq!(peers_arr.len(), 3);
        let mut self_routed = 0;
        let mut other_routed = 0;
        let mut forwarded = 0;
        for p in peers_arr {
            let routed = match p.get("routed") {
                Some(Json::UInt(n)) => *n,
                other => panic!("node {ni}: routed is {other:?}"),
            };
            if p.get("self") == Some(&Json::Bool(true)) {
                self_routed += routed;
            } else {
                other_routed += routed;
                if let Some(Json::UInt(f)) = p.get("forwarded") {
                    forwarded += *f;
                }
            }
        }
        assert_eq!(self_routed, counter(m, "local"), "node {ni}: local routing");
        assert_eq!(other_routed, counter(m, "forward"), "node {ni}: forward routing");
        assert_eq!(forwarded, counter(m, "forward") - counter(m, "fwd_err"), "node {ni}");
    }

    for (h, t) in nodes {
        h.shutdown();
        t.join().unwrap();
    }
}

#[test]
fn tier_survives_a_dead_peer_with_local_fallback() {
    // Two live nodes plus one address nobody ever binds: a third of the
    // ring routes into a black hole and must fall back to local compute.
    let addrs = free_addrs(3);
    let peers: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let live: Vec<(Handle, std::thread::JoinHandle<()>)> =
        addrs[..2].iter().map(|&a| start_node(a, peers.clone())).collect();

    let programs = [SUM, FIG7, SAXPY];
    for &addr in &addrs[..2] {
        let mut c = Client::connect(addr, Duration::from_secs(60)).unwrap();
        for kind in ["report", "trace-stats", "advise"] {
            for program in programs {
                let resp = c.analyze(kind, program, "origin").unwrap();
                expect_ok(&resp).unwrap_or_else(|e| panic!("via {addr}: {e}"));
            }
        }
    }

    // Every request was answered; forwards between the live pair worked
    // and any forward to the dead peer failed over to local compute.
    for (h, _) in &live {
        let m = h.metrics();
        assert_eq!(counter(m, "local") + counter(m, "forward"), 9);
    }

    // Drive distinct keys through node 0 until one provably routes to the
    // dead peer (about a third do, so a handful of probes suffice; 64
    // bounds the loop at a (2/3)^64 ≈ 5e-12 flake).  Every probe must
    // still be answered — that is the fallback under test.
    let mut c = Client::connect(addrs[0], Duration::from_secs(60)).unwrap();
    for i in 0..64 {
        if counter(live[0].0.metrics(), "fwd_err") > 0 {
            break;
        }
        let program = format!(
            "program probe{i}\narray a[{n}]\nscalar s = 0  // printed\nfor i = 0, {top}\n  s = (s + a[i])\nend for\n",
            n = 64 + i,
            top = 63 + i
        );
        let resp = c.analyze("report", &program, "origin").unwrap();
        expect_ok(&resp).unwrap_or_else(|e| panic!("probe {i}: fallback failed: {e}"));
    }
    assert!(
        counter(live[0].0.metrics(), "fwd_err") > 0,
        "no forward ever failed — the dead peer was never routed to"
    );

    // The dead peer shows up as down in cluster-stats while the breaker
    // is open (the probe loop left a fresh failure behind).
    let resp = c
        .roundtrip(&Json::obj([
            ("schema", Json::str("mbb-serve/1")),
            ("kind", Json::str("cluster-stats")),
        ]))
        .unwrap();
    expect_ok(&resp).unwrap();
    let Some(Json::Arr(peers_arr)) = resp.get("result").and_then(|r| r.get("peers")) else {
        panic!("no peers array: {resp:?}");
    };
    assert!(
        peers_arr.iter().any(|p| p.get("down") == Some(&Json::Bool(true))),
        "node 0 saw forward errors but reports no peer down: {resp:?}"
    );

    for (h, t) in live {
        h.shutdown();
        t.join().unwrap();
    }
}
