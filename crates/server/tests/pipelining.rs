//! Pipelining tests against a live in-process server: many in-flight
//! requests on one connection, out-of-order completion, id↔response
//! pairing, and the quiescence rules of the connection layer.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mbb_bench::json::Json;
use mbb_server::client::{self, Pipeline};
use mbb_server::server::{serve, Config, Handle};
use proptest::collection::vec;
use proptest::prelude::*;

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";
const SAXPY: &str = "program saxpy\narray x[512]\narray y[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  y[i] = (y[i] + (2 * x[i]))\nend for\nfor j = 0, 511\n  s = (s + y[j])\nend for\n";

fn start(cfg: Config) -> (SocketAddr, Handle, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        serve(cfg, move |addr, handle| tx.send((addr, handle)).unwrap()).unwrap();
    });
    let (addr, handle) = rx.recv_timeout(Duration::from_secs(10)).expect("server came up");
    (addr, handle, thread)
}

/// Regression for the idle-timeout semantics: two envelopes arriving in
/// one TCP segment must *both* be answered.  The connection has no
/// further readable bytes after the segment, so a per-read idle timeout
/// (the old rule) would cut it off with the second request still
/// buffered; quiescence (no in-flight requests AND no buffered bytes)
/// must not.
#[test]
fn two_envelopes_in_one_tcp_segment_are_both_answered_before_quiescence() {
    let (addr, handle, thread) =
        start(Config { workers: 2, read_timeout: Duration::from_millis(700), ..Config::default() });

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let one = client::with_id(&client::request("report", Some(SUM), "origin"), 1).render_compact();
    let two = client::with_id(&client::request("report", Some(FIG7), "origin"), 2).render_compact();
    // One write, one segment (both lines are far under the MSS).
    s.write_all(format!("{one}\n{two}\n").as_bytes()).unwrap();

    let mut reader = BufReader::new(s);
    let mut ids = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response line");
        assert!(n > 0, "connection closed with a buffered request unanswered");
        let doc = Json::parse(line.trim_end()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
        ids.push(match doc.get("id") {
            Some(Json::UInt(n)) => *n,
            other => panic!("missing id echo: {other:?} in {line}"),
        });
    }
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2], "both pipelined requests answered");

    // Now the connection is quiescent; the server closes it after the
    // idle window (the sweep runs every 50ms, so allow slack).
    let t = Instant::now();
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean EOF, not a reset");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
    let waited = t.elapsed();
    assert!(
        waited >= Duration::from_millis(500),
        "closed after {waited:?} — before the quiescence window"
    );

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn thirty_two_in_flight_requests_pair_up_by_id() {
    let (addr, handle, thread) =
        start(Config { workers: 3, pipeline_depth: 32, ..Config::default() });

    let programs = [SUM, FIG7, SAXPY];
    let kinds = ["report", "advise", "trace-stats", "optimize"];
    let lines: Vec<String> = (0..32u64)
        .map(|i| {
            let req = client::request(
                kinds[(i % 4) as usize],
                Some(programs[(i % 3) as usize]),
                "origin",
            );
            client::with_id(&req, i).render_compact()
        })
        .collect();

    let mut p = Pipeline::connect(addr, Duration::from_secs(60)).unwrap();
    p.send_batch(&lines).unwrap();
    assert_eq!(p.inflight(), 32);
    let by_id = p.drain().unwrap();
    assert_eq!(by_id.len(), 32, "every id answered exactly once");

    // Pairing is semantic, not positional: each response's result must be
    // the one for *that id's* request, which the kind echo pins down.
    for (i, resp) in &by_id {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "id {i}: {resp:?}");
        let kind = resp.get("kind").and_then(Json::as_str).unwrap();
        assert_eq!(kind, kinds[(*i % 4) as usize], "id {i} paired with the wrong response");
        let text = resp
            .get("result")
            .and_then(|r| r.get("text"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("id {i}: no result text: {resp:?}"));
        let progname = ["sum", "fig7", "saxpy"][(*i % 3) as usize];
        // Every kind's text names its program up front, pinning the
        // program this response is for.
        let needle = match kind {
            "trace-stats" => format!("trace of {progname} on "),
            "advise" => format!("advice for `{progname}` on "),
            _ => format!("program {progname} on "),
        };
        assert!(text.contains(&needle), "id {i}: result for the wrong program:\n{text}");
    }

    // 32 requests over 12 distinct keys: the cache collapsed the rest.
    let stats = handle.cache().stats();
    assert_eq!(stats.hits + stats.misses, 32, "{stats:?}");
    assert_eq!(stats.misses, 12, "{stats:?}");

    handle.shutdown();
    thread.join().unwrap();
}

/// The pipeline cap suspends reading instead of shedding or deadlocking:
/// a burst twice the depth still gets every response.
#[test]
fn bursts_past_the_pipeline_depth_backpressure_instead_of_failing() {
    let (addr, handle, thread) =
        start(Config { workers: 2, pipeline_depth: 4, queue_depth: 64, ..Config::default() });

    let lines: Vec<String> = (0..24u64)
        .map(|i| {
            client::with_id(&client::request("report", Some(SUM), "origin"), i).render_compact()
        })
        .collect();
    let mut p = Pipeline::connect(addr, Duration::from_secs(60)).unwrap();
    p.send_batch(&lines).unwrap();
    let by_id = p.drain().unwrap();
    assert_eq!(by_id.len(), 24);
    for (i, resp) in &by_id {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "id {i}: {resp:?}");
    }

    handle.shutdown();
    thread.join().unwrap();
}

/// Shared server for the framing property: spawning one per proptest case
/// would dominate the run time.
fn shared_server() -> SocketAddr {
    use std::sync::OnceLock;
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            serve(
                Config { workers: 2, pipeline_depth: 8, ..Config::default() },
                move |addr, handle| tx.send((addr, handle)).unwrap(),
            )
            .unwrap();
        });
        let (addr, _handle) = rx.recv_timeout(Duration::from_secs(10)).expect("server came up");
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pipelined framing is segmentation-invariant: however the request
    /// bytes are chunked across writes (including mid-envelope splits and
    /// several envelopes per segment), every id comes back exactly once
    /// on a well-formed envelope.
    #[test]
    fn pipelined_framing_survives_arbitrary_segmentation(
        count in 1usize..8,
        cuts in vec(0usize..4096, 0..6),
        pauses in vec(any::<bool>(), 0..6),
    ) {
        let addr = shared_server();
        let mut wire = Vec::new();
        for i in 0..count as u64 {
            let req = client::with_id(&client::request("machines", None, ""), i);
            wire.extend_from_slice(req.render_compact().as_bytes());
            wire.push(b'\n');
        }
        // Deterministic cut points derived from the generated offsets.
        let mut points: Vec<usize> = cuts.iter().map(|c| c % wire.len().max(1)).collect();
        points.sort_unstable();
        points.dedup();

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut sent = 0usize;
        for (k, &p) in points.iter().enumerate() {
            if p > sent {
                s.write_all(&wire[sent..p]).unwrap();
                sent = p;
            }
            // A short pause forces the partial write onto the wire as its
            // own segment rather than coalescing with the next chunk.
            if pauses.get(k).copied().unwrap_or(false) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        s.write_all(&wire[sent..]).unwrap();

        let mut reader = BufReader::new(s);
        let mut seen = vec![0u32; count];
        for _ in 0..count {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("response line");
            prop_assert!(n > 0, "connection closed early");
            let doc = Json::parse(line.trim_end()).expect("well-formed envelope");
            prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{}", line);
            let Some(Json::UInt(id)) = doc.get("id") else {
                panic!("no id echo in {line}");
            };
            seen[*id as usize] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "ids answered exactly once: {:?}", seen);
    }
}
