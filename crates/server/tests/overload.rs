//! Overload-control integration tests: a live server under deadline
//! pressure, pinned brown-out levels over the wire, and a miniature
//! capacity storm with recovery.
//!
//! The deterministic state-machine behaviour (thresholds, hysteresis,
//! degrade actions) is unit-tested in `server::overload` and
//! `server::server`; these tests check the same policies end-to-end
//! through real sockets, workers, and the accept queue.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mbb_bench::json::Json;
use mbb_server::client::{expect_ok, request, Client};
use mbb_server::server::{serve, Config, Handle};

const SUM: &str = "program sum\narray a[512]\nscalar s = 0  // printed\nfor i = 0, 511\n  s = (s + a[i])\nend for\n";
const FIG7: &str = "program fig7\narray res[512]\narray data[512]\nscalar sum = 0  // printed\nfor i = 0, 511\n  res[i] = (res[i] + data[i])\nend for\nfor j = 0, 511\n  sum = (sum + res[j])\nend for\n";

fn start(cfg: Config) -> (SocketAddr, Handle, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        serve(cfg, move |addr, handle| tx.send((addr, handle)).unwrap()).unwrap();
    });
    let (addr, handle) = rx.recv_timeout(Duration::from_secs(10)).expect("server came up");
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(60)).expect("connect")
}

fn error_code(resp: &Json) -> Option<String> {
    resp.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()).map(str::to_string)
}

fn health(c: &mut Client) -> Json {
    let resp = c.roundtrip(&request("health", None, "")).expect("health round-trip");
    expect_ok(&resp).expect("health is ok");
    resp.get("result").cloned().expect("health result")
}

fn with_options(req: &Json, beam: u64, steps: u64) -> Json {
    let Json::Obj(mut pairs) = req.clone() else { panic!("request is an object") };
    pairs.push((
        "options".to_string(),
        Json::obj([("beam", Json::UInt(beam)), ("search_steps", Json::UInt(steps))]),
    ));
    Json::Obj(pairs)
}

/// Levels pinned through the handle (controller off) drive shedding and
/// degradation over real sockets exactly as the unit tests predict.
#[test]
fn pinned_brownout_levels_shed_and_degrade_over_the_wire() {
    let (addr, handle, thread) = start(Config { workers: 1, brownout: false, ..Config::default() });
    let m = handle.metrics();
    let mut c = connect(addr);

    // Level 0: a wide search caches normally.
    let wide = with_options(&request("optimize-search", Some(FIG7), "origin"), 4, 5);
    let baseline = c.roundtrip_raw(&wide.render_compact()).unwrap();
    assert!(baseline.contains("\"ok\":true"), "{baseline}");
    assert!(!baseline.contains("\"degraded\""), "{baseline}");

    // Level 3: search traffic is shed with a structured busy.
    m.brownout_level.store(3, Ordering::Relaxed);
    let resp = c.roundtrip(&wide).unwrap();
    assert_eq!(error_code(&resp).as_deref(), Some("busy"), "{resp:?}");
    // Higher classes still flow.
    let resp = c.analyze("report", SUM, "origin").unwrap();
    expect_ok(&resp).unwrap();

    // Level 2: the search runs, clamped, with the degraded marker, and
    // bypasses the warm cache entry.
    m.brownout_level.store(2, Ordering::Relaxed);
    let resp = c.roundtrip(&wide).unwrap();
    expect_ok(&resp).unwrap();
    let degraded = resp.get("degraded").expect("degraded marker at level 2");
    assert_eq!(
        degraded.get("actions"),
        Some(&Json::Arr(vec![Json::str("search-clamp")])),
        "{degraded:?}"
    );
    assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp:?}");

    // Level 1: profile splicing is dropped.
    m.brownout_level.store(1, Ordering::Relaxed);
    let Json::Obj(mut pairs) = request("report", Some(SUM), "origin") else { unreachable!() };
    pairs.push(("profile".to_string(), Json::Bool(true)));
    let resp = c.roundtrip(&Json::Obj(pairs)).unwrap();
    expect_ok(&resp).unwrap();
    let degraded = resp.get("degraded").expect("degraded marker at level 1");
    assert_eq!(
        degraded.get("actions"),
        Some(&Json::Arr(vec![Json::str("no-profile")])),
        "{degraded:?}"
    );
    assert!(resp.get("result").and_then(|r| r.get("profile")).is_none(), "{resp:?}");

    // Back at level 0 the baseline entry replays byte-identically: the
    // degraded traffic never touched the cache.
    m.brownout_level.store(0, Ordering::Relaxed);
    let replay = c.roundtrip_raw(&wide.render_compact()).unwrap();
    assert_eq!(baseline.replace("\"cached\":false", "\"cached\":true"), replay);

    // The shed/degrade counters surface in the metrics exposition.
    let text = c.metrics_text().unwrap();
    assert!(
        text.contains("mbb_serve_shed_total{class=\"search\",reason=\"brownout\"} 1"),
        "{text}"
    );
    assert!(text.contains("mbb_serve_degraded_total{action=\"search-clamp\"} 1"), "{text}");
    assert!(text.contains("mbb_serve_degraded_total{action=\"no-profile\"} 1"), "{text}");
    assert!(text.contains("mbb_serve_brownout_level 0"), "{text}");

    handle.shutdown();
    thread.join().unwrap();
}

/// A health round-trip reports ok/level-0 on a quiet server.
#[test]
fn health_kind_round_trips_on_a_quiet_server() {
    let (addr, handle, thread) = start(Config { workers: 1, ..Config::default() });
    let mut c = connect(addr);
    let h = health(&mut c);
    assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"), "{h:?}");
    assert_eq!(h.get("level"), Some(&Json::UInt(0)), "{h:?}");
    assert_eq!(h.get("brownout_enabled"), Some(&Json::Bool(true)), "{h:?}");
    handle.shutdown();
    thread.join().unwrap();
}

/// Time spent stalled in the accept queue counts against the request's
/// wall deadline: the worker answers `deadline_exceeded` without running
/// the analysis.  `Site::WorkerStall` makes the stall deterministic.
#[cfg(feature = "faults")]
#[test]
fn queue_wait_counts_against_the_deadline() {
    use mbb_server::faults::{install, FaultPlan, Site};

    let (addr, handle, thread) = start(Config {
        workers: 1,
        request_deadline: Some(Duration::from_millis(60)),
        brownout: false,
        ..Config::default()
    });
    let _g = install(
        FaultPlan::new(0x5EED).rate(Site::WorkerStall, 1024).delay(Duration::from_millis(250)),
    );
    let mut c = connect(addr);
    // The worker stalls 250ms after popping this connection; by the time
    // it reads the request, the 60ms deadline is long gone.
    let resp = c.analyze("report", SUM, "origin").unwrap();
    let err = expect_ok(&resp).unwrap_err();
    assert_eq!(err.kind, mbb_server::ErrorKind::DeadlineExceeded, "{resp:?}");
    assert!(err.message.contains("accept queue"), "{}", err.message);
    assert!(mbb_server::faults::fired(Site::WorkerStall) >= 1, "the stall site should have fired");
    drop(_g);

    // Un-stalled, the same request on the same worker completes in time.
    // (Drop the old connection first: it owns the only worker until EOF.)
    drop(c);
    let mut c = connect(addr);
    let resp = c.analyze("report", SUM, "origin").unwrap();
    expect_ok(&resp).unwrap();

    handle.shutdown();
    thread.join().unwrap();
}

/// A miniature capacity storm: more keep-alive clients than the one
/// worker and four queue slots can carry.  The pegged accept queue drives
/// the controller up, low-priority and over-threshold traffic is shed
/// with structured busy responses (never hangs), profiled requests pick
/// up degraded markers, and once the storm stops the controller returns
/// to level 0 on its own with the cache bytes intact.
#[test]
fn capacity_storm_escalates_and_recovers_to_level_zero() {
    use std::sync::atomic::{AtomicBool, AtomicU64};

    let (addr, handle, thread) = start(Config { workers: 1, queue_depth: 4, ..Config::default() });
    let mut c = connect(addr);

    // Warm the cache at level 0.
    let warm = request("report", Some(FIG7), "origin");
    let baseline = c.roundtrip_raw(&warm.render_compact()).unwrap();
    assert!(baseline.contains("\"ok\":true"), "{baseline}");
    drop(c); // free the only worker for the storm

    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let max_level = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(60);

    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let (ok, busy, degraded, stop) = (&ok, &busy, &degraded, &stop);
            scope.spawn(move || {
                let mut conn: Option<Client> = None;
                for i in 0..200u64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let cl = match conn.take() {
                        Some(cl) => cl,
                        // Shed or dropped connections reconnect; a refused
                        // connect just retries on the next iteration.
                        None => match Client::connect(addr, Duration::from_secs(30)) {
                            Ok(cl) => cl,
                            Err(_) => {
                                std::thread::sleep(Duration::from_millis(2));
                                continue;
                            }
                        },
                    };
                    let mut cl = cl;
                    // Every other request asks for a profile so degraded
                    // markers show up once the controller escalates.
                    let req = if (t + i) % 2 == 0 {
                        let Json::Obj(mut pairs) = request("report", Some(SUM), "origin") else {
                            unreachable!()
                        };
                        pairs.push(("profile".to_string(), Json::Bool(true)));
                        Json::Obj(pairs)
                    } else {
                        request("report", Some(SUM), "origin")
                    };
                    // An Err means the connection dropped mid-request:
                    // loop around and reconnect.
                    if let Ok(resp) = cl.roundtrip(&req) {
                        if resp.get("ok") == Some(&Json::Bool(true)) {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if resp.get("degraded").is_some() {
                                degraded.fetch_add(1, Ordering::Relaxed);
                            }
                            conn = Some(cl); // keep-alive
                        } else if error_code(&resp).as_deref() == Some("busy") {
                            busy.fetch_add(1, Ordering::Relaxed);
                            // Shed connections are closed server-side.
                        } else {
                            panic!("unexpected storm response: {resp:?}");
                        }
                    }
                }
            });
        }
        // Watch the controller from outside the request path; stop the
        // storm once it has demonstrably escalated and degraded.
        let m = handle.metrics();
        loop {
            let level = m.brownout_level.load(Ordering::Relaxed);
            max_level.fetch_max(level, Ordering::Relaxed);
            if (max_level.load(Ordering::Relaxed) >= 1
                && degraded.load(Ordering::Relaxed) >= 1
                && busy.load(Ordering::Relaxed) >= 1)
                || Instant::now() >= deadline
            {
                stop.store(true, Ordering::Relaxed);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    assert!(ok.load(Ordering::Relaxed) >= 1, "some requests must succeed during the storm");
    assert!(busy.load(Ordering::Relaxed) >= 1, "an overloaded queue must shed with busy");
    assert!(
        max_level.load(Ordering::Relaxed) >= 1,
        "a pegged accept queue must escalate the controller (ok={} busy={})",
        ok.load(Ordering::Relaxed),
        busy.load(Ordering::Relaxed)
    );
    assert!(
        degraded.load(Ordering::Relaxed) >= 1,
        "profiled requests under brown-out carry the degraded marker"
    );

    // Drain: the acceptor's idle ticks feed zeros; the controller must
    // come back down to level 0 on its own.
    let mut c = connect(addr);
    let recover_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = health(&mut c);
        if h.get("level") == Some(&Json::UInt(0)) {
            assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"), "{h:?}");
            break;
        }
        assert!(Instant::now() < recover_deadline, "controller never recovered: {h:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The warm entry replays byte-identically after the whole storm, and
    // the shed counters surface in the exposition.
    let replay = c.roundtrip_raw(&warm.render_compact()).unwrap();
    assert_eq!(baseline.replace("\"cached\":false", "\"cached\":true"), replay);
    let text = c.metrics_text().unwrap();
    assert!(text.contains("mbb_serve_shed_total"), "{text}");

    handle.shutdown();
    thread.join().unwrap();
}
