//! Property tests for the brown-out state machine in isolation.
//!
//! [`Brownout`] is deliberately a pure integer function of its observation
//! sequence — no floats, no clock — so its safety properties can be
//! checked exhaustively-ish here: the ladder moves one rung at a time,
//! escalation is monotone while pressure rises, the hysteresis band
//! prevents flapping between adjacent levels, and sustained idle always
//! brings the controller back to level 0.

use mbb_server::overload::{Brownout, BrownoutConfig};
use proptest::collection::vec;
use proptest::prelude::*;

/// Raw observation values: the controller caps inputs at 4096 internally,
/// so feed past the cap on purpose.
fn arb_input() -> impl Strategy<Value = u64> {
    0u64..=8192
}

fn cfg(alpha_1024: u64, hold: u32) -> BrownoutConfig {
    BrownoutConfig { alpha_1024, hold, ..BrownoutConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any observation sequence and any sane tuning: the level
    /// stays in 0..=3, moves at most one rung per observation, and the
    /// smoothed pressures respect the input cap.
    #[test]
    fn level_is_bounded_and_moves_one_rung_at_a_time(
        queue in vec(arb_input(), 0..200),
        busy in vec(arb_input(), 0..200),
        alpha in 1u64..=1024,
        hold in 1u32..=4,
    ) {
        let mut b = Brownout::new(cfg(alpha, hold));
        let mut prev = b.level();
        for i in 0..queue.len().min(busy.len()) {
            let l = b.observe(queue[i], busy[i]);
            prop_assert!(l <= 3, "level out of range: {l}");
            prop_assert!((i64::from(l) - i64::from(prev)).abs() <= 1,
                "jumped {prev} -> {l} in one observation");
            prop_assert!(b.pressure() <= 4096, "pressure over the input cap");
            prev = l;
        }
    }

    /// With raw pressure nondecreasing from a fresh controller, the EWMA
    /// chases it from below, so the level never de-escalates: escalation
    /// is monotone while the overload builds.
    #[test]
    fn escalation_is_monotone_under_nondecreasing_pressure(
        inputs in vec(0u64..=4096, 1..200),
        alpha in 1u64..=1024,
        hold in 1u32..=4,
    ) {
        let mut inputs = inputs;
        inputs.sort_unstable();
        let mut b = Brownout::new(cfg(alpha, hold));
        let mut prev = 0u8;
        for x in inputs {
            let l = b.observe(x, x);
            prop_assert!(l >= prev, "de-escalated {prev} -> {l} while pressure rose");
            prev = l;
        }
    }

    /// Pressure that stays strictly inside the hysteresis band around an
    /// occupied level never moves the ladder: no flapping between
    /// adjacent levels on in-band noise.
    #[test]
    fn hysteresis_band_prevents_flapping(
        k in 1u8..=3,
        raws in vec(0u64..=1024, 1..300),
        seed_raw in 0u64..=1024,
        alpha in 1u64..=1024,
        hold in 1u32..=4,
    ) {
        let c = cfg(alpha, hold);
        // The open band for level k: above the de-escalation threshold,
        // below the escalation one (level 3 has no up-threshold; its
        // band is bounded the same way for uniformity).
        let lo = c.down[k as usize - 1] + 1;
        let hi = c.up[(k as usize).min(2)] - 1;
        prop_assert!(lo <= hi, "default thresholds must leave a band");
        let squeeze = |raw: u64| lo + raw % (hi - lo + 1);
        let mut b = Brownout::with_state(c, k, squeeze(seed_raw));
        for raw in raws {
            let l = b.observe(squeeze(raw), squeeze(raw));
            prop_assert_eq!(l, k, "flapped off level {} inside the band", k);
        }
    }

    /// From any state — any level, any pressure, any tuning — sustained
    /// idle input always decays the controller back to level 0 and zero
    /// pressure.
    #[test]
    fn sustained_idle_always_returns_to_level_zero(
        level in 0u8..=3,
        pressure in 0u64..=4096,
        alpha in 1u64..=1024,
        hold in 1u32..=4,
    ) {
        let mut b = Brownout::with_state(cfg(alpha, hold), level, pressure);
        // The EWMA strictly decreases on zero input while positive, so
        // 4096 observations zero the pressure; a few more cover the
        // hold-debounced walk down the rungs.
        let mut l = b.level();
        for _ in 0..(4096 + 16 * hold as usize) {
            l = b.observe(0, 0);
        }
        prop_assert_eq!(l, 0, "stuck at level {} with pressure {}", b.level(), b.pressure());
        prop_assert_eq!(b.pressure(), 0);
    }
}
