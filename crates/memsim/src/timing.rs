//! The bottleneck (roofline-style) timing model.
//!
//! The paper's central claim is that on bandwidth-saturated programs the
//! execution time is set by the most-saturated data channel, not by the
//! nominal miss latency: "actual latency is the inverse of the consumed
//! bandwidth".  The timing model states this claim directly:
//!
//! ```text
//! time = max( flops / peak_flops,  bytes_c / bandwidth_c  for every channel c )
//!        + Σ_level  misses_level × exposed_latency_level
//! ```
//!
//! With zero exposed latency (perfect latency tolerance — the best any
//! prefetching scheme can do) this is a pure bandwidth bound; the optional
//! latency term models machines without prefetch, like the PA-8000.  The
//! `ablation_timing` bench shows the paper's Figure-3 shapes survive either
//! choice.

use crate::hierarchy::TrafficReport;
use crate::machine::MachineModel;

/// What limited a predicted execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bottleneck {
    /// Peak flop rate.
    Compute,
    /// The data channel at this index (0 = registers↔L1, last = memory).
    Channel(usize),
}

/// A predicted execution time with its breakdown.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Total predicted time in seconds.
    pub time_s: f64,
    /// Time the compute pipe alone would need.
    pub compute_s: f64,
    /// Time each channel alone would need (same indexing as
    /// [`MachineModel::bandwidth_mbs`]).
    pub channel_s: Vec<f64>,
    /// The exposed-latency term.
    pub latency_s: f64,
    /// Which resource set the max term.
    pub bottleneck: Bottleneck,
}

impl Prediction {
    /// Utilisation of the compute pipe: `compute_s / time_s`.  The paper's
    /// "average CPU utilization of no more than 1/ratio".
    pub fn cpu_utilization(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.compute_s / self.time_s
        }
    }
}

/// Predicts the execution time of a run summarised by `report` with `flops`
/// floating-point operations on `machine`.
///
/// # Panics
/// Panics if the report's channel count does not match the machine's.
pub fn predict(machine: &MachineModel, report: &TrafficReport, flops: u64) -> Prediction {
    assert_eq!(
        report.channel_bytes.len(),
        machine.bandwidth_mbs.len(),
        "report channels must match machine channels (same cache depth)"
    );
    let compute_s = flops as f64 / (machine.peak_mflops * 1e6);
    let channel_s: Vec<f64> = report
        .channel_bytes
        .iter()
        .zip(&machine.bandwidth_mbs)
        .map(|(&b, &bw)| b as f64 / (bw * 1e6))
        .collect();
    let mut time_s = compute_s;
    let mut bottleneck = Bottleneck::Compute;
    for (k, &t) in channel_s.iter().enumerate() {
        if t > time_s {
            time_s = t;
            bottleneck = Bottleneck::Channel(k);
        }
    }
    let mut latency_s: f64 = report
        .level_stats
        .iter()
        .zip(&machine.exposed_latency_s)
        .map(|(s, &lat)| s.misses() as f64 * lat)
        .sum();
    if let Some(tlb) = machine.tlb {
        latency_s += report.tlb_misses as f64 * tlb.miss_latency_s;
    }
    Prediction { time_s: time_s + latency_s, compute_s, channel_s, latency_s, bottleneck }
}

/// Effective bandwidth in MB/s given bytes moved and elapsed time — the
/// metric of the paper's Figure 3.  On the Exemplar the paper could not
/// count conflict traffic, so it divided the *program-required* bytes by
/// the time; pass those bytes to reproduce that methodology, or the
/// simulated memory-channel bytes to reproduce the counter-based one.
pub fn effective_bandwidth_mbs(bytes: u64, time_s: f64) -> f64 {
    if time_s == 0.0 {
        0.0
    } else {
        bytes as f64 / time_s / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LevelStats;
    use crate::machine::MachineModel;

    fn report(reg: u64, l1l2: u64, mem: u64) -> TrafficReport {
        TrafficReport {
            channel_bytes: vec![reg, l1l2, mem],
            level_stats: vec![LevelStats::default(), LevelStats::default()],
            mem_read_bytes: mem,
            mem_write_bytes: 0,
            tlb_misses: 0,
        }
    }

    #[test]
    fn memory_bound_case() {
        let m = MachineModel::origin2000();
        // 16 MB of memory traffic at 312 MB/s ≈ 51.3 ms regardless of a
        // tiny flop count.
        let p = predict(&m, &report(16_000_000, 16_000_000, 16_000_000), 2_000_000);
        assert!((p.time_s - 16.0 / 312.0).abs() < 1e-6);
        assert_eq!(p.bottleneck, Bottleneck::Channel(2));
        assert!(p.cpu_utilization() < 0.11);
    }

    #[test]
    fn compute_bound_case() {
        let m = MachineModel::origin2000();
        // Lots of flops, almost no traffic.
        let p = predict(&m, &report(8, 0, 0), 390_000_000);
        assert_eq!(p.bottleneck, Bottleneck::Compute);
        assert!((p.time_s - 1.0).abs() < 1e-9);
        assert!((p.cpu_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_channel_can_bottleneck() {
        let m = MachineModel::origin2000();
        let p = predict(&m, &report(1_560_000_000, 0, 0), 1000);
        assert_eq!(p.bottleneck, Bottleneck::Channel(0));
        assert!((p.time_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exposed_latency_adds() {
        let mut m = MachineModel::origin2000();
        m.exposed_latency_s = vec![0.0, 100e-9];
        let mut r = report(0, 0, 0);
        r.level_stats[1].read_misses = 1_000_000;
        let p = predict(&m, &r, 0);
        assert!((p.latency_s - 0.1).abs() < 1e-9);
        assert!((p.time_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth() {
        assert_eq!(effective_bandwidth_mbs(312_000_000, 1.0), 312.0);
        assert_eq!(effective_bandwidth_mbs(0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "channels must match")]
    fn mismatched_channels_panic() {
        let m = MachineModel::exemplar();
        let _ = predict(&m, &report(0, 0, 0), 0);
    }
}
