//! CacheBench (Mucci & London) on the simulator.
//!
//! The paper measures each machine's *cache* bandwidth with CacheBench and
//! uses it for the register↔L1 and L1↔L2 rows of the machine balance.
//! This port sweeps a read-modify-write kernel over working-set sizes; a
//! working set that fits in level *k* but not level *k−1* saturates the
//! channel *into* level *k*, so the measured plateau per region is the
//! per-channel supply.

use mbb_ir::trace::AccessSink;

use crate::arena::{Arena, TracedArray};
use crate::machine::MachineModel;
use crate::timing::{effective_bandwidth_mbs, predict};

/// Measured bandwidth at one working-set size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Working-set size in bytes.
    pub bytes: u64,
    /// Effective register-channel bandwidth in MB/s (reads+writes issued by
    /// the kernel over the predicted time).
    pub mbs: f64,
}

/// Runs the read-modify-write sweep over `sizes` (bytes per working set),
/// with `passes` passes over each working set (the first pass warms the
/// caches; more passes amortise it away).
pub fn sweep(machine: &MachineModel, sizes: &[u64], passes: usize) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let n = (bytes / 8).max(1) as usize;
            let mut arena = Arena::new();
            let mut a = TracedArray::from_fn(&mut arena, n, |i| i as f64);
            let mut h = machine.hierarchy();
            let sink: &mut dyn AccessSink = &mut h;
            let mut flops = 0u64;
            for _ in 0..passes {
                for i in 0..n {
                    let v = a.get(i, sink) + 1.0;
                    a.set(i, v, sink);
                    flops += 1;
                }
            }
            let report = h.report();
            let p = predict(machine, &report, flops);
            SweepPoint { bytes, mbs: effective_bandwidth_mbs(report.reg_bytes(), p.time_s) }
        })
        .collect()
}

/// Measures the bandwidth supply of each cache channel: for cache level
/// `k`, a working set half the size of level `k` (and at least twice the
/// size of level `k−1`) is swept, and the register-channel rate is
/// reported.  The last entry uses a working set of 4× the last level —
/// the memory channel — and is the cross-check against STREAM.
pub fn per_level_bandwidth(machine: &MachineModel) -> Vec<SweepPoint> {
    let mut sizes = Vec::new();
    for (k, c) in machine.caches.iter().enumerate() {
        let mut s = c.size / 2;
        if k > 0 {
            s = s.max(machine.caches[k - 1].size * 2);
        }
        sizes.push(s);
    }
    if let Some(last) = machine.caches.last() {
        sizes.push(last.size * 4);
    }
    sweep(machine, &sizes, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_cache_sweep_saturates_register_channel() {
        let m = MachineModel::origin2000();
        // 16 KB fits the 32 KB L1: after the warm pass everything hits.
        let pts = sweep(&m, &[16 * 1024], 8);
        let mbs = pts[0].mbs;
        assert!(
            (mbs - m.bandwidth_mbs[0]).abs() / m.bandwidth_mbs[0] < 0.1,
            "expected ≈{} MB/s, got {mbs}",
            m.bandwidth_mbs[0]
        );
    }

    #[test]
    fn bandwidth_drops_when_working_set_spills_to_memory() {
        // On the Origin model the register and L1↔L2 channels have equal
        // bandwidth (Figure 1's machine row: 4 / 4 / 0.8 bytes per flop), so
        // stride-one traffic measures the same plateau for L1- and
        // L2-resident sets; only the memory-resident point collapses.
        let m = MachineModel::origin2000();
        let pts = sweep(&m, &[16 * 1024, 1024 * 1024, 16 * 1024 * 1024], 4);
        assert!((pts[0].mbs - pts[1].mbs).abs() / pts[0].mbs < 0.15, "L1 ≈ L2 plateau");
        assert!(pts[2].mbs < 0.5 * pts[1].mbs, "memory-resident collapses");
    }

    #[test]
    fn per_level_covers_all_channels() {
        let m = MachineModel::origin2000();
        let pts = per_level_bandwidth(&m);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].mbs >= pts[1].mbs * 0.85);
        assert!(pts[1].mbs > pts[2].mbs, "memory point is the smallest");
    }
}
