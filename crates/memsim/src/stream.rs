//! STREAM (McCalpin) on the simulator.
//!
//! The paper measures each machine's sustainable memory bandwidth with
//! STREAM [ref 8] and uses it as the supply side of the memory channel.
//! This module runs the four STREAM kernels — COPY, SCALE, ADD, TRIAD —
//! against a [`MachineModel`]'s simulated hierarchy and timing model.
//!
//! Two rates are reported per kernel:
//!
//! * the **program rate** — STREAM's own convention: only the bytes the
//!   program logically moves (2 or 3 arrays × N × 8) over the elapsed
//!   time.  Write-allocate fetches make this land *below* the channel's
//!   peak, exactly as on real hardware;
//! * the **channel rate** — all bytes crossing the memory channel over the
//!   time, which reaches the configured peak when the kernel saturates it.
//!   The machine balance in Figure 1 is stated in channel terms.

use mbb_ir::trace::Buffered;

use crate::arena::{Arena, TracedArray};
use crate::machine::MachineModel;
use crate::timing::{effective_bandwidth_mbs, predict};

/// Rates achieved by one STREAM kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelRate {
    /// STREAM-convention rate (program bytes / time), MB/s.
    pub program_mbs: f64,
    /// Channel rate (all memory-channel bytes / time), MB/s.
    pub channel_mbs: f64,
    /// Predicted kernel time in seconds.
    pub time_s: f64,
}

/// Results of the four STREAM kernels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamResult {
    /// `c[i] = a[i]`.
    pub copy: KernelRate,
    /// `b[i] = s · c[i]`.
    pub scale: KernelRate,
    /// `c[i] = a[i] + b[i]`.
    pub add: KernelRate,
    /// `a[i] = b[i] + s · c[i]`.
    pub triad: KernelRate,
}

impl StreamResult {
    /// The best program-convention rate across kernels — what a STREAM run
    /// would report as the machine's sustainable bandwidth.
    pub fn sustainable_program_mbs(&self) -> f64 {
        [self.copy, self.scale, self.add, self.triad]
            .iter()
            .map(|k| k.program_mbs)
            .fold(0.0, f64::max)
    }

    /// The best channel rate across kernels — the measured supply used for
    /// machine balance.
    pub fn sustainable_channel_mbs(&self) -> f64 {
        [self.copy, self.scale, self.add, self.triad]
            .iter()
            .map(|k| k.channel_mbs)
            .fold(0.0, f64::max)
    }
}

/// Runs STREAM with `n` elements per array (must comfortably exceed the
/// last-level cache; [`run_default`] picks 4× its capacity).
pub fn run(machine: &MachineModel, n: usize) -> StreamResult {
    let kernel = |which: usize| -> KernelRate {
        let mut arena = Arena::new();
        let mut a = TracedArray::from_fn(&mut arena, n, |i| i as f64);
        let mut b = TracedArray::from_fn(&mut arena, n, |i| 2.0 * i as f64);
        let mut c = TracedArray::zeroed(&mut arena, n);
        let s = 3.0;
        let mut h = machine.hierarchy();
        // Stream through the batching adapter: the hierarchy consumes the
        // same events in the same order, in blocks.  Kept monomorphic so
        // the per-element pushes inline instead of going through a vtable.
        let mut buffered = Buffered::new(&mut h);
        let sink = &mut buffered;
        let (flops, program_bytes) = match which {
            0 => {
                for i in 0..n {
                    let v = a.get(i, sink);
                    c.set(i, v, sink);
                }
                (0, 16 * n as u64)
            }
            1 => {
                for i in 0..n {
                    let v = c.get(i, sink);
                    b.set(i, s * v, sink);
                }
                (n as u64, 16 * n as u64)
            }
            2 => {
                for i in 0..n {
                    let v = a.get(i, sink) + b.get(i, sink);
                    c.set(i, v, sink);
                }
                (n as u64, 24 * n as u64)
            }
            _ => {
                for i in 0..n {
                    let v = b.get(i, sink) + s * c.get(i, sink);
                    a.set(i, v, sink);
                }
                (2 * n as u64, 24 * n as u64)
            }
        };
        drop(buffered);
        h.flush();
        let report = h.report();
        let p = predict(machine, &report, flops);
        KernelRate {
            program_mbs: effective_bandwidth_mbs(program_bytes, p.time_s),
            channel_mbs: effective_bandwidth_mbs(report.mem_bytes(), p.time_s),
            time_s: p.time_s,
        }
    };
    StreamResult { copy: kernel(0), scale: kernel(1), add: kernel(2), triad: kernel(3) }
}

/// Runs STREAM with arrays sized at 4× the last-level cache.
pub fn run_default(machine: &MachineModel) -> StreamResult {
    let llc = machine.caches.last().map(|c| c.size).unwrap_or(1 << 20);
    run(machine, (4 * llc / 8) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_saturates_its_memory_channel() {
        let m = MachineModel::origin2000();
        let r = run(&m, 256 * 1024); // 2 MB arrays: > L1, and the three
                                     // arrays together far exceed the 4 MB L2
        let ch = r.sustainable_channel_mbs();
        assert!(
            (ch - m.memory_bandwidth_mbs()).abs() / m.memory_bandwidth_mbs() < 0.05,
            "channel rate {ch} should approach the 312 MB/s supply"
        );
        // Program-convention rate sits below the channel rate because of
        // write-allocate fetches.
        assert!(r.sustainable_program_mbs() < ch);
        assert!(r.sustainable_program_mbs() > 0.5 * ch);
    }

    #[test]
    fn copy_program_rate_is_two_thirds_of_channel() {
        // COPY logically moves 2 bytes per 3 bytes of channel traffic
        // (read a + fetch-for-write c + write-back c).
        let m = MachineModel::origin2000();
        let r = run(&m, 256 * 1024);
        let ratio = r.copy.program_mbs / r.copy.channel_mbs;
        assert!((ratio - 2.0 / 3.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn exemplar_pays_exposed_latency() {
        let m = MachineModel::exemplar();
        let r = run_default(&m);
        // With 20 ns exposed per miss the channel rate must sit visibly
        // below the 640 MB/s peak.
        let ch = r.sustainable_channel_mbs();
        assert!(ch < 0.95 * m.memory_bandwidth_mbs(), "channel rate {ch}");
        assert!(ch > 0.5 * m.memory_bandwidth_mbs());
    }
}
