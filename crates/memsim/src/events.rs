//! A thread-local odometer of simulated access events.
//!
//! The experiment runner wants per-job throughput (events/second) without
//! threading a counter through every simulation entry point, and without a
//! shared atomic that parallel jobs would contend on.  Every demand access
//! consumed by a [`crate::Hierarchy`] ticks the current thread's counter;
//! a job runner reads [`so_far`] before and after a job **on the thread
//! that executes it** and subtracts.
//!
//! Counts only ever grow (wrapping at `u64::MAX`, i.e. never in practice),
//! so deltas are race-free within a thread by construction.

use std::cell::Cell;

thread_local! {
    static SIM_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Ticks the current thread's event counter (one demand access).
#[inline]
pub(crate) fn record() {
    record_n(1)
}

/// Ticks the current thread's event counter by `n` at once — one
/// thread-local access per block instead of per event, which is what makes
/// the batched sink path cheap.
#[inline]
pub(crate) fn record_n(n: u64) {
    SIM_EVENTS.with(|c| c.set(c.get().wrapping_add(n)));
    // Mirror into the span-attribution odometer; inert (one relaxed
    // load) unless an mbb-obs Full collector is live.
    mbb_obs::tick_accesses(n);
}

/// Total simulated access events observed on this thread so far.
pub fn so_far() -> u64 {
    SIM_EVENTS.with(Cell::get)
}

/// A snapshot of this thread's full simulation odometer — the events
/// counter above plus the per-level byte/miss/writeback counters the
/// hierarchy ticks into `mbb-obs`.  Span attribution diffs two of these;
/// exposed here so callers that already depend on `mbb-memsim` need not
/// name the obs crate for a plain reading.
pub fn snapshot() -> mbb_obs::Counters {
    mbb_obs::snapshot()
}

#[cfg(test)]
mod tests {
    use crate::cache::CacheConfig;
    use crate::hierarchy::Hierarchy;
    use mbb_ir::trace::{Access, AccessSink};

    #[test]
    fn accesses_tick_the_thread_counter() {
        let before = super::so_far();
        let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 2)]);
        for k in 0..100u64 {
            h.access(Access::read(k * 8, 8));
        }
        assert_eq!(super::so_far() - before, 100);
    }

    #[test]
    fn counters_are_per_thread() {
        let before = super::so_far();
        std::thread::spawn(|| {
            let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 2)]);
            h.access(Access::read(0, 8));
            assert!(super::so_far() >= 1);
        })
        .join()
        .unwrap();
        assert_eq!(super::so_far(), before, "other thread's events must not leak here");
    }
}
