//! Machine models: the supply side of the balance equation.
//!
//! A [`MachineModel`] bundles what the paper takes from hardware
//! specifications — peak flop rate and per-channel bandwidths — with the
//! cache geometry the trace simulation needs.  Two 1999-vintage machines
//! from the paper are provided, plus a configurable synthetic machine for
//! the §2.3 scaling study ("future systems will have even worse balance").
//!
//! Numbers are taken from the paper and from published processor data:
//!
//! * **SGI Origin2000 / MIPS R10000 @195 MHz** — peak 390 Mflop/s (one
//!   fused multiply-add per cycle); 32 KB 2-way L1 with 32 B lines; 4 MB
//!   2-way unified L2 with 128 B lines; machine balance 4 / 4 / 0.8
//!   bytes per flop (Figure 1, last row), i.e. 1560 / 1560 / 312 MB/s.
//!   The paper quotes "300 MB/s" sustainable memory bandwidth.
//! * **HP/Convex Exemplar / PA-8000 @180 MHz** — peak 720 Mflop/s (two
//!   FMA units); a single *direct-mapped* 1 MB off-chip data cache with
//!   32 B lines (no L2) — the direct mapping is what the paper blames for
//!   the `3w6r` outlier in Figure 3; measured STREAM-class bandwidth in the
//!   417–551 MB/s range, modelled as a 640 MB/s channel with ~20 ns of
//!   exposed miss latency (PA-8000 had no hardware prefetch).

use crate::cache::CacheConfig;

/// A TLB: translation entries, page size, and the exposed cost of a miss.
///
/// The R10000 refills its 64-entry TLB in *software*, so a strided sweep
/// that touches a new page per access (NAS/SP's z-direction solve) pays a
/// large per-access penalty no prefetcher hides — the reason some SP
/// subroutines fall below full bandwidth utilisation in §2.3.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Number of fully-associative entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page: u64,
    /// Exposed latency per TLB miss, in seconds.
    pub miss_latency_s: f64,
}

/// A machine: peak compute rate, cache geometry, channel bandwidths and
/// exposed latencies.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: String,
    /// Peak floating-point rate in Mflop/s (10⁶ flop/s).
    pub peak_mflops: f64,
    /// Address-translation model, if any.
    pub tlb: Option<TlbConfig>,
    /// Cache levels, L1 first.
    pub caches: Vec<CacheConfig>,
    /// Peak bandwidth in MB/s (10⁶ byte/s) of each channel:
    /// `bandwidths[0]` is registers↔L1, `bandwidths[i]` is level *i−1* ↔
    /// level *i*, and the last entry is last-level↔memory.  Length is
    /// `caches.len() + 1`.
    pub bandwidth_mbs: Vec<f64>,
    /// Exposed (non-overlapped) latency per miss at each cache level, in
    /// seconds.  Zero models perfect latency tolerance (prefetch); the
    /// paper's thesis is that even then bandwidth limits performance.
    pub exposed_latency_s: Vec<f64>,
}

impl MachineModel {
    /// SGI Origin2000 node (MIPS R10000 @ 195 MHz), the paper's primary
    /// platform.
    pub fn origin2000() -> Self {
        MachineModel {
            name: "Origin2000 (R10K)".into(),
            peak_mflops: 390.0,
            // 64-entry software-refilled TLB, 16 KB pages, ~200 ns per
            // refill (the handler runs tens of instructions at 195 MHz).
            tlb: Some(TlbConfig { entries: 64, page: 16 * 1024, miss_latency_s: 200e-9 }),
            caches: vec![
                CacheConfig::write_back("L1", 32 * 1024, 32, 2).with_page_shuffle(16 * 1024),
                CacheConfig::write_back("L2", 4 * 1024 * 1024, 128, 2).with_page_shuffle(16 * 1024),
            ],
            bandwidth_mbs: vec![1560.0, 1560.0, 312.0],
            // R10K + MIPSpro software prefetching hide most miss latency;
            // ~20 ns per L2 miss remains exposed (TLB refill, DRAM page
            // misses), which is what keeps strided sweeps below the
            // roofline on the real machine.
            exposed_latency_s: vec![0.0, 20e-9],
        }
    }

    /// HP/Convex Exemplar node (PA-8000 @ 180 MHz): a single direct-mapped
    /// 1 MB data cache and no hardware prefetch.
    pub fn exemplar() -> Self {
        MachineModel {
            name: "Exemplar (PA-8000)".into(),
            peak_mflops: 720.0,
            // PA-8000: 96-entry TLB, hardware-walked — cheaper misses.
            tlb: Some(TlbConfig { entries: 96, page: 4 * 1024, miss_latency_s: 120e-9 }),
            // 64 KB pages (HP-UX variable page sizes assign large pages to
            // big arrays): 16 cache colours.  Six hot streams then almost
            // always have a same-colour pair that thrashes the
            // direct-mapped cache — the paper's suspected cause of the
            // `3w6r` outlier — while two or three streams rarely collide.
            caches: vec![
                CacheConfig::write_back("L1", 1024 * 1024, 32, 1).with_page_shuffle(64 * 1024)
            ],
            bandwidth_mbs: vec![2880.0, 640.0],
            exposed_latency_s: vec![20e-9],
        }
    }

    /// A synthetic machine with an R10K-class core and a configurable
    /// memory bandwidth, for the §2.3 scaling study ("a machine must have
    /// 1.02 GB/s to 3.15 GB/s of memory bandwidth").
    pub fn custom_memory_bandwidth(mem_mbs: f64) -> Self {
        let mut m = Self::origin2000();
        m.name = format!("R10K-class core, {mem_mbs:.0} MB/s memory");
        *m.bandwidth_mbs.last_mut().expect("memory channel") = mem_mbs;
        m
    }

    /// The same machine with every cache capacity divided by `factor`
    /// (geometry and bandwidths otherwise unchanged).
    ///
    /// Balance is a ratio of traffic to flops, so a workload sized relative
    /// to the scaled caches reproduces the out-of-cache regime of a
    /// `factor×` larger workload on the full machine at `factor³`⁻ish less
    /// simulation cost — the methodology used for the matrix-multiply,
    /// NAS/SP and Sweep3D rows of Figure 1 (see EXPERIMENTS.md).
    ///
    /// # Panics
    /// Panics if scaling would make a cache smaller than one line per way.
    pub fn scaled(&self, factor: u64) -> Self {
        let mut m = self.clone();
        m.name = format!("{} (caches ÷{factor})", self.name);
        if let Some(t) = &mut m.tlb {
            t.page = (t.page / factor).max(64).next_power_of_two();
            t.miss_latency_s /= factor as f64;
        }
        for c in &mut m.caches {
            c.size /= factor;
            assert!(
                c.size >= c.line * u64::from(c.assoc),
                "cache {} too small after scaling",
                c.name
            );
            // Page-granular index shuffling must scale with capacity, or
            // the scaled cache has too few colours and random collisions
            // dominate.
            if let Some(p) = c.page_shuffle {
                c.page_shuffle = Some((p / factor).max(c.line).next_power_of_two());
            }
        }
        m
    }

    /// As [`MachineModel::scaled`], with one factor per cache level —
    /// useful when inner levels should shrink less, keeping the *relative*
    /// sizes of per-iteration working structures (a matrix column, a face
    /// plane) to their cache level faithful.
    ///
    /// # Panics
    /// Panics on factor-count mismatch or a cache shrunk below one line
    /// per way.
    pub fn scaled_levels(&self, factors: &[u64]) -> Self {
        assert_eq!(factors.len(), self.caches.len(), "one factor per cache level");
        let mut m = self.clone();
        m.name = format!("{} (caches ÷{factors:?})", self.name);
        if let Some(t) = &mut m.tlb {
            let f = *factors.last().expect("at least one level");
            t.page = (t.page / f).max(64).next_power_of_two();
            t.miss_latency_s /= f as f64;
        }
        for (c, &factor) in m.caches.iter_mut().zip(factors) {
            c.size /= factor;
            assert!(
                c.size >= c.line * u64::from(c.assoc),
                "cache {} too small after scaling",
                c.name
            );
            if let Some(p) = c.page_shuffle {
                c.page_shuffle = Some((p / factor).max(c.line).next_power_of_two());
            }
        }
        m
    }

    /// Machine balance: bytes the machine can transfer per peak flop on
    /// each channel (Figure 1, last row).
    pub fn balance(&self) -> Vec<f64> {
        self.bandwidth_mbs.iter().map(|bw| bw / self.peak_mflops).collect()
    }

    /// The memory channel's bandwidth in MB/s.
    pub fn memory_bandwidth_mbs(&self) -> f64 {
        *self.bandwidth_mbs.last().expect("memory channel")
    }

    /// Builds a fresh (cold) hierarchy with this machine's cache geometry
    /// and TLB.
    pub fn hierarchy(&self) -> crate::hierarchy::Hierarchy {
        let h = crate::hierarchy::Hierarchy::new(self.caches.clone());
        match self.tlb {
            Some(t) => h.with_tlb(t.entries, t.page),
            None => h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_balance_matches_figure_1() {
        let m = MachineModel::origin2000();
        let b = m.balance();
        assert_eq!(b.len(), 3);
        assert!((b[0] - 4.0).abs() < 1e-9);
        assert!((b[1] - 4.0).abs() < 1e-9);
        assert!((b[2] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn exemplar_is_single_level_direct_mapped() {
        let m = MachineModel::exemplar();
        assert_eq!(m.caches.len(), 1);
        assert_eq!(m.caches[0].assoc, 1);
        assert_eq!(m.bandwidth_mbs.len(), 2);
    }

    #[test]
    fn custom_memory_bandwidth_only_changes_memory() {
        let m = MachineModel::custom_memory_bandwidth(1020.0);
        assert_eq!(m.memory_bandwidth_mbs(), 1020.0);
        assert_eq!(m.bandwidth_mbs[0], 1560.0);
        assert_eq!(m.peak_mflops, 390.0);
    }

    #[test]
    fn hierarchy_matches_geometry() {
        let m = MachineModel::origin2000();
        let h = m.hierarchy();
        assert_eq!(h.depth(), 2);
    }
}
