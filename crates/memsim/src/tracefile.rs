//! Text trace files (Dinero-style) for interoperability.
//!
//! Every access is one line, `r <hex-addr> <size>` or `w <hex-addr>
//! <size>` — close enough to the classic DineroIV `din` format that
//! external cache simulators can consume our traces, and simple enough
//! that traces from elsewhere can be replayed through this crate's
//! hierarchy.  [`TraceWriter`] is an [`AccessSink`], so it can tee off an
//! interpreter run; [`replay`] feeds a reader's lines into any sink.

use std::io::{self, BufRead, Write};

use mbb_ir::trace::{Access, AccessKind, AccessSink, Buffered};

/// An [`AccessSink`] that serialises accesses to a writer, one per line.
pub struct TraceWriter<W: Write> {
    out: W,
    /// Records the first I/O error; subsequent accesses are dropped.
    pub error: Option<io::Error>,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        TraceWriter { out, error: None, written: 0 }
    }

    /// Number of accesses written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Finishes, flushing and surfacing any deferred error.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> AccessSink for TraceWriter<W> {
    fn access(&mut self, a: Access) {
        if self.error.is_some() {
            return;
        }
        let kind = match a.kind {
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
        };
        if let Err(e) = writeln!(self.out, "{kind} {:x} {}", a.addr, a.size) {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }
}

/// Parses one trace line.
pub fn parse_line(line: &str) -> Result<Access, String> {
    let mut parts = line.split_whitespace();
    let kind = match parts.next() {
        Some("r") | Some("R") => AccessKind::Read,
        Some("w") | Some("W") => AccessKind::Write,
        other => return Err(format!("bad access kind {other:?}")),
    };
    let addr = parts
        .next()
        .ok_or("missing address")
        .and_then(|t| u64::from_str_radix(t, 16).map_err(|_| "bad hex address"))
        .map_err(|e| e.to_string())?;
    let size: u32 = match parts.next() {
        // DineroIV traces omit the size; default to 8 (one f64 cell).
        None => 8,
        Some(t) => t.parse().map_err(|_| format!("bad size `{t}`"))?,
    };
    if parts.next().is_some() {
        return Err("trailing tokens".into());
    }
    Ok(Access { addr, size, kind })
}

/// Replays a trace from a reader into a sink; blank lines and `#` comments
/// are skipped.  Returns the number of accesses replayed.
///
/// Parsed accesses reach the sink in batches (via
/// [`mbb_ir::trace::AccessSink::access_block`]) in their original order,
/// so the sink sees exactly the stream the file records.
pub fn replay<R: BufRead>(reader: R, sink: &mut dyn AccessSink) -> io::Result<u64> {
    let mut count = 0;
    let mut batched = Buffered::new(sink);
    for (k, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let a = parse_line(trimmed).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", k + 1))
        })?;
        batched.access(a);
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use mbb_ir::builder::*;
    use mbb_ir::interp;

    fn little_program() -> mbb_ir::Program {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_out("a", &[64]);
        let i = b.var("i");
        b.nest("k", &[(i, 0, 63)], vec![assign(a.at([v(i)]), ld(a.at([v(i)])) + lit(1.0))]);
        b.finish()
    }

    #[test]
    fn write_and_replay_round_trip() {
        let p = little_program();
        // Record the trace.
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            interp::run_traced(&p, &mut w).unwrap();
            assert_eq!(w.written(), 128); // 64 loads + 64 stores
        }
        // Replaying it through a hierarchy matches the direct simulation.
        let m = MachineModel::origin2000();
        let mut direct = m.hierarchy();
        interp::run_traced(&p, &mut direct).unwrap();
        let mut replayed = m.hierarchy();
        let n = replay(io::BufReader::new(&buf[..]), &mut replayed).unwrap();
        assert_eq!(n, 128);
        assert_eq!(direct.report(), replayed.report());
    }

    #[test]
    fn round_trip_through_batched_path_matches_scalar_feed() {
        let p = little_program();
        // Record the trace (the writer sees batches from the interpreter).
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            interp::run_traced(&p, &mut w).unwrap();
        }
        let m = MachineModel::origin2000();
        // Replay (batched internally) …
        let mut batched = m.hierarchy();
        let n = replay(io::BufReader::new(&buf[..]), &mut batched).unwrap();
        // … versus feeding the same parsed events one at a time.
        let mut scalar = m.hierarchy();
        for line in std::str::from_utf8(&buf).unwrap().lines() {
            scalar.access(parse_line(line).unwrap());
        }
        assert_eq!(n, 128);
        assert_eq!(batched.report(), scalar.report());
    }

    #[test]
    fn parse_line_variants() {
        assert_eq!(parse_line("r ff 8").unwrap(), Access::read(0xff, 8));
        assert_eq!(parse_line("W 10 4").unwrap(), Access::write(0x10, 4));
        // Size defaults to 8.
        assert_eq!(parse_line("r 20").unwrap(), Access::read(0x20, 8));
        assert!(parse_line("x 10 8").is_err());
        assert!(parse_line("r zz 8").is_err());
        assert!(parse_line("r 10 8 extra").is_err());
    }

    #[test]
    fn replay_skips_comments_and_blanks() {
        let text = "# header\n\nr 0 8\n  \nw 8 8\n";
        let mut c = mbb_ir::trace::CountingSink::new();
        let n = replay(io::BufReader::new(text.as_bytes()), &mut c).unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn replay_reports_bad_lines_with_numbers() {
        let text = "r 0 8\nbogus\n";
        let mut c = mbb_ir::trace::CountingSink::new();
        let e = replay(io::BufReader::new(text.as_bytes()), &mut c).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }
}
