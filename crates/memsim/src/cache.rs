//! A single set-associative cache level with LRU replacement.
//!
//! The simulator is *trace-exact*: every hit, miss and writeback is the one
//! a real cache with the same geometry would take on the same address
//! stream.  Event counts — not timing — are produced here; the timing model
//! lives in [`crate::timing`].

/// Write-handling policy of a cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Write-back, write-allocate: stores dirty the line; dirty evictions
    /// cost a writeback to the next level.  Both the R10K's caches and the
    /// PA-8000's data cache are write-back, which is why the paper's store
    /// elimination pays off: a removed store removes a whole-line writeback.
    WriteBack,
    /// Write-through, no-allocate: every store is forwarded to the next
    /// level immediately; store misses do not allocate.
    WriteThrough,
}

/// Geometry and policy of one cache level.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Diagnostic name ("L1", "L2", …).
    pub name: String,
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Write policy.
    pub policy: WritePolicy,
    /// Next-line prefetch depth: on a demand miss, the hierarchy also
    /// fetches this many sequential lines (0 = no prefetching).  Models
    /// the latency-tolerance techniques of §1 — which, as the paper says,
    /// trade *bandwidth* for latency: useless prefetches consume the
    /// memory channel.
    pub prefetch_next: u32,
    /// Physical-indexing emulation: when set, the set index is computed
    /// from a deterministic per-page shuffle of the address at this page
    /// granularity.  This models an OS that places pages randomly in
    /// physical memory (IRIX on the Origin2000), which breaks the
    /// pathological set conflicts that contiguous same-size arrays would
    /// otherwise produce.  `None` models strict page colouring (HP-UX on
    /// the Exemplar), where virtual-address conflicts hit the cache
    /// directly — the source of the paper's `3w6r` outlier in Figure 3.
    pub page_shuffle: Option<u64>,
}

impl CacheConfig {
    /// A write-back, write-allocate cache with virtual (unshuffled)
    /// indexing.
    pub fn write_back(name: &str, size: u64, line: u64, assoc: u32) -> Self {
        CacheConfig {
            name: name.into(),
            size,
            line,
            assoc,
            policy: WritePolicy::WriteBack,
            prefetch_next: 0,
            page_shuffle: None,
        }
    }

    /// The same cache with next-line prefetching of the given depth.
    pub fn with_prefetch(mut self, depth: u32) -> Self {
        self.prefetch_next = depth;
        self
    }

    /// The same cache with per-page index shuffling at `page` bytes.
    pub fn with_page_shuffle(mut self, page: u64) -> Self {
        assert!(page.is_power_of_two() && page >= self.line);
        self.page_shuffle = Some(page);
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.size / self.line / u64::from(self.assoc)).max(1)
    }
}

/// Event counters for one cache level.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct LevelStats {
    /// Load hits.
    pub read_hits: u64,
    /// Load misses.
    pub read_misses: u64,
    /// Store hits.
    pub write_hits: u64,
    /// Store misses.
    pub write_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Lines fetched from the next level.
    pub fetches: u64,
    /// Lines installed by the prefetcher (also counted in `fetches`).
    pub prefetches: u64,
}

impl LevelStats {
    /// All misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    valid: bool,
}

/// What a single-line access did, as seen by the next level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineOutcome {
    /// The line was present.
    Hit,
    /// The line was fetched; optionally a dirty victim was evicted.
    Miss {
        /// Byte address of the written-back victim line, if any.
        writeback_of: Option<u64>,
        /// Whether a fetch from the next level was needed (full-line writes
        /// in a write-back cache allocate without fetching).
        fetched: bool,
    },
    /// Write-through store forwarded below (never allocates on miss).
    WroteThrough {
        /// Whether the store hit in this level.
        hit: bool,
    },
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    /// Per-set LRU order: `lru[s][0]` is the MRU way index.
    lru: Vec<Vec<u8>>,
    /// Event counters.
    pub stats: LevelStats,
    // Geometry precomputed at construction so the per-access path is all
    // shifts and masks (64-bit divides by runtime values dominate the
    // profile otherwise).
    /// `log2(line)`: `addr >> line_shift` is the line address.
    line_shift: u32,
    /// `sets − 1` when the set count is a power of two (the mask fast
    /// case); `None` falls back to `% sets` for odd geometries.
    set_mask: Option<u64>,
    /// Set count, for the modulo fallback.
    set_count: u64,
    /// `log2(lines per shuffle page)` when page shuffling is on (page and
    /// line are both powers of two, so this is exact).
    shuffle_shift: Option<u32>,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.assoc >= 1, "associativity must be at least 1");
        let sets = cfg.sets() as usize;
        let ways = cfg.assoc as usize;
        let shuffle_shift = cfg.page_shuffle.map(|page| {
            assert!(
                page.is_power_of_two() && page >= cfg.line,
                "shuffle page must be a power of two covering at least one line"
            );
            (page / cfg.line).trailing_zeros()
        });
        Cache {
            sets: vec![vec![Line { tag: 0, dirty: false, valid: false }; ways]; sets],
            lru: vec![(0..ways as u8).collect(); sets],
            stats: LevelStats::default(),
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (cfg.sets().is_power_of_two()).then(|| cfg.sets() - 1),
            set_count: cfg.sets(),
            shuffle_shift,
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Resets contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for l in set {
                l.valid = false;
                l.dirty = false;
            }
        }
        for order in &mut self.lru {
            for (k, w) in order.iter_mut().enumerate() {
                *w = k as u8;
            }
        }
        self.stats = LevelStats::default();
    }

    /// The shuffled frame base (in line-address units, page-aligned) of a
    /// shuffle page.  Deterministic SplitMix64 of the page number stands
    /// in for the OS's random physical page placement.  A pure function of
    /// `page_num`, so callers walking a run may cache it per page and skip
    /// the hash for every line inside ([`Cache::probe_indexed`]).
    #[inline]
    pub(crate) fn frame_of_page(&self, page_num: u64) -> u64 {
        let shift = self.shuffle_shift.expect("frame_of_page needs a shuffled index");
        let mut z = page_num.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) << shift
    }

    /// Shuffle granularity as `log2(lines per page)` (`None` = identity
    /// index mapping).
    #[inline]
    pub(crate) fn shuffle_lines_shift(&self) -> Option<u32> {
        self.shuffle_shift
    }

    /// Set index for a (possibly shuffled) index address.
    #[inline]
    fn index_of(&self, index_addr: u64) -> usize {
        let set = match self.set_mask {
            Some(mask) => index_addr & mask,
            None => index_addr % self.set_count,
        };
        set as usize
    }

    #[inline]
    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let index_addr = match self.shuffle_shift {
            None => line_addr,
            Some(shift) => {
                // Lines per page is a power of two, so the original divide
                // / modulo / multiply are exactly these shifts and masks.
                let offset = line_addr & ((1u64 << shift) - 1);
                self.frame_of_page(line_addr >> shift).wrapping_add(offset)
            }
        };
        // The tag is the full (virtual) line address, so identity is exact
        // regardless of the index mapping.
        (self.index_of(index_addr), line_addr)
    }

    #[inline]
    fn touch_mru(lru: &mut [u8], way: u8) {
        // MRU already in front is the steady state of every hot loop; the
        // rotate over `[..=0]` it would perform is a no-op, so skip it.
        if lru[0] == way {
            return;
        }
        let pos = lru.iter().position(|&w| w == way).expect("way in LRU order");
        lru[..=pos].rotate_right(1);
    }

    /// True when the `size`-byte access at `addr` stays inside one line
    /// (the fast-path precondition — straddlers take the split loop).
    #[inline]
    pub(crate) fn covers_one_line(&self, addr: u64, size: u64) -> bool {
        // `checked_add`: an access wrapping past the top of the address
        // space never fits one line — it takes the splitting slow path,
        // which truncates at the boundary.
        size != 0
            && addr
                .checked_add(size - 1)
                .is_some_and(|last| (addr >> self.line_shift) == (last >> self.line_shift))
    }

    /// Accesses one whole line containing `addr`.
    ///
    /// `is_write` marks stores; `full_line_write` marks stores known to
    /// overwrite the entire line (arriving writebacks from an upper level),
    /// which allocate without fetching.
    #[inline]
    pub fn access_line(&mut self, addr: u64, is_write: bool, full_line_write: bool) -> LineOutcome {
        let line_addr = addr >> self.line_shift;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let set = &mut self.sets[set_idx];
        let order = &mut self.lru[set_idx];

        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            if is_write {
                match self.cfg.policy {
                    WritePolicy::WriteBack => {
                        set[way].dirty = true;
                        self.stats.write_hits += 1;
                    }
                    WritePolicy::WriteThrough => {
                        self.stats.write_hits += 1;
                        Self::touch_mru(order, way as u8);
                        return LineOutcome::WroteThrough { hit: true };
                    }
                }
            } else {
                self.stats.read_hits += 1;
            }
            Self::touch_mru(order, way as u8);
            return LineOutcome::Hit;
        }

        // Miss.
        if is_write {
            self.stats.write_misses += 1;
            if self.cfg.policy == WritePolicy::WriteThrough {
                return LineOutcome::WroteThrough { hit: false };
            }
        } else {
            self.stats.read_misses += 1;
        }

        // Evict the LRU way.
        let victim_way = *order.last().expect("non-empty set") as usize;
        let victim = set[victim_way];
        let writeback_of = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        let fetched = !(is_write && full_line_write);
        if fetched {
            self.stats.fetches += 1;
        }
        set[victim_way] = Line { tag, dirty: is_write, valid: true };
        Self::touch_mru(order, victim_way as u8);
        LineOutcome::Miss { writeback_of, fetched }
    }

    /// Pure residency probe for the run fast path: returns the `(set, way)`
    /// of `line_addr`'s line when resident, with **no** state or counter
    /// change either way.  A resident line's way is stable for as long as
    /// no install happens in its set ([`Cache::touch_mru`] permutes the LRU
    /// order vector, not the line array), so the caller may cache the
    /// coordinates across pure-hit windows and feed them back to
    /// [`Cache::apply_touch`].
    ///
    /// `index_addr` is precomputed by the caller: it must equal
    /// `frame_of_page(line_addr >> shift) + (line_addr & mask)` under a
    /// shuffled mapping, or `line_addr` under the identity one.  Lets the
    /// run walk pay the page hash once per shuffle page instead of once
    /// per line.
    #[inline]
    pub(crate) fn probe_indexed(&self, index_addr: u64, line_addr: u64) -> Option<(u32, u8)> {
        let set_idx = self.index_of(index_addr);
        self.sets[set_idx]
            .iter()
            .position(|l| l.valid && l.tag == line_addr)
            .map(|way| (set_idx as u32, way as u8))
    }

    /// Applies the state transition of a hit — dirty bit on writes, MRU
    /// touch — to coordinates previously returned by [`Cache::probe`],
    /// without updating counters (the run walk bulk-adds those per window).
    ///
    /// Callers must not use this for writes to a write-through level: a
    /// write-through hit also forwards bytes below, which a silent touch
    /// cannot express.  The run walk excludes that configuration up front.
    #[inline]
    pub(crate) fn apply_touch(&mut self, set_idx: u32, way: u8, is_write: bool) {
        let s = set_idx as usize;
        if is_write {
            debug_assert_eq!(self.cfg.policy, WritePolicy::WriteBack);
            self.sets[s][way as usize].dirty = true;
        }
        Self::touch_mru(&mut self.lru[s], way);
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.line
    }

    /// Installs the line containing `addr` if absent (a prefetch): returns
    /// `None` when already present, otherwise the optional dirty victim's
    /// address.  Counted as a fetch + prefetch, never as a demand miss.
    pub fn prefetch_line(&mut self, addr: u64) -> Option<Option<u64>> {
        let line_addr = addr >> self.line_shift;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            let order = &mut self.lru[set_idx];
            Self::touch_mru(order, way as u8);
            return None;
        }
        let order = &mut self.lru[set_idx];
        let victim_way = *order.last().expect("non-empty set") as usize;
        let victim = set[victim_way];
        let writeback_of = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        self.stats.fetches += 1;
        self.stats.prefetches += 1;
        set[victim_way] = Line { tag, dirty: false, valid: true };
        Self::touch_mru(order, victim_way as u8);
        Some(writeback_of)
    }

    /// Marks every dirty line clean and returns their byte addresses —
    /// the writebacks a full flush would issue.  Counted in
    /// [`LevelStats::writebacks`].
    ///
    /// The stored tag is already the full line address (identity is exact
    /// regardless of the index mapping — see `Cache::set_and_tag`), so a
    /// drained victim's address is `tag << line_shift`, exactly as for
    /// [`Cache::access_line`] eviction writebacks.
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in self.sets.iter_mut() {
            for l in set.iter_mut() {
                if l.valid && l.dirty {
                    l.dirty = false;
                    self.stats.writebacks += 1;
                    out.push(l.tag << self.line_shift);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 32 B, 2-way: 2 sets.
        Cache::new(CacheConfig::write_back("t", 128, 32, 2))
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
        assert_eq!(c.line_size(), 32);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }));
        assert_eq!(c.access_line(8, false, false), LineOutcome::Hit);
        assert_eq!(c.stats.read_misses, 1);
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.fetches, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with even line index (2 sets): lines 0, 2, 4 map
        // to set 0.  Fill both ways, then touch line 0 so line 2 is LRU.
        c.access_line(0, false, false); // line 0
        c.access_line(64, false, false); // line 2
        c.access_line(0, false, false); // line 0 → MRU
                                        // Line 4 evicts line 2 (LRU), not line 0.
        c.access_line(128, false, false);
        assert_eq!(c.access_line(0, false, false), LineOutcome::Hit);
        assert!(matches!(c.access_line(64, false, false), LineOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_writes_back_victim_address() {
        let mut c = tiny();
        c.access_line(0, true, false); // line 0, dirty
        c.access_line(64, false, false); // line 2, same set
                                         // Line 4 evicts line 0 (LRU, dirty).
        match c.access_line(128, false, false) {
            LineOutcome::Miss { writeback_of: Some(a), fetched: true } => assert_eq!(a, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access_line(0, false, false);
        c.access_line(64, false, false);
        match c.access_line(128, false, false) {
            LineOutcome::Miss { writeback_of: None, .. } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn full_line_write_allocates_without_fetch() {
        let mut c = tiny();
        match c.access_line(0, true, true) {
            LineOutcome::Miss { fetched: false, .. } => {}
            other => panic!("expected no-fetch allocate, got {other:?}"),
        }
        assert_eq!(c.stats.fetches, 0);
        // And the line is now present and dirty.
        assert_eq!(c.access_line(0, false, false), LineOutcome::Hit);
    }

    #[test]
    fn write_through_never_allocates() {
        let mut c = Cache::new(CacheConfig {
            name: "wt".into(),
            size: 128,
            line: 32,
            assoc: 2,
            policy: WritePolicy::WriteThrough,
            prefetch_next: 0,
            page_shuffle: None,
        });
        assert_eq!(c.access_line(0, true, false), LineOutcome::WroteThrough { hit: false });
        // Still not present.
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }));
        // Write hit after the read allocated it.
        assert_eq!(c.access_line(0, true, false), LineOutcome::WroteThrough { hit: true });
        assert_eq!(c.stats.write_hits, 1);
        assert_eq!(c.stats.write_misses, 1);
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // Direct-mapped, 4 sets of 32 B.  Lines 0 and 4 conflict.
        let mut c = Cache::new(CacheConfig::write_back("dm", 128, 32, 1));
        c.access_line(0, false, false);
        c.access_line(128, false, false); // line 4 → evicts line 0
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }));
        assert_eq!(c.stats.read_misses, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access_line(0, true, false);
        c.reset();
        assert_eq!(c.stats, LevelStats::default());
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }));
    }

    #[test]
    fn non_power_of_two_set_count_uses_modulo_fallback() {
        // 96 B / 32 B / direct-mapped = 3 sets: lines 0 and 3 share set 0.
        let mut c = Cache::new(CacheConfig::write_back("odd", 96, 32, 1));
        assert_eq!(c.config().sets(), 3);
        c.access_line(0, false, false);
        assert!(matches!(c.access_line(3 * 32, false, false), LineOutcome::Miss { .. }));
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }), "evicted");
        // Line 1 maps to set 1: cold miss, then a hit — and it leaves the
        // set-0 resident (line 0) undisturbed.
        assert!(matches!(c.access_line(32, false, false), LineOutcome::Miss { .. }));
        assert_eq!(c.access_line(32, false, false), LineOutcome::Hit);
        assert_eq!(c.access_line(0, false, false), LineOutcome::Hit, "set 0 undisturbed");
    }

    #[test]
    fn covers_one_line_boundaries() {
        let c = tiny();
        assert!(c.covers_one_line(0, 8));
        assert!(c.covers_one_line(24, 8), "exactly reaches the line end");
        assert!(!c.covers_one_line(28, 8), "straddles into the next line");
        assert!(c.covers_one_line(32, 32), "whole aligned line");
        assert!(!c.covers_one_line(0, 0), "zero-size accesses take the slow path");
    }

    #[test]
    fn shuffled_indexing_matches_the_divide_formula() {
        // The shift/mask rewrite of the SplitMix64 page shuffle must place
        // every line exactly where the original divide/modulo/multiply
        // formula did.
        fn reference_set(line_addr: u64, page: u64, line: u64, sets: u64) -> u64 {
            let lines_per_page = page / line;
            let page_num = line_addr / lines_per_page;
            let offset = line_addr % lines_per_page;
            let mut z = page_num.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)).wrapping_mul(lines_per_page).wrapping_add(offset) % sets
        }
        for (size, line, assoc, page) in
            [(32 * 1024, 32, 2, 16 * 1024), (1024 * 1024, 32, 1, 64 * 1024), (4096, 128, 2, 4096)]
        {
            let cfg = CacheConfig::write_back("s", size, line, assoc).with_page_shuffle(page);
            let sets = cfg.sets();
            let c = Cache::new(cfg);
            for k in 0..10_000u64 {
                let line_addr = k.wrapping_mul(0x9E37_79B9).wrapping_add(k >> 3);
                let (set_idx, tag) = c.set_and_tag(line_addr);
                assert_eq!(set_idx as u64, reference_set(line_addr, page, line, sets));
                assert_eq!(tag, line_addr, "tag stays the full line address");
            }
        }
    }

    /// Dirties a set of lines, drains, and checks the drained addresses are
    /// exactly the dirtied lines' addresses (the regression the old
    /// `(tag * sets + set_idx) * line` reconstruction failed for any
    /// geometry where the identity mapping and the index mapping differ).
    fn drain_matches_dirtied(cfg: CacheConfig, line_addrs: &[u64]) {
        let line = cfg.line;
        let mut c = Cache::new(cfg);
        let mut expect: Vec<u64> = Vec::new();
        for &la in line_addrs {
            match c.access_line(la * line, true, true) {
                LineOutcome::Miss { writeback_of, .. } => {
                    // A dirty victim evicted on the way in is no longer
                    // resident, so it must not reappear in the drain.
                    if let Some(v) = writeback_of {
                        expect.retain(|&a| a != v);
                    }
                }
                LineOutcome::Hit => {}
                other => panic!("unexpected {other:?}"),
            }
            if !expect.contains(&(la * line)) {
                expect.push(la * line);
            }
        }
        let mut drained = c.drain_dirty();
        drained.sort_unstable();
        expect.sort_unstable();
        assert_eq!(drained, expect);
        // Everything is clean now: a second drain is empty.
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn drain_dirty_returns_the_dirtied_addresses_page_shuffled() {
        // Shuffled indexing scatters lines across sets, but tags stay the
        // full line address — drained addresses must match what was written.
        let cfg = CacheConfig::write_back("sh", 4096, 32, 2).with_page_shuffle(256);
        let addrs: Vec<u64> = (0..40u64).map(|k| k.wrapping_mul(0x9E37_79B9) % 512).collect();
        drain_matches_dirtied(cfg, &addrs);
    }

    #[test]
    fn drain_dirty_returns_the_dirtied_addresses_non_pow2_sets() {
        // 3 sets (96 B / 32 B, direct-mapped): the modulo index fallback.
        drain_matches_dirtied(CacheConfig::write_back("odd", 96, 32, 1), &[0, 1, 2, 3, 7, 11]);
    }

    #[test]
    fn drain_dirty_matches_eviction_writeback_addresses() {
        // The same dirty line, written back two ways — by eviction and by
        // drain — must report the same victim address.
        let cfg = CacheConfig::write_back("t", 128, 32, 2).with_page_shuffle(64);
        let mut by_evict = Cache::new(cfg.clone());
        by_evict.access_line(5 * 32, true, true);
        // Evict line 5 by filling its set with conflicting lines.
        let mut evicted = None;
        for k in 0..64u64 {
            if k == 5 {
                continue;
            }
            if let LineOutcome::Miss { writeback_of: Some(a), .. } =
                by_evict.access_line(k * 32, false, false)
            {
                evicted = Some(a);
                break;
            }
        }
        let mut by_drain = Cache::new(cfg);
        by_drain.access_line(5 * 32, true, true);
        assert_eq!(by_drain.drain_dirty(), vec![5 * 32]);
        assert_eq!(evicted.expect("line 5 evicted"), 5 * 32);
    }

    #[test]
    fn probe_and_apply_touch_mirror_hit_state_without_counters() {
        let mut c = tiny();
        // `tiny()` has no shuffled index, so the index address is the line
        // address itself (here: line 0 for both byte 0 and byte 8).
        assert_eq!(c.probe_indexed(0, 0), None, "cold probe misses and mutates nothing");
        assert!(matches!(c.access_line(0, false, false), LineOutcome::Miss { .. }));
        let stats_before = c.stats;
        let (set, way) = c.probe_indexed(0, 0).expect("resident after the fill");
        // An applied write touch dirties the line and refreshes MRU, silently.
        c.apply_touch(set, way, true);
        assert_eq!(c.stats, stats_before, "probe + touch leave counters untouched");
        // The dirty bit really stuck: evicting line 0 writes it back.
        c.access_line(64, false, false);
        match c.access_line(128, false, false) {
            LineOutcome::Miss { writeback_of: Some(a), .. } => assert_eq!(a, 0),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn stats_ratios() {
        let mut s = LevelStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.read_hits = 3;
        s.read_misses = 1;
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.miss_ratio(), 0.25);
    }
}
