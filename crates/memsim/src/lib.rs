//! # mbb-memsim — an execution-driven memory-hierarchy simulator
//!
//! The paper measured program balance with MIPS R10000 hardware counters
//! and machine balance with STREAM and CacheBench on real machines.  This
//! crate is the substitute (see DESIGN.md): it consumes exact memory-access
//! traces (from the `mbb-ir` interpreter or from traced native kernels) and
//! produces the same event counts a hardware counter would —
//!
//! * per-level cache hits, misses and writebacks ([`cache`], [`hierarchy`]),
//! * bytes moved on every channel of the hierarchy (registers↔L1, L1↔L2,
//!   L2↔memory),
//!
//! plus the machine side of the model:
//!
//! * published machine configurations for the paper's two platforms — SGI
//!   Origin2000 (R10K) and HP/Convex Exemplar (PA-8000) — and a synthetic
//!   "future machine" for scaling studies ([`machine`]),
//! * a roofline-style bottleneck timing model: execution time is set by the
//!   most-saturated channel, plus an exposed-latency term ([`timing`]),
//! * STREAM and CacheBench ports that run *against the simulator* to
//!   "measure" machine bandwidth exactly the way the paper did
//!   ([`stream`], [`cachebench`]),
//! * an [`arena`] with traced buffers so native (non-IR) kernels such as
//!   the FFT can emit the same traces.

pub mod arena;
pub mod cache;
pub mod cachebench;
pub mod events;
pub mod hierarchy;
pub mod machine;
pub mod stream;
pub mod timing;
pub mod tracefile;

pub use arena::{Arena, TracedArray};
pub use cache::{Cache, CacheConfig, LevelStats, WritePolicy};
pub use hierarchy::{Hierarchy, TrafficReport};
pub use machine::MachineModel;
pub use timing::{effective_bandwidth_mbs, predict, Prediction};

// The whole simulation stack is shipped across threads by the parallel
// experiment runner (`mbb-bench`): one worker owns one simulation end to
// end.  Keep it `Send` — no `Rc`, no thread-affine interior mutability.
// (`Sync` is *not* required: workers never share a live simulation.)
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Hierarchy>();
    assert_send::<Cache>();
    assert_send::<MachineModel>();
    assert_send::<TrafficReport>();
    assert_send::<Arena>();
};
