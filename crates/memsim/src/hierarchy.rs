//! A multi-level memory hierarchy fed by an access trace.
//!
//! The hierarchy is a chain of [`Cache`] levels in front of an infinite
//! memory.  It implements [`AccessSink`], so an `mbb-ir` interpreter (or a
//! traced native kernel) can stream accesses straight into it.  What comes
//! out is the paper's raw material: bytes moved on every channel —
//! registers↔L1, L1↔L2, …, last-level↔memory — from which program balance
//! is a division away.

use mbb_ir::trace::{Access, AccessKind, AccessSink};

use crate::cache::{Cache, CacheConfig, LevelStats, LineOutcome};

/// Bytes and events observed on every channel of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    /// Bytes entering each level: index 0 is register↔L1 traffic, index `i`
    /// is the traffic between level `i-1` and level `i`, and the last entry
    /// is the traffic between the last cache level and memory.
    pub channel_bytes: Vec<u64>,
    /// Counters per cache level.
    pub level_stats: Vec<LevelStats>,
    /// Bytes read from memory (fetches reaching memory).
    pub mem_read_bytes: u64,
    /// Bytes written to memory (writebacks and write-throughs reaching
    /// memory).
    pub mem_write_bytes: u64,
    /// Demand accesses that missed the TLB (0 when no TLB is modelled).
    pub tlb_misses: u64,
}

impl TrafficReport {
    /// Traffic on the memory channel (reads + writes), the denominator
    /// resource of the paper's bottleneck argument.
    pub fn mem_bytes(&self) -> u64 {
        *self.channel_bytes.last().unwrap_or(&0)
    }

    /// Traffic on the register channel.
    pub fn reg_bytes(&self) -> u64 {
        *self.channel_bytes.first().unwrap_or(&0)
    }

    /// Misses at each cache level (for the exposed-latency timing term).
    pub fn misses(&self) -> Vec<u64> {
        self.level_stats.iter().map(|s| s.misses()).collect()
    }
}

/// A fully-associative LRU TLB over pages (small entry counts: a linear
/// scan with move-to-front is faster than hashing here).
#[derive(Clone, Debug)]
struct TlbSim {
    /// `log2(page size)` — pages are asserted to be powers of two.
    page_shift: u32,
    /// Entries in MRU-first order.
    entries: Vec<u64>,
    capacity: usize,
    misses: u64,
}

impl TlbSim {
    #[inline]
    fn access(&mut self, addr: u64) {
        let page = addr >> self.page_shift;
        // MRU-first short-circuit: stride-1 sweeps hit the front entry for
        // thousands of consecutive accesses, and moving position 0 to the
        // front is a no-op anyway.
        if self.entries.first() == Some(&page) {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries[..=pos].rotate_right(1);
            return;
        }
        self.misses += 1;
        mbb_obs::tick_tlb_miss();
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, page);
    }
}

/// A chain of caches in front of memory, consuming an access trace.
///
/// ```
/// use mbb_ir::trace::{Access, AccessSink};
/// use mbb_memsim::cache::CacheConfig;
/// use mbb_memsim::hierarchy::Hierarchy;
///
/// let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 1024, 32, 2)]);
/// for k in 0..64u64 {
///     h.access(Access::read(k * 8, 8)); // one 512-byte stream
/// }
/// let report = h.report();
/// assert_eq!(report.reg_bytes(), 512);
/// assert_eq!(report.mem_bytes(), 512); // 16 cold line fetches × 32 B
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    entry_bytes: Vec<u64>,
    mem_read_bytes: u64,
    mem_write_bytes: u64,
    tlb: Option<TlbSim>,
}

impl Hierarchy {
    /// Builds a hierarchy from level configurations, outermost (L1) first.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        let n = configs.len();
        Hierarchy {
            levels: configs.into_iter().map(Cache::new).collect(),
            entry_bytes: vec![0; n + 1],
            mem_read_bytes: 0,
            mem_write_bytes: 0,
            tlb: None,
        }
    }

    /// Adds a fully-associative LRU TLB with `entries` translations over
    /// `page`-byte pages.  Demand accesses look it up; misses are counted
    /// in [`TrafficReport::tlb_misses`] and priced by the timing model.
    pub fn with_tlb(mut self, entries: usize, page: u64) -> Self {
        assert!(entries > 0 && page.is_power_of_two());
        self.tlb = Some(TlbSim {
            page_shift: page.trailing_zeros(),
            entries: Vec::with_capacity(entries),
            capacity: entries,
            misses: 0,
        });
        self
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Clears cache contents and counters.
    pub fn reset(&mut self) {
        for c in &mut self.levels {
            c.reset();
        }
        self.entry_bytes.iter_mut().for_each(|b| *b = 0);
        self.mem_read_bytes = 0;
        self.mem_write_bytes = 0;
        if let Some(t) = &mut self.tlb {
            t.entries.clear();
            t.misses = 0;
        }
    }

    /// Writes every dirty line back to memory (through intervening levels),
    /// as quiescing the machine eventually would.  Programs that end with
    /// freshly written data (STREAM, the §2.1 write loop) owe these bytes
    /// to the memory channel; without a flush they would be invisible.
    pub fn flush(&mut self) {
        for level in 0..self.levels.len() {
            let line = self.levels[level].line_size();
            for victim in self.levels[level].drain_dirty() {
                mbb_obs::tick_writeback(level);
                self.do_access(level + 1, victim, line, true, true);
            }
        }
    }

    /// Extracts the traffic report of everything streamed so far.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            channel_bytes: self.entry_bytes.clone(),
            level_stats: self.levels.iter().map(|c| c.stats).collect(),
            mem_read_bytes: self.mem_read_bytes,
            mem_write_bytes: self.mem_write_bytes,
            tlb_misses: self.tlb.as_ref().map(|t| t.misses).unwrap_or(0),
        }
    }

    /// Services one demand access: TLB, then the level walk — with a fast
    /// path for the overwhelmingly common case of a single-line access,
    /// which skips the line-splitting walk and goes straight to one L1 set
    /// lookup.  A hit touches that one set and returns; a miss has already
    /// paid its (only) lookup and proceeds to the consequences.
    #[inline]
    fn access_one(&mut self, a: Access) {
        if let Some(t) = &mut self.tlb {
            t.access(a.addr);
        }
        let size = u64::from(a.size);
        let is_write = a.kind == AccessKind::Write;
        if !self.levels.is_empty() && self.levels[0].covers_one_line(a.addr, size) {
            self.entry_bytes[0] += size;
            mbb_obs::tick_channel_bytes(0, size);
            let line = self.levels[0].line_size();
            let line_base = a.addr & !(line - 1);
            let covers_line = a.addr == line_base && size == line;
            let outcome = self.levels[0].access_line(a.addr, is_write, covers_line);
            self.after_line(0, a.addr, size, line, line_base, outcome);
            return;
        }
        self.do_access(0, a.addr, size, is_write, false);
    }

    /// Acts on one [`LineOutcome`]: nothing on a hit; writeback, fetch and
    /// prefetch fills on a miss; store forwarding on a write-through.
    /// `a`/`seg_size` are the segment serviced, `line_base` its line.
    #[inline]
    fn after_line(
        &mut self,
        level: usize,
        a: u64,
        seg_size: u64,
        line: u64,
        line_base: u64,
        outcome: LineOutcome,
    ) {
        match outcome {
            LineOutcome::Hit => {}
            LineOutcome::Miss { writeback_of, fetched } => {
                mbb_obs::tick_miss(level);
                if let Some(victim) = writeback_of {
                    mbb_obs::tick_writeback(level);
                    self.do_access(level + 1, victim, line, true, true);
                }
                if fetched {
                    self.do_access(level + 1, line_base, line, false, false);
                }
                // Next-line prefetch: install sequential lines; their
                // fills consume downstream bandwidth like any fetch.
                let depth = self.levels[level].config().prefetch_next;
                for k in 1..=u64::from(depth) {
                    let target = line_base + k * line;
                    if let Some(victim) = self.levels[level].prefetch_line(target) {
                        if let Some(v) = victim {
                            mbb_obs::tick_writeback(level);
                            self.do_access(level + 1, v, line, true, true);
                        }
                        self.do_access(level + 1, target, line, false, false);
                    }
                }
            }
            LineOutcome::WroteThrough { hit } => {
                if !hit {
                    mbb_obs::tick_miss(level);
                }
                // Forward the store itself; no allocation here.
                self.do_access(level + 1, a, seg_size, true, false);
            }
        }
    }

    fn do_access(&mut self, level: usize, addr: u64, size: u64, is_write: bool, full_line: bool) {
        self.entry_bytes[level] += size;
        mbb_obs::tick_channel_bytes(level, size);
        if level == self.levels.len() {
            // Memory: infinite, just account.
            if is_write {
                self.mem_write_bytes += size;
                mbb_obs::tick_mem_write(size);
            } else {
                self.mem_read_bytes += size;
                mbb_obs::tick_mem_read(size);
            }
            return;
        }
        let line = self.levels[level].line_size();
        // Split the access at line boundaries (rare for aligned f64 cells,
        // but kept general).  Line sizes are powers of two, so rounding
        // down is a mask.
        let mut a = addr;
        let end = addr + size;
        while a < end {
            let line_base = a & !(line - 1);
            let seg_end = (line_base + line).min(end);
            let seg_size = seg_end - a;
            let covers_line = full_line || (a == line_base && seg_size == line);
            let outcome = self.levels[level].access_line(a, is_write, covers_line);
            self.after_line(level, a, seg_size, line, line_base, outcome);
            a = seg_end;
        }
    }
}

impl AccessSink for Hierarchy {
    fn access(&mut self, a: Access) {
        crate::events::record();
        self.access_one(a);
    }

    fn access_block(&mut self, block: &[Access]) {
        // One odometer tick and one virtual call for the whole run; the
        // per-event work is the inlined fast path.
        crate::events::record_n(block.len() as u64);
        for &a in block {
            self.access_one(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::trace::Access;

    fn two_level() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig::write_back("L1", 256, 32, 2),
            CacheConfig::write_back("L2", 1024, 64, 2),
        ])
    }

    #[test]
    fn stride_one_read_traffic() {
        let mut h = two_level();
        // 64 sequential f64 reads = 512 B: 16 L1 lines, 8 L2 lines.
        for k in 0..64u64 {
            h.access(Access::read(k * 8, 8));
        }
        let r = h.report();
        assert_eq!(r.reg_bytes(), 512);
        assert_eq!(r.channel_bytes[1], 16 * 32); // L1 fetches
        assert_eq!(r.channel_bytes[2], 8 * 64); // L2 fetches
        assert_eq!(r.mem_read_bytes, 512);
        assert_eq!(r.mem_write_bytes, 0);
        assert_eq!(r.level_stats[0].read_misses, 16);
        assert_eq!(r.level_stats[0].read_hits, 48);
        assert_eq!(r.level_stats[1].read_misses, 8);
    }

    #[test]
    fn read_modify_write_doubles_memory_traffic() {
        // The §2.1 example: `a[i] = a[i] + c` moves each byte twice
        // (fetch + eventual writeback) while `sum += a[i]` moves it once.
        let n_bytes = 4096u64; // larger than both caches
        let mut h = two_level();
        for k in 0..n_bytes / 8 {
            h.access(Access::read(k * 8, 8));
            h.access(Access::write(k * 8, 8));
        }
        // Flush dirty lines by streaming a disjoint read range through.
        for k in 0..n_bytes / 8 {
            h.access(Access::read(1 << 20 | (k * 8), 8));
        }
        let r = h.report();
        assert_eq!(r.mem_read_bytes, 2 * n_bytes); // both ranges fetched
        assert_eq!(r.mem_write_bytes, n_bytes); // first range written back
    }

    #[test]
    fn writeback_propagates_full_line_without_fetch() {
        let mut h = two_level();
        // Dirty one L1 line, then evict it via conflicting reads.
        h.access(Access::write(0, 8));
        // L1: 256 B / 32 B / 2-way = 4 sets; line 0 conflicts with lines 4, 8.
        h.access(Access::read(4 * 32, 8));
        h.access(Access::read(8 * 32, 8));
        let r = h.report();
        assert_eq!(r.level_stats[0].writebacks, 1);
        // The L2 received the 32 B writeback as a write; it must not have
        // triggered a memory fetch (full-line write allocate).
        assert_eq!(r.mem_write_bytes, 0, "writeback absorbed by L2");
    }

    #[test]
    fn channel_invariant_fetch_plus_writeback() {
        let mut h = two_level();
        for k in 0..512u64 {
            h.access(Access::write(k * 8, 8));
            h.access(Access::read((k * 8 + 2048) % 8192, 8));
        }
        let r = h.report();
        let l1 = &r.level_stats[0];
        assert_eq!(
            r.channel_bytes[1],
            (l1.fetches + l1.writebacks) * 32,
            "L1↔L2 bytes = (fetches + writebacks) × line"
        );
        let l2 = &r.level_stats[1];
        assert_eq!(r.channel_bytes[2], (l2.fetches + l2.writebacks) * 64);
        assert_eq!(r.mem_bytes(), r.mem_read_bytes + r.mem_write_bytes);
    }

    #[test]
    fn single_level_direct_mapped_hierarchy() {
        // Exemplar-like: one direct-mapped level.
        let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 1)]);
        for k in 0..32u64 {
            h.access(Access::read(k * 8, 8));
        }
        let r = h.report();
        assert_eq!(r.channel_bytes.len(), 2);
        assert_eq!(r.reg_bytes(), 256);
        assert_eq!(r.channel_bytes[1], 8 * 32);
    }

    #[test]
    fn reset_zeroes_report() {
        let mut h = two_level();
        h.access(Access::read(0, 8));
        h.reset();
        let r = h.report();
        assert_eq!(r.reg_bytes(), 0);
        assert_eq!(r.mem_bytes(), 0);
    }

    #[test]
    fn straddling_access_splits() {
        let mut h = two_level();
        // 8-byte access straddling a 32-byte boundary touches two lines.
        h.access(Access::read(28, 8));
        let r = h.report();
        assert_eq!(r.level_stats[0].read_misses, 2);
    }

    #[test]
    fn batched_and_scalar_streams_report_identically() {
        // A mixed stream: hits, misses, writebacks, straddlers, zero-size.
        let mut trace = Vec::new();
        for k in 0..2048u64 {
            let addr = (k.wrapping_mul(0x9E37_79B9).wrapping_add(7)) % 8192;
            trace.push(if k % 3 == 0 { Access::write(addr, 8) } else { Access::read(addr, 8) });
        }
        trace.push(Access::read(28, 8)); // straddler
        trace.push(Access { addr: 40, size: 0, kind: AccessKind::Read });

        let mut scalar = two_level();
        for &a in &trace {
            scalar.access(a);
        }
        let mut batched = two_level();
        batched.access_block(&trace);
        let mut buffered = two_level();
        {
            let mut b = mbb_ir::trace::Buffered::with_capacity(&mut buffered, 13);
            for &a in &trace {
                b.access(a);
            }
        }
        assert_eq!(scalar.report(), batched.report());
        assert_eq!(scalar.report(), buffered.report());
    }

    #[test]
    fn access_block_ticks_the_odometer_once_per_event() {
        let before = crate::events::so_far();
        let mut h = two_level();
        let block: Vec<Access> = (0..64u64).map(|k| Access::read(k * 8, 8)).collect();
        h.access_block(&block);
        assert_eq!(crate::events::so_far() - before, 64);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use mbb_ir::trace::Access;

    #[test]
    fn next_line_prefetch_halves_demand_misses_on_streams() {
        let base = CacheConfig::write_back("L1", 256, 32, 2);
        let run = |cfg: CacheConfig| {
            let mut h = Hierarchy::new(vec![cfg]);
            for k in 0..512u64 {
                h.access(Access::read(k * 8, 8));
            }
            h.report()
        };
        let plain = run(base.clone());
        let pf = run(base.with_prefetch(1));
        // Same bytes fetched either way (sequential stream: every prefetch
        // is useful)…
        assert_eq!(plain.mem_read_bytes, pf.mem_read_bytes);
        // …but roughly half the *demand* misses remain: latency tolerated,
        // bandwidth unchanged — §1 of the paper in two counters.
        assert!(pf.level_stats[0].misses() * 2 <= plain.level_stats[0].misses() + 2);
        assert!(pf.level_stats[0].prefetches > 0);
    }

    #[test]
    fn useless_prefetches_waste_bandwidth() {
        // Stride-two-line reads: every prefetched line is skipped over, so
        // prefetching doubles memory traffic without helping.
        let base = CacheConfig::write_back("L1", 256, 32, 2);
        let run = |cfg: CacheConfig| {
            let mut h = Hierarchy::new(vec![cfg]);
            for k in 0..128u64 {
                h.access(Access::read(k * 64, 8)); // one access per 2 lines
            }
            h.report()
        };
        let plain = run(base.clone());
        let pf = run(base.with_prefetch(1));
        assert!(
            pf.mem_read_bytes >= 2 * plain.mem_read_bytes - 64,
            "prefetch {} vs plain {}",
            pf.mem_read_bytes,
            plain.mem_read_bytes
        );
        assert_eq!(pf.level_stats[0].misses(), plain.level_stats[0].misses());
    }

    #[test]
    fn prefetch_evictions_write_back_dirty_victims() {
        // A dirty line evicted by a prefetch must still reach memory.
        let cfg = CacheConfig::write_back("L1", 64, 32, 1).with_prefetch(1); // 2 sets
        let mut h = Hierarchy::new(vec![cfg]);
        h.access(Access::write(0, 8)); // line 0 dirty (set 0); prefetches line 1 (set 1)
        h.access(Access::read(128, 8)); // line 4 (set 0): evicts dirty line 0; prefetch line 5
        let r = h.report();
        assert!(r.mem_write_bytes >= 32, "{}", r.mem_write_bytes);
    }
}

#[cfg(test)]
mod tlb_tests {
    use super::*;
    use mbb_ir::trace::Access;

    fn with_tlb() -> Hierarchy {
        Hierarchy::new(vec![CacheConfig::write_back("L1", 4096, 32, 2)]).with_tlb(4, 256)
    }

    #[test]
    fn sequential_accesses_miss_once_per_page() {
        let mut h = with_tlb();
        for k in 0..128u64 {
            h.access(Access::read(k * 8, 8)); // 1 KB = 4 pages of 256 B
        }
        assert_eq!(h.report().tlb_misses, 4);
    }

    #[test]
    fn reuse_within_capacity_hits() {
        let mut h = with_tlb();
        for _ in 0..10 {
            for page in 0..4u64 {
                h.access(Access::read(page * 256, 8));
            }
        }
        assert_eq!(h.report().tlb_misses, 4, "4 pages fit the 4 entries");
    }

    #[test]
    fn thrash_beyond_capacity() {
        let mut h = with_tlb();
        // 5 pages round-robin through a 4-entry LRU: every access misses.
        for _ in 0..10 {
            for page in 0..5u64 {
                h.access(Access::read(page * 256, 8));
            }
        }
        assert_eq!(h.report().tlb_misses, 50);
    }

    #[test]
    fn no_tlb_reports_zero() {
        let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 4096, 32, 2)]);
        h.access(Access::read(0, 8));
        assert_eq!(h.report().tlb_misses, 0);
    }

    #[test]
    fn reset_clears_tlb() {
        let mut h = with_tlb();
        h.access(Access::read(0, 8));
        h.reset();
        assert_eq!(h.report().tlb_misses, 0);
        h.access(Access::read(0, 8));
        assert_eq!(h.report().tlb_misses, 1, "cold again after reset");
    }
}
