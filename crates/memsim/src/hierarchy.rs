//! A multi-level memory hierarchy fed by an access trace.
//!
//! The hierarchy is a chain of [`Cache`] levels in front of an infinite
//! memory.  It implements [`AccessSink`], so an `mbb-ir` interpreter (or a
//! traced native kernel) can stream accesses straight into it.  What comes
//! out is the paper's raw material: bytes moved on every channel —
//! registers↔L1, L1↔L2, …, last-level↔memory — from which program balance
//! is a division away.

use mbb_ir::trace::{Access, AccessKind, AccessSink, RunRef};

use crate::cache::{Cache, CacheConfig, LevelStats, LineOutcome, WritePolicy};

/// Bytes and events observed on every channel of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    /// Bytes entering each level: index 0 is register↔L1 traffic, index `i`
    /// is the traffic between level `i-1` and level `i`, and the last entry
    /// is the traffic between the last cache level and memory.
    pub channel_bytes: Vec<u64>,
    /// Counters per cache level.
    pub level_stats: Vec<LevelStats>,
    /// Bytes read from memory (fetches reaching memory).
    pub mem_read_bytes: u64,
    /// Bytes written to memory (writebacks and write-throughs reaching
    /// memory).
    pub mem_write_bytes: u64,
    /// Demand accesses that missed the TLB (0 when no TLB is modelled).
    pub tlb_misses: u64,
}

impl TrafficReport {
    /// Traffic on the memory channel (reads + writes), the denominator
    /// resource of the paper's bottleneck argument.
    pub fn mem_bytes(&self) -> u64 {
        *self.channel_bytes.last().unwrap_or(&0)
    }

    /// Traffic on the register channel.
    pub fn reg_bytes(&self) -> u64 {
        *self.channel_bytes.first().unwrap_or(&0)
    }

    /// Misses at each cache level (for the exposed-latency timing term).
    pub fn misses(&self) -> Vec<u64> {
        self.level_stats.iter().map(|s| s.misses()).collect()
    }
}

/// A fully-associative LRU TLB over pages (small entry counts: a linear
/// scan with move-to-front is faster than hashing here).
#[derive(Clone, Debug)]
struct TlbSim {
    /// `log2(page size)` — pages are asserted to be powers of two.
    page_shift: u32,
    /// Entries in MRU-first order.
    entries: Vec<u64>,
    capacity: usize,
    misses: u64,
}

impl TlbSim {
    /// Pure residency check: is the page containing `addr` mapped?  No
    /// state or counter change either way.
    #[inline]
    fn probe(&self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        self.entries.contains(&page)
    }

    /// MRU touch of a page known to be resident (hit-path state transition
    /// of [`TlbSim::access`], which has no counters to update).
    #[inline]
    fn touch(&mut self, addr: u64) {
        let page = addr >> self.page_shift;
        if self.entries.first() == Some(&page) {
            return;
        }
        let pos = self.entries.iter().position(|&p| p == page).expect("touched page resident");
        self.entries[..=pos].rotate_right(1);
    }

    #[inline]
    fn access(&mut self, addr: u64) {
        let page = addr >> self.page_shift;
        // MRU-first short-circuit: stride-1 sweeps hit the front entry for
        // thousands of consecutive accesses, and moving position 0 to the
        // front is a no-op anyway.
        if self.entries.first() == Some(&page) {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries[..=pos].rotate_right(1);
            return;
        }
        self.misses += 1;
        mbb_obs::tick_tlb_miss();
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, page);
    }
}

/// A chain of caches in front of memory, consuming an access trace.
///
/// ```
/// use mbb_ir::trace::{Access, AccessSink};
/// use mbb_memsim::cache::CacheConfig;
/// use mbb_memsim::hierarchy::Hierarchy;
///
/// let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 1024, 32, 2)]);
/// for k in 0..64u64 {
///     h.access(Access::read(k * 8, 8)); // one 512-byte stream
/// }
/// let report = h.report();
/// assert_eq!(report.reg_bytes(), 512);
/// assert_eq!(report.mem_bytes(), 512); // 16 cold line fetches × 32 B
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    entry_bytes: Vec<u64>,
    mem_read_bytes: u64,
    mem_write_bytes: u64,
    tlb: Option<TlbSim>,
}

impl Hierarchy {
    /// Builds a hierarchy from level configurations, outermost (L1) first.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        let n = configs.len();
        Hierarchy {
            levels: configs.into_iter().map(Cache::new).collect(),
            entry_bytes: vec![0; n + 1],
            mem_read_bytes: 0,
            mem_write_bytes: 0,
            tlb: None,
        }
    }

    /// Adds a fully-associative LRU TLB with `entries` translations over
    /// `page`-byte pages.  Demand accesses look it up; misses are counted
    /// in [`TrafficReport::tlb_misses`] and priced by the timing model.
    pub fn with_tlb(mut self, entries: usize, page: u64) -> Self {
        assert!(entries > 0 && page.is_power_of_two());
        self.tlb = Some(TlbSim {
            page_shift: page.trailing_zeros(),
            entries: Vec::with_capacity(entries),
            capacity: entries,
            misses: 0,
        });
        self
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Clears cache contents and counters.
    pub fn reset(&mut self) {
        for c in &mut self.levels {
            c.reset();
        }
        self.entry_bytes.iter_mut().for_each(|b| *b = 0);
        self.mem_read_bytes = 0;
        self.mem_write_bytes = 0;
        if let Some(t) = &mut self.tlb {
            t.entries.clear();
            t.misses = 0;
        }
    }

    /// Writes every dirty line back to memory (through intervening levels),
    /// as quiescing the machine eventually would.  Programs that end with
    /// freshly written data (STREAM, the §2.1 write loop) owe these bytes
    /// to the memory channel; without a flush they would be invisible.
    pub fn flush(&mut self) {
        for level in 0..self.levels.len() {
            let line = self.levels[level].line_size();
            for victim in self.levels[level].drain_dirty() {
                mbb_obs::tick_writeback(level);
                self.do_access(level + 1, victim, line, true, true);
            }
        }
    }

    /// Extracts the traffic report of everything streamed so far.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            channel_bytes: self.entry_bytes.clone(),
            level_stats: self.levels.iter().map(|c| c.stats).collect(),
            mem_read_bytes: self.mem_read_bytes,
            mem_write_bytes: self.mem_write_bytes,
            tlb_misses: self.tlb.as_ref().map(|t| t.misses).unwrap_or(0),
        }
    }

    /// Services one demand access: TLB, then the level walk — with a fast
    /// path for the overwhelmingly common case of a single-line access,
    /// which skips the line-splitting walk and goes straight to one L1 set
    /// lookup.  A hit touches that one set and returns; a miss has already
    /// paid its (only) lookup and proceeds to the consequences.
    #[inline]
    fn access_one(&mut self, a: Access) {
        if let Some(t) = &mut self.tlb {
            t.access(a.addr);
        }
        let size = u64::from(a.size);
        let is_write = a.kind == AccessKind::Write;
        if !self.levels.is_empty() && self.levels[0].covers_one_line(a.addr, size) {
            self.entry_bytes[0] += size;
            mbb_obs::tick_channel_bytes(0, size);
            let line = self.levels[0].line_size();
            let line_base = a.addr & !(line - 1);
            let covers_line = a.addr == line_base && size == line;
            let outcome = self.levels[0].access_line(a.addr, is_write, covers_line);
            self.after_line(0, a.addr, size, line, line_base, outcome);
            return;
        }
        self.do_access(0, a.addr, size, is_write, false);
    }

    /// Acts on one [`LineOutcome`]: nothing on a hit; writeback, fetch and
    /// prefetch fills on a miss; store forwarding on a write-through.
    /// `a`/`seg_size` are the segment serviced, `line_base` its line.
    #[inline]
    fn after_line(
        &mut self,
        level: usize,
        a: u64,
        seg_size: u64,
        line: u64,
        line_base: u64,
        outcome: LineOutcome,
    ) {
        match outcome {
            LineOutcome::Hit => {}
            LineOutcome::Miss { writeback_of, fetched } => {
                mbb_obs::tick_miss(level);
                if let Some(victim) = writeback_of {
                    mbb_obs::tick_writeback(level);
                    self.do_access(level + 1, victim, line, true, true);
                }
                if fetched {
                    self.do_access(level + 1, line_base, line, false, false);
                }
                // Next-line prefetch: install sequential lines; their
                // fills consume downstream bandwidth like any fetch.
                let depth = self.levels[level].config().prefetch_next;
                for k in 1..=u64::from(depth) {
                    // No lines exist past the top of the address space.
                    let Some(target) = line_base.checked_add(k * line) else { break };
                    if let Some(victim) = self.levels[level].prefetch_line(target) {
                        if let Some(v) = victim {
                            mbb_obs::tick_writeback(level);
                            self.do_access(level + 1, v, line, true, true);
                        }
                        self.do_access(level + 1, target, line, false, false);
                    }
                }
            }
            LineOutcome::WroteThrough { hit } => {
                if !hit {
                    mbb_obs::tick_miss(level);
                }
                // Forward the store itself; no allocation here.
                self.do_access(level + 1, a, seg_size, true, false);
            }
        }
    }

    fn do_access(&mut self, level: usize, addr: u64, size: u64, is_write: bool, full_line: bool) {
        self.entry_bytes[level] += size;
        mbb_obs::tick_channel_bytes(level, size);
        if level == self.levels.len() {
            // Memory: infinite, just account.
            if is_write {
                self.mem_write_bytes += size;
                mbb_obs::tick_mem_write(size);
            } else {
                self.mem_read_bytes += size;
                mbb_obs::tick_mem_read(size);
            }
            return;
        }
        let line = self.levels[level].line_size();
        // Split the access at line boundaries (rare for aligned f64 cells,
        // but kept general).  Line sizes are powers of two, so rounding
        // down is a mask.
        // Saturate at the top of the address space: an access that would
        // wrap is truncated there (and `checked_add` below keeps the last
        // line's segment from wrapping `seg_end` back to zero).
        let mut a = addr;
        let end = addr.saturating_add(size);
        while a < end {
            let line_base = a & !(line - 1);
            let seg_end = line_base.checked_add(line).map_or(end, |next| next.min(end));
            let seg_size = seg_end - a;
            let covers_line = full_line || (a == line_base && seg_size == line);
            let outcome = self.levels[level].access_line(a, is_write, covers_line);
            self.after_line(level, a, seg_size, line, line_base, outcome);
            a = seg_end;
        }
    }

    /// True when every ref of a run bundle qualifies for the symbolic
    /// window walk.  Any violation sends the whole bundle down the exact
    /// element-by-element path instead (same results, element speed).
    ///
    /// The conditions, each load-bearing for exactness:
    /// - a cache level exists (the walk reasons in L1 lines);
    /// - when a TLB is modelled, its page covers at least one L1 line, so
    ///   a window that stays in one line also stays in one page;
    /// - no write ref meets a write-through L1: a write-through hit
    ///   forwards bytes below, which a hit-only touch cannot express;
    /// - no access in the run wraps the 64-bit address space (the window
    ///   algebra is monotone in the address);
    /// - no access ever straddles an L1 line.  Offsets visited by a
    ///   stride-`s` run all lie in one residue class mod `g = gcd(s mod L,
    ///   L)`, whose worst case is `L − g + (o₀ mod g)`; the access fits
    ///   every line iff `(o₀ mod g) + size ≤ g` (constant-offset runs need
    ///   only `o₀ + size ≤ L`).
    fn run_fast_eligible(&self, refs: &[RunRef], count: u64) -> bool {
        if self.levels.is_empty() {
            return false;
        }
        let l = self.levels[0].line_size();
        if let Some(t) = &self.tlb {
            if (1u64 << t.page_shift) < l {
                return false;
            }
        }
        let write_through = self.levels[0].config().policy == WritePolicy::WriteThrough;
        for r in refs {
            let size = u64::from(r.size);
            if size == 0 || size > l {
                return false;
            }
            if r.kind == AccessKind::Write && write_through {
                return false;
            }
            let first = r.base as i128;
            let last = first + r.stride as i128 * (count - 1) as i128;
            let (lo, hi) = if first <= last { (first, last) } else { (last, first) };
            if lo < 0 || hi + size as i128 > u64::MAX as i128 + 1 {
                return false;
            }
            let sm = r.stride.rem_euclid(l as i64) as u64;
            let o0 = r.base & (l - 1);
            let fits = if sm == 0 {
                o0 + size <= l
            } else {
                let g = gcd(sm, l);
                (o0 % g) + size <= g
            };
            if !fits {
                return false;
            }
        }
        true
    }

    /// Services a run bundle: the symbolic window walk when eligible, the
    /// exact element walk otherwise.
    ///
    /// The window walk partitions `0..count` into maximal *windows* —
    /// iteration spans in which no ref's line address changes.  Within a
    /// window every iteration performs the identical touch cycle over the
    /// same lines and pages, and a touch cycle is idempotent on MRU state:
    /// one application reaches the fixed point (each line ordered by its
    /// last touch in the cycle), repeats are no-ops.  So when every line
    /// and page of the window is resident, the walk applies the cycle
    /// *once* and bulk-adds `window × per-iteration` hit counters — no
    /// per-element work at all.  Pure-hit windows evict and install
    /// nothing, so residency observed at the window head holds throughout.
    ///
    /// The residency check is two-phase: first a pure probe of every
    /// distinct line (and its page), then — only if all are resident — the
    /// state application.  A failed probe therefore leaves *no* partial
    /// state, and the window is replayed through [`Hierarchy::access_one`]
    /// element by element, which handles misses, evictions, prefetches and
    /// TLB fills exactly as the scalar engine would.
    fn run_walk(&mut self, refs: &[RunRef], count: u64) {
        if refs.is_empty() || count == 0 {
            return;
        }
        if !self.run_fast_eligible(refs, count) {
            for k in 0..count {
                for r in refs {
                    self.access_one(r.at(k));
                }
            }
            return;
        }

        let line_sz = self.levels[0].line_size();
        let lmask = line_sz - 1;
        let line_shift = line_sz.trailing_zeros();

        // Refs that provably share a line at *every* iteration collapse
        // into one probe.  A ref joins a group iff it has the group's
        // stride and sits at a non-negative offset `d` from the leader
        // with `max_off + d + size ≤ L` (`max_off` being the leader's
        // worst-case line offset over all iterations) — then it lives in
        // the leader's line at every k.  Refs not grouped together may
        // still alias a line at *some* iterations; that is harmless: the
        // touch cycle below orders groups by last member position, so an
        // aliased line's final MRU position is set by whichever group
        // touches it last, exactly as in the scalar cycle.
        struct Group {
            base: u64,
            stride: i64,
            is_write: bool,
            /// Last member's position in access order (touch-cycle order).
            last: usize,
            max_off: u64,
            /// Leader address at the current window head.
            cur_addr: u64,
            /// Cached L1 coordinates of the current line: valid while the
            /// line address is unchanged and only pure-hit windows have
            /// run since the probe (those install and evict nothing, and
            /// MRU touches permute the order vector, not the ways).
            line: u64,
            set_idx: u32,
            way: u8,
            cache_ok: bool,
            /// Current TLB page, and whether it is known resident with the
            /// window touch cycle already applied (see `tlb_cycle_ok`).
            page: u64,
            tlb_ok: bool,
            /// Cached shuffled frame of the current L1 index page.  The
            /// frame is a pure function of the page number, so this cache
            /// never invalidates — it is refreshed only when the line
            /// crosses into another shuffle page.
            ipage: u64,
            iframe: u64,
            frame_ok: bool,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (j, r) in refs.iter().enumerate() {
            let size = u64::from(r.size);
            let joined = groups.iter_mut().any(|g| {
                let d = r.base.wrapping_sub(g.base);
                if g.stride == r.stride && r.base >= g.base && g.max_off + d + size <= line_sz {
                    g.is_write |= r.kind == AccessKind::Write;
                    g.last = j;
                    true
                } else {
                    false
                }
            });
            if !joined {
                let sm = r.stride.rem_euclid(line_sz as i64) as u64;
                let o0 = r.base & lmask;
                let max_off = if sm == 0 {
                    o0
                } else {
                    let g = gcd(sm, line_sz);
                    line_sz - g + (o0 % g)
                };
                groups.push(Group {
                    base: r.base,
                    stride: r.stride,
                    is_write: r.kind == AccessKind::Write,
                    last: j,
                    max_off,
                    cur_addr: 0,
                    line: 0,
                    set_idx: 0,
                    way: 0,
                    cache_ok: false,
                    page: 0,
                    tlb_ok: false,
                    ipage: 0,
                    iframe: 0,
                    frame_ok: false,
                });
            }
        }
        groups.sort_by_key(|g| g.last);

        let total_reads = refs.iter().filter(|r| r.kind == AccessKind::Read).count() as u64;
        let total_writes = refs.len() as u64 - total_reads;
        let bytes_per_iter: u64 = refs.iter().map(|r| u64::from(r.size)).sum();

        let page_shift = self.tlb.as_ref().map(|t| t.page_shift);
        let shuffle_shift = self.levels[0].shuffle_lines_shift();
        // True while the TLB's MRU order sits at the fixed point of the
        // current touch cycle: every group's page unchanged since the
        // cycle was last applied, and no scalar replay in between.  The
        // cycle is idempotent (each page ends ordered by its last touch),
        // so re-applying it would be a no-op — skip it entirely.
        let mut tlb_cycle_ok = false;

        let mut bulk_iters: u64 = 0;
        let mut k: u64 = 0;
        while k < count {
            let remaining = count - k;
            // Window = the largest span in which no group leaves its line.
            let mut w = remaining;
            for g in groups.iter_mut() {
                let addr = g.base.wrapping_add(g.stride.wrapping_mul(k as i64) as u64);
                g.cur_addr = addr;
                let la = addr >> line_shift;
                if g.cache_ok && la != g.line {
                    g.cache_ok = false;
                }
                g.line = la;
                if let Some(ps) = page_shift {
                    let page = addr >> ps;
                    if !g.tlb_ok || page != g.page {
                        g.page = page;
                        g.tlb_ok = false;
                        tlb_cycle_ok = false;
                    }
                }
                let delta = match g.stride {
                    0 => remaining,
                    s if s > 0 => {
                        let o = addr & lmask;
                        (line_sz - o).div_ceil(s as u64)
                    }
                    s => {
                        let o = addr & lmask;
                        o / s.unsigned_abs() + 1
                    }
                };
                w = w.min(delta);
            }

            // Phase 1: pure probes — no state change on any outcome.  A
            // page already probed keeps its residency across pure-hit
            // windows (those install and evict nothing), so only groups
            // whose page changed probe the TLB again.
            let mut all_hit = true;
            for g in groups.iter_mut() {
                if !g.tlb_ok {
                    if let Some(t) = &self.tlb {
                        if !t.probe(g.cur_addr) {
                            all_hit = false;
                            break;
                        }
                    }
                }
                if g.cache_ok {
                    continue;
                }
                // The shuffled frame is a pure function of the index page,
                // so the hash is paid once per page, not once per line.
                let index_addr = match shuffle_shift {
                    None => g.line,
                    Some(shift) => {
                        let ipage = g.line >> shift;
                        if !g.frame_ok || ipage != g.ipage {
                            g.ipage = ipage;
                            g.iframe = self.levels[0].frame_of_page(ipage);
                            g.frame_ok = true;
                        }
                        g.iframe.wrapping_add(g.line & ((1u64 << shift) - 1))
                    }
                };
                match self.levels[0].probe_indexed(index_addr, g.line) {
                    Some((set_idx, way)) => {
                        g.set_idx = set_idx;
                        g.way = way;
                        g.cache_ok = true;
                    }
                    None => {
                        all_hit = false;
                        break;
                    }
                }
            }

            if all_hit {
                // Phase 2: one touch cycle, in last-member order — the
                // fixed point of the window's per-iteration cycle.  The
                // TLB half is skipped while already at its fixed point.
                if !tlb_cycle_ok {
                    if let Some(t) = &mut self.tlb {
                        for g in groups.iter_mut() {
                            t.touch(g.cur_addr);
                            g.tlb_ok = true;
                        }
                    }
                    tlb_cycle_ok = true;
                }
                for g in groups.iter() {
                    self.levels[0].apply_touch(g.set_idx, g.way, g.is_write);
                }
                bulk_iters += w;
            } else {
                // Exact replay of the whole window; it may evict and
                // install (including TLB fills), so every cached
                // coordinate is stale after it.
                for i in k..k + w {
                    for r in refs {
                        self.access_one(r.at(i));
                    }
                }
                for g in groups.iter_mut() {
                    g.cache_ok = false;
                    g.tlb_ok = false;
                }
                tlb_cycle_ok = false;
            }
            k += w;
        }

        if bulk_iters > 0 {
            let stats = &mut self.levels[0].stats;
            stats.read_hits = stats.read_hits.wrapping_add(bulk_iters.wrapping_mul(total_reads));
            stats.write_hits = stats.write_hits.wrapping_add(bulk_iters.wrapping_mul(total_writes));
            let bytes = bulk_iters.wrapping_mul(bytes_per_iter);
            self.entry_bytes[0] += bytes;
            mbb_obs::tick_channel_bytes(0, bytes);
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl AccessSink for Hierarchy {
    fn access(&mut self, a: Access) {
        crate::events::record();
        self.access_one(a);
    }

    fn access_block(&mut self, block: &[Access]) {
        // One odometer tick and one virtual call for the whole run; the
        // per-event work is the inlined fast path.
        crate::events::record_n(block.len() as u64);
        for &a in block {
            self.access_one(a);
        }
    }

    fn access_runs(&mut self, refs: &[RunRef], count: u64) {
        crate::events::record_n(count.wrapping_mul(refs.len() as u64));
        self.run_walk(refs, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::trace::Access;

    fn two_level() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig::write_back("L1", 256, 32, 2),
            CacheConfig::write_back("L2", 1024, 64, 2),
        ])
    }

    #[test]
    fn stride_one_read_traffic() {
        let mut h = two_level();
        // 64 sequential f64 reads = 512 B: 16 L1 lines, 8 L2 lines.
        for k in 0..64u64 {
            h.access(Access::read(k * 8, 8));
        }
        let r = h.report();
        assert_eq!(r.reg_bytes(), 512);
        assert_eq!(r.channel_bytes[1], 16 * 32); // L1 fetches
        assert_eq!(r.channel_bytes[2], 8 * 64); // L2 fetches
        assert_eq!(r.mem_read_bytes, 512);
        assert_eq!(r.mem_write_bytes, 0);
        assert_eq!(r.level_stats[0].read_misses, 16);
        assert_eq!(r.level_stats[0].read_hits, 48);
        assert_eq!(r.level_stats[1].read_misses, 8);
    }

    #[test]
    fn read_modify_write_doubles_memory_traffic() {
        // The §2.1 example: `a[i] = a[i] + c` moves each byte twice
        // (fetch + eventual writeback) while `sum += a[i]` moves it once.
        let n_bytes = 4096u64; // larger than both caches
        let mut h = two_level();
        for k in 0..n_bytes / 8 {
            h.access(Access::read(k * 8, 8));
            h.access(Access::write(k * 8, 8));
        }
        // Flush dirty lines by streaming a disjoint read range through.
        for k in 0..n_bytes / 8 {
            h.access(Access::read(1 << 20 | (k * 8), 8));
        }
        let r = h.report();
        assert_eq!(r.mem_read_bytes, 2 * n_bytes); // both ranges fetched
        assert_eq!(r.mem_write_bytes, n_bytes); // first range written back
    }

    #[test]
    fn writeback_propagates_full_line_without_fetch() {
        let mut h = two_level();
        // Dirty one L1 line, then evict it via conflicting reads.
        h.access(Access::write(0, 8));
        // L1: 256 B / 32 B / 2-way = 4 sets; line 0 conflicts with lines 4, 8.
        h.access(Access::read(4 * 32, 8));
        h.access(Access::read(8 * 32, 8));
        let r = h.report();
        assert_eq!(r.level_stats[0].writebacks, 1);
        // The L2 received the 32 B writeback as a write; it must not have
        // triggered a memory fetch (full-line write allocate).
        assert_eq!(r.mem_write_bytes, 0, "writeback absorbed by L2");
    }

    #[test]
    fn channel_invariant_fetch_plus_writeback() {
        let mut h = two_level();
        for k in 0..512u64 {
            h.access(Access::write(k * 8, 8));
            h.access(Access::read((k * 8 + 2048) % 8192, 8));
        }
        let r = h.report();
        let l1 = &r.level_stats[0];
        assert_eq!(
            r.channel_bytes[1],
            (l1.fetches + l1.writebacks) * 32,
            "L1↔L2 bytes = (fetches + writebacks) × line"
        );
        let l2 = &r.level_stats[1];
        assert_eq!(r.channel_bytes[2], (l2.fetches + l2.writebacks) * 64);
        assert_eq!(r.mem_bytes(), r.mem_read_bytes + r.mem_write_bytes);
    }

    #[test]
    fn single_level_direct_mapped_hierarchy() {
        // Exemplar-like: one direct-mapped level.
        let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 1)]);
        for k in 0..32u64 {
            h.access(Access::read(k * 8, 8));
        }
        let r = h.report();
        assert_eq!(r.channel_bytes.len(), 2);
        assert_eq!(r.reg_bytes(), 256);
        assert_eq!(r.channel_bytes[1], 8 * 32);
    }

    #[test]
    fn reset_zeroes_report() {
        let mut h = two_level();
        h.access(Access::read(0, 8));
        h.reset();
        let r = h.report();
        assert_eq!(r.reg_bytes(), 0);
        assert_eq!(r.mem_bytes(), 0);
    }

    #[test]
    fn straddling_access_splits() {
        let mut h = two_level();
        // 8-byte access straddling a 32-byte boundary touches two lines.
        h.access(Access::read(28, 8));
        let r = h.report();
        assert_eq!(r.level_stats[0].read_misses, 2);
    }

    #[test]
    fn batched_and_scalar_streams_report_identically() {
        // A mixed stream: hits, misses, writebacks, straddlers, zero-size.
        let mut trace = Vec::new();
        for k in 0..2048u64 {
            let addr = (k.wrapping_mul(0x9E37_79B9).wrapping_add(7)) % 8192;
            trace.push(if k % 3 == 0 { Access::write(addr, 8) } else { Access::read(addr, 8) });
        }
        trace.push(Access::read(28, 8)); // straddler
        trace.push(Access { addr: 40, size: 0, kind: AccessKind::Read });

        let mut scalar = two_level();
        for &a in &trace {
            scalar.access(a);
        }
        let mut batched = two_level();
        batched.access_block(&trace);
        let mut buffered = two_level();
        {
            let mut b = mbb_ir::trace::Buffered::with_capacity(&mut buffered, 13);
            for &a in &trace {
                b.access(a);
            }
        }
        assert_eq!(scalar.report(), batched.report());
        assert_eq!(scalar.report(), buffered.report());
    }

    #[test]
    fn access_block_ticks_the_odometer_once_per_event() {
        let before = crate::events::so_far();
        let mut h = two_level();
        let block: Vec<Access> = (0..64u64).map(|k| Access::read(k * 8, 8)).collect();
        h.access_block(&block);
        assert_eq!(crate::events::so_far() - before, 64);
    }
}

#[cfg(test)]
mod run_tests {
    use super::*;
    use mbb_ir::trace::{Access, RunRef};

    /// Feeds the same run bundle through the symbolic walk and through the
    /// scalar expansion into twin hierarchies; reports must be identical.
    fn assert_runs_match(mk: impl Fn() -> Hierarchy, refs: &[RunRef], count: u64) {
        let mut fast = mk();
        fast.access_runs(refs, count);
        let mut scalar = mk();
        for k in 0..count {
            for r in refs {
                scalar.access(r.at(k));
            }
        }
        assert_eq!(fast.report(), scalar.report());
        // And after a full flush (drains dirty lines both sides).
        fast.flush();
        scalar.flush();
        assert_eq!(fast.report(), scalar.report());
    }

    fn two_level() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig::write_back("L1", 256, 32, 2),
            CacheConfig::write_back("L2", 1024, 64, 2),
        ])
    }

    fn rr(base: u64, stride: i64, kind: AccessKind) -> RunRef {
        RunRef { base, stride, size: 8, kind }
    }

    #[test]
    fn streaming_triad_matches_scalar() {
        let refs = [
            rr(0, 8, AccessKind::Read),
            rr(8192, 8, AccessKind::Read),
            rr(16384, 8, AccessKind::Write),
        ];
        assert_runs_match(two_level, &refs, 512);
    }

    #[test]
    fn resident_rerun_is_hit_dominated_and_exact() {
        // Second pass over a 128-byte footprint: everything resident.
        let refs = [rr(0, 8, AccessKind::Read), rr(64, 8, AccessKind::Write)];
        let mut fast = two_level();
        fast.access_runs(&refs, 8);
        fast.access_runs(&refs, 8);
        let mut scalar = two_level();
        for _ in 0..2 {
            for k in 0..8 {
                for r in &refs {
                    scalar.access(r.at(k));
                }
            }
        }
        assert_eq!(fast.report(), scalar.report());
        assert!(fast.report().level_stats[0].read_hits > 0);
    }

    #[test]
    fn negative_and_zero_strides_match() {
        let refs = [
            rr(4096, -8, AccessKind::Read),
            rr(120, 0, AccessKind::Read), // loop-invariant cell
            rr(8192, -24, AccessKind::Write),
        ];
        assert_runs_match(two_level, &refs, 300);
    }

    #[test]
    fn shared_line_groups_match() {
        // Adjacent same-line refs (interleaved re/im pairs) collapse into
        // one probe group; an aliasing read of the same cells rides along.
        let refs = [
            rr(0, 16, AccessKind::Read),
            rr(8, 16, AccessKind::Read),
            rr(1024, 16, AccessKind::Write),
            rr(1032, 16, AccessKind::Write),
            rr(0, 16, AccessKind::Write), // aliases group 0, different group order
        ];
        assert_runs_match(two_level, &refs, 256);
    }

    #[test]
    fn straddling_ref_falls_back_exactly() {
        // A misaligned 8-byte stride-12 ref straddles lines: whole bundle
        // takes the element walk, still byte-identical.
        let refs = [rr(0, 8, AccessKind::Read), rr(28, 12, AccessKind::Write)];
        assert_runs_match(two_level, &refs, 200);
    }

    #[test]
    fn write_through_l1_falls_back_exactly() {
        let mk = || {
            Hierarchy::new(vec![
                CacheConfig {
                    name: "wt".into(),
                    size: 256,
                    line: 32,
                    assoc: 2,
                    policy: WritePolicy::WriteThrough,
                    prefetch_next: 0,
                    page_shuffle: None,
                },
                CacheConfig::write_back("L2", 1024, 64, 2),
            ])
        };
        let refs = [rr(0, 8, AccessKind::Read), rr(512, 8, AccessKind::Write)];
        assert_runs_match(mk, &refs, 256);
        // Read-only bundles stay on the fast path under write-through.
        assert_runs_match(mk, &[rr(0, 8, AccessKind::Read)], 256);
    }

    #[test]
    fn tlb_and_page_shuffle_match() {
        let mk = || {
            Hierarchy::new(vec![
                CacheConfig::write_back("L1", 512, 32, 2).with_page_shuffle(256),
                CacheConfig::write_back("L2", 4096, 128, 2),
            ])
            .with_tlb(4, 1024)
        };
        let refs = [
            rr(0, 8, AccessKind::Read),
            rr(1 << 16, 8, AccessKind::Write),
            rr(1 << 20, 40, AccessKind::Read),
        ];
        assert_runs_match(mk, &refs, 600);
    }

    #[test]
    fn prefetching_level_matches() {
        let mk =
            || Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 2).with_prefetch(1)]);
        let refs = [rr(0, 8, AccessKind::Read), rr(4096, 64, AccessKind::Write)];
        assert_runs_match(mk, &refs, 400);
    }

    #[test]
    fn direct_mapped_conflict_stream_matches() {
        // Two streams one cache-size apart thrash a direct-mapped L1;
        // the interleaved order is what makes them conflict, so this
        // guards the walk's order preservation.
        let mk = || Hierarchy::new(vec![CacheConfig::write_back("L1", 256, 32, 1)]);
        let refs = [rr(0, 8, AccessKind::Read), rr(256, 8, AccessKind::Read)];
        assert_runs_match(mk, &refs, 128);
    }

    #[test]
    fn odd_set_count_matches() {
        let mk = || Hierarchy::new(vec![CacheConfig::write_back("odd", 96, 32, 1)]);
        let refs = [rr(0, 8, AccessKind::Read), rr(96, 8, AccessKind::Write)];
        assert_runs_match(mk, &refs, 120);
    }

    #[test]
    fn run_walk_ticks_the_odometer_once_per_event() {
        let before = crate::events::so_far();
        let mut h = two_level();
        h.access_runs(
            &[
                RunRef { base: 0, stride: 8, size: 8, kind: AccessKind::Read },
                RunRef { base: 4096, stride: 8, size: 8, kind: AccessKind::Write },
            ],
            64,
        );
        assert_eq!(crate::events::so_far() - before, 128);
    }

    #[test]
    fn empty_and_zero_size_runs_match() {
        assert_runs_match(two_level, &[], 100);
        assert_runs_match(two_level, &[rr(0, 8, AccessKind::Read)], 0);
        // Zero-size accesses take the element walk (TLB-only traffic).
        let refs = [RunRef { base: 0, stride: 8, size: 0, kind: AccessKind::Read }];
        assert_runs_match(|| two_level().with_tlb(4, 256), &refs, 50);
    }

    /// Accesses touching the last line of the 64-bit address space must
    /// terminate (they are truncated at the top, never wrapped back to
    /// address zero), and a negative-stride run that wraps below zero
    /// produces exactly such addresses — the fallback must survive them.
    /// Regression: `do_access`'s segment split once wrapped `seg_end` to
    /// zero here and restarted the walk from the bottom of memory.
    #[test]
    fn top_of_address_space_terminates_and_matches() {
        let mut h = two_level();
        // Straddles the top: 4 bytes exist, 4 would wrap.
        h.access(Access { addr: u64::MAX - 3, size: 8, kind: AccessKind::Read });
        h.access(Access { addr: u64::MAX, size: 8, kind: AccessKind::Write });
        std::hint::black_box(h.report());

        // base 0, stride −40: iteration 1 lands at 0xFFFF_FFFF_FFFF_FFD8.
        let refs = [RunRef { base: 0, stride: -40, size: 1, kind: AccessKind::Read }];
        assert_runs_match(two_level, &refs, 200);
        assert_runs_match(|| two_level().with_tlb(4, 256), &refs, 200);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use mbb_ir::trace::Access;

    #[test]
    fn next_line_prefetch_halves_demand_misses_on_streams() {
        let base = CacheConfig::write_back("L1", 256, 32, 2);
        let run = |cfg: CacheConfig| {
            let mut h = Hierarchy::new(vec![cfg]);
            for k in 0..512u64 {
                h.access(Access::read(k * 8, 8));
            }
            h.report()
        };
        let plain = run(base.clone());
        let pf = run(base.with_prefetch(1));
        // Same bytes fetched either way (sequential stream: every prefetch
        // is useful)…
        assert_eq!(plain.mem_read_bytes, pf.mem_read_bytes);
        // …but roughly half the *demand* misses remain: latency tolerated,
        // bandwidth unchanged — §1 of the paper in two counters.
        assert!(pf.level_stats[0].misses() * 2 <= plain.level_stats[0].misses() + 2);
        assert!(pf.level_stats[0].prefetches > 0);
    }

    #[test]
    fn useless_prefetches_waste_bandwidth() {
        // Stride-two-line reads: every prefetched line is skipped over, so
        // prefetching doubles memory traffic without helping.
        let base = CacheConfig::write_back("L1", 256, 32, 2);
        let run = |cfg: CacheConfig| {
            let mut h = Hierarchy::new(vec![cfg]);
            for k in 0..128u64 {
                h.access(Access::read(k * 64, 8)); // one access per 2 lines
            }
            h.report()
        };
        let plain = run(base.clone());
        let pf = run(base.with_prefetch(1));
        assert!(
            pf.mem_read_bytes >= 2 * plain.mem_read_bytes - 64,
            "prefetch {} vs plain {}",
            pf.mem_read_bytes,
            plain.mem_read_bytes
        );
        assert_eq!(pf.level_stats[0].misses(), plain.level_stats[0].misses());
    }

    #[test]
    fn prefetch_evictions_write_back_dirty_victims() {
        // A dirty line evicted by a prefetch must still reach memory.
        let cfg = CacheConfig::write_back("L1", 64, 32, 1).with_prefetch(1); // 2 sets
        let mut h = Hierarchy::new(vec![cfg]);
        h.access(Access::write(0, 8)); // line 0 dirty (set 0); prefetches line 1 (set 1)
        h.access(Access::read(128, 8)); // line 4 (set 0): evicts dirty line 0; prefetch line 5
        let r = h.report();
        assert!(r.mem_write_bytes >= 32, "{}", r.mem_write_bytes);
    }
}

#[cfg(test)]
mod tlb_tests {
    use super::*;
    use mbb_ir::trace::Access;

    fn with_tlb() -> Hierarchy {
        Hierarchy::new(vec![CacheConfig::write_back("L1", 4096, 32, 2)]).with_tlb(4, 256)
    }

    #[test]
    fn sequential_accesses_miss_once_per_page() {
        let mut h = with_tlb();
        for k in 0..128u64 {
            h.access(Access::read(k * 8, 8)); // 1 KB = 4 pages of 256 B
        }
        assert_eq!(h.report().tlb_misses, 4);
    }

    #[test]
    fn reuse_within_capacity_hits() {
        let mut h = with_tlb();
        for _ in 0..10 {
            for page in 0..4u64 {
                h.access(Access::read(page * 256, 8));
            }
        }
        assert_eq!(h.report().tlb_misses, 4, "4 pages fit the 4 entries");
    }

    #[test]
    fn thrash_beyond_capacity() {
        let mut h = with_tlb();
        // 5 pages round-robin through a 4-entry LRU: every access misses.
        for _ in 0..10 {
            for page in 0..5u64 {
                h.access(Access::read(page * 256, 8));
            }
        }
        assert_eq!(h.report().tlb_misses, 50);
    }

    #[test]
    fn no_tlb_reports_zero() {
        let mut h = Hierarchy::new(vec![CacheConfig::write_back("L1", 4096, 32, 2)]);
        h.access(Access::read(0, 8));
        assert_eq!(h.report().tlb_misses, 0);
    }

    #[test]
    fn reset_clears_tlb() {
        let mut h = with_tlb();
        h.access(Access::read(0, 8));
        h.reset();
        assert_eq!(h.report().tlb_misses, 0);
        h.access(Access::read(0, 8));
        assert_eq!(h.report().tlb_misses, 1, "cold again after reset");
    }
}
