//! Address arena and traced buffers for native kernels.
//!
//! Workloads that do not fit the affine IR (the FFT's bit-reversal, the
//! Sweep3D wavefront) are written as ordinary Rust, but still need to emit
//! the same byte-accurate access traces as interpreted programs.
//! [`TracedArray`] is a `Vec<f64>` with a base address from an [`Arena`];
//! every `get`/`set` performs the real computation *and* reports the access
//! to a sink.

use mbb_ir::trace::{Access, AccessKind, AccessSink, RunRef};

/// Assigns non-overlapping base addresses to buffers.
#[derive(Clone, Debug)]
pub struct Arena {
    next: u64,
    align: u64,
}

impl Default for Arena {
    fn default() -> Self {
        Arena { next: 0x10_0000, align: 64 }
    }
}

impl Arena {
    /// An arena with the default base and 64-byte alignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with explicit base and alignment (alignment must be a
    /// power of two).  Deliberately mis-aligned bases are how the conflict
    /// ablations provoke direct-mapped collisions.
    pub fn with_layout(base: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Arena { next: base, align }
    }

    /// Reserves space for `n` f64 cells and returns the base address.
    pub fn alloc_f64(&mut self, n: usize) -> u64 {
        let mask = self.align - 1;
        let base = (self.next + mask) & !mask;
        self.next = base + (n as u64) * 8;
        base
    }

    /// Skips `bytes` of address space (padding between buffers).
    pub fn pad(&mut self, bytes: u64) {
        self.next += bytes;
    }
}

/// A buffer of `f64` cells with a simulated base address.
#[derive(Clone, Debug)]
pub struct TracedArray {
    base: u64,
    data: Vec<f64>,
}

impl TracedArray {
    /// Allocates a zero-filled buffer.
    pub fn zeroed(arena: &mut Arena, n: usize) -> Self {
        TracedArray { base: arena.alloc_f64(n), data: vec![0.0; n] }
    }

    /// Allocates a buffer initialised by `f(index)`.
    pub fn from_fn(arena: &mut Arena, n: usize, f: impl Fn(usize) -> f64) -> Self {
        TracedArray { base: arena.alloc_f64(n), data: (0..n).map(f).collect() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Loads cell `i`, reporting the access.
    ///
    /// Generic over the sink so kernels driving a concrete sink (the
    /// batching [`mbb_ir::trace::Buffered`], a counter) get an inlined
    /// call; `&mut dyn AccessSink` still works as before.
    #[inline]
    pub fn get(&self, i: usize, sink: &mut (impl AccessSink + ?Sized)) -> f64 {
        sink.access(Access::read(self.base + (i as u64) * 8, 8));
        self.data[i]
    }

    /// Stores cell `i`, reporting the access.
    #[inline]
    pub fn set(&mut self, i: usize, value: f64, sink: &mut (impl AccessSink + ?Sized)) {
        sink.access(Access::write(self.base + (i as u64) * 8, 8));
        self.data[i] = value;
    }

    /// Direct untraced view (for checking results, not for kernels).
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Direct untraced mutable view, for kernels that emit their access
    /// stream separately as runs (see [`TracedArray::run_ref`]) and do the
    /// arithmetic on the raw cells.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A run descriptor over this buffer for [`AccessSink::access_runs`]:
    /// the walk starts at cell `i` and advances `step` cells per iteration.
    pub fn run_ref(&self, i: usize, step: i64, kind: AccessKind) -> RunRef {
        RunRef { base: self.base + (i as u64) * 8, stride: step * 8, size: 8, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::trace::{AccessKind, VecSink};

    #[test]
    fn arena_alignment_and_disjointness() {
        let mut a = Arena::new();
        let b1 = a.alloc_f64(3); // 24 bytes
        let b2 = a.alloc_f64(1);
        assert_eq!(b1 % 64, 0);
        assert_eq!(b2 % 64, 0);
        assert!(b2 >= b1 + 24);
        a.pad(100);
        let b3 = a.alloc_f64(1);
        assert!(b3 >= b2 + 8 + 100);
    }

    #[test]
    fn traced_accesses_report_addresses() {
        let mut arena = Arena::new();
        let mut t = TracedArray::zeroed(&mut arena, 4);
        let mut sink = VecSink::new();
        t.set(2, 7.0, &mut sink);
        assert_eq!(t.get(2, &mut sink), 7.0);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].addr, t.base() + 16);
        assert_eq!(sink.events[0].kind, AccessKind::Write);
        assert_eq!(sink.events[1].kind, AccessKind::Read);
    }

    #[test]
    fn from_fn_initialises() {
        let mut arena = Arena::new();
        let t = TracedArray::from_fn(&mut arena, 3, |i| i as f64 * 2.0);
        assert_eq!(t.values(), &[0.0, 2.0, 4.0]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
