//! Property tests for the run-compiled access path.
//!
//! Two contracts under test, both "byte-identical or bust":
//!
//! 1. **Sink level** — for *any* group of strided streams and *any*
//!    hierarchy geometry, [`AccessSink::access_runs`] (the symbolic
//!    per-cache-line walk, with its scalar-replay fallback for windows it
//!    cannot prove) must report identically to the per-element expansion
//!    `refs[j].at(k)` fed through [`AccessSink::access`] and through
//!    [`AccessSink::access_block`].  The strategies deliberately include
//!    zero, negative, non-unit and page-crossing strides, plus bases that
//!    wrap `u64` under negative strides, so the eligibility screen and the
//!    fallback path are exercised as often as the fast path.
//!
//! 2. **Engine level** — a random affine loop nest (depth ≤ 4, mixed
//!    positive/negative/zero subscript coefficients, non-power-of-two
//!    extents, forward and reversed loops) interpreted under the `runs`
//!    engine must produce the same [`TrafficReport`], execution stats and
//!    observation as the `scalar` engine, on every hierarchy in the zoo.
//!
//! The zoo is the same six recipes as `proptest_batched.rs`: the two paper
//! machines plus deliberately awkward geometries (non-power-of-two set
//! count, write-through L1, next-line prefetch, shuffled-index L2 with a
//! tiny TLB).

use mbb_ir::builder::{assign, c, ld, lit, ProgramBuilder, RefBuild, ScalarRef};
use mbb_ir::expr::Affine;
use mbb_ir::interp::Interpreter;
use mbb_ir::program::{Loop, Program, VarId};
use mbb_ir::runs::{install, Engine};
use mbb_ir::trace::{Access, AccessKind, AccessSink, RunRef};
use mbb_memsim::cache::{CacheConfig, WritePolicy};
use mbb_memsim::hierarchy::Hierarchy;
use mbb_memsim::machine::MachineModel;
use proptest::prelude::*;

/// The hierarchy zoo: paper machines plus deliberately awkward geometries.
fn arb_hierarchy() -> impl Strategy<Value = HierarchyRecipe> {
    prop_oneof![
        Just(HierarchyRecipe::Origin),
        Just(HierarchyRecipe::Exemplar),
        Just(HierarchyRecipe::OddSets),
        Just(HierarchyRecipe::WriteThrough),
        Just(HierarchyRecipe::Prefetch),
        Just(HierarchyRecipe::ShuffledTlb),
    ]
}

#[derive(Clone, Copy, Debug)]
enum HierarchyRecipe {
    Origin,
    Exemplar,
    OddSets,
    WriteThrough,
    Prefetch,
    ShuffledTlb,
}

impl HierarchyRecipe {
    fn build(self) -> Hierarchy {
        match self {
            HierarchyRecipe::Origin => MachineModel::origin2000().hierarchy(),
            HierarchyRecipe::Exemplar => MachineModel::exemplar().hierarchy(),
            // 3 sets: exercises the modulo (non-mask) index fallback.
            HierarchyRecipe::OddSets => {
                Hierarchy::new(vec![CacheConfig::write_back("odd", 96, 32, 1)])
            }
            HierarchyRecipe::WriteThrough => Hierarchy::new(vec![
                CacheConfig {
                    name: "wt".into(),
                    size: 256,
                    line: 32,
                    assoc: 2,
                    policy: WritePolicy::WriteThrough,
                    prefetch_next: 0,
                    page_shuffle: None,
                },
                CacheConfig::write_back("L2", 1024, 64, 2),
            ]),
            HierarchyRecipe::Prefetch => Hierarchy::new(vec![
                CacheConfig::write_back("L1", 256, 32, 2).with_prefetch(1),
                CacheConfig::write_back("L2", 2048, 64, 2),
            ]),
            HierarchyRecipe::ShuffledTlb => Hierarchy::new(vec![
                CacheConfig::write_back("L1", 512, 32, 2),
                CacheConfig::write_back("L2", 4096, 128, 2).with_page_shuffle(1024),
            ])
            .with_tlb(4, 1024),
        }
    }
}

/// A recipe for one strided stream within a run group.
#[derive(Clone, Debug)]
struct RunRecipe {
    base: u64,
    stride: i64,
    size: u32,
    write: bool,
}

fn arb_run() -> impl Strategy<Value = RunRecipe> {
    // Strides cover forward/backward unit lines, sub-line steps that keep
    // several iterations on one line, the degenerate loop-invariant zero
    // stride, and page-sized jumps that change the TLB page every
    // iteration.  Negative strides from small bases wrap `u64`, which the
    // eligibility screen must reject into the (equally exact) fallback.
    (
        0u64..16384,
        prop_oneof![
            Just(-4096i64),
            Just(-40),
            Just(-8),
            Just(-3),
            Just(0),
            Just(1),
            Just(8),
            Just(24),
            Just(32),
            Just(4096),
        ],
        prop_oneof![Just(1u32), Just(8u32), Just(32u32)],
        any::<bool>(),
    )
        .prop_map(|(base, stride, size, write)| RunRecipe { base, stride, size, write })
}

fn to_run_ref(r: &RunRecipe) -> RunRef {
    RunRef {
        base: r.base,
        stride: r.stride,
        size: r.size,
        kind: if r.write { AccessKind::Write } else { AccessKind::Read },
    }
}

/// One random loop of a nest: a trip count (non-power-of-two values
/// included) and a direction.
#[derive(Clone, Debug)]
struct LoopRecipe {
    extent: i64,
    reversed: bool,
}

/// A random affine nest: per-loop extents/directions plus one subscript
/// coefficient vector per array reference.
#[derive(Clone, Debug)]
struct NestRecipe {
    loops: Vec<LoopRecipe>,
    dst_coeffs: Vec<i64>,
    src_coeffs: Vec<i64>,
}

fn arb_nest() -> impl Strategy<Value = NestRecipe> {
    let depth = 1usize..=4;
    depth.prop_flat_map(|d| {
        let loops = proptest::collection::vec(
            (1i64..=7, any::<bool>())
                .prop_map(|(extent, reversed)| LoopRecipe { extent, reversed }),
            d..=d,
        );
        let coeffs = proptest::collection::vec(-3i64..=3, d..=d);
        (loops, coeffs.clone(), coeffs).prop_map(|(loops, dst_coeffs, src_coeffs)| NestRecipe {
            loops,
            dst_coeffs,
            src_coeffs,
        })
    })
}

/// Builds the subscript `Σ coeffᵢ·varᵢ + offset` with the offset chosen so
/// the minimum value over the iteration space is exactly zero, and returns
/// it with the array extent needed to hold the maximum.
fn subscript(coeffs: &[i64], loops: &[LoopRecipe], vars: &[VarId]) -> (Affine, usize) {
    let mut offset = 0i64;
    let mut max = 0i64;
    for (k, l) in loops.iter().enumerate() {
        let reach = coeffs[k].abs() * (l.extent - 1);
        if coeffs[k] < 0 {
            offset += reach;
        }
        max += reach;
    }
    let sub = Affine::new(offset, vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)));
    (sub, (max + 1) as usize)
}

fn build_program(nest: &NestRecipe) -> Program {
    let mut b = ProgramBuilder::new("prop_nest");
    let vars: Vec<VarId> = (0..nest.loops.len()).map(|k| b.var(format!("i{k}"))).collect();
    let (dst_sub, dst_len) = subscript(&nest.dst_coeffs, &nest.loops, &vars);
    let (src_sub, src_len) = subscript(&nest.src_coeffs, &nest.loops, &vars);
    let dst = b.array_out("dst", &[dst_len]);
    let src = b.array_in("src", &[src_len]);
    let acc = b.scalar_printed("acc", 0.0);
    let loops: Vec<Loop> = vars
        .iter()
        .zip(&nest.loops)
        .map(|(&v, l)| {
            if l.reversed {
                Loop { var: v, lo: c(l.extent - 1), hi: c(0), step: -1 }
            } else {
                Loop::new(v, 0, l.extent - 1)
            }
        })
        .collect();
    b.nest_general(
        "body",
        loops,
        vec![
            assign(
                dst.at([dst_sub.clone()]),
                ld(dst.at([dst_sub.clone()])) + ld(src.at([src_sub.clone()])) + lit(0.25),
            ),
            assign(acc.r(), ld(acc.r()) + ld(src.at([src_sub]))),
        ],
    );
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The symbolic group walk reports identically to the element-wise
    /// interleaved expansion it is defined by, and to the same expansion
    /// batched through `access_block` — with and without a final flush.
    #[test]
    fn run_group_matches_elementwise_expansion(
        group in proptest::collection::vec(arb_run(), 1..5),
        count in 1u64..200,
        machine in arb_hierarchy(),
        flush in any::<bool>(),
    ) {
        let refs: Vec<RunRef> = group.iter().map(to_run_ref).collect();

        let mut fast = machine.build();
        fast.access_runs(&refs, count);

        let mut scalar = machine.build();
        for k in 0..count {
            for r in &refs {
                scalar.access(r.at(k));
            }
        }

        let expanded: Vec<Access> =
            (0..count).flat_map(|k| refs.iter().map(move |r| r.at(k))).collect();
        let mut block = machine.build();
        block.access_block(&expanded);

        if flush {
            fast.flush();
            scalar.flush();
            block.flush();
        }

        prop_assert_eq!(fast.report(), scalar.report());
        prop_assert_eq!(fast.report(), block.report());
    }

    /// Splitting one logical stream across consecutive `access_runs` calls
    /// (warm caches, partial windows at the seams) changes nothing.
    #[test]
    fn split_run_feed_matches_single_feed(
        group in proptest::collection::vec(arb_run(), 1..4),
        count in 2u64..160,
        split in 1u64..159,
        machine in arb_hierarchy(),
    ) {
        let split = split % count;
        let refs: Vec<RunRef> = group.iter().map(to_run_ref).collect();

        let mut whole = machine.build();
        whole.access_runs(&refs, count);

        // Resume each stream at iteration `split` by rebasing.
        let tail: Vec<RunRef> = refs
            .iter()
            .map(|r| RunRef { base: r.at(split).addr, ..*r })
            .collect();
        let mut parts = machine.build();
        if split > 0 {
            parts.access_runs(&refs, split);
        }
        parts.access_runs(&tail, count - split);

        prop_assert_eq!(whole.report(), parts.report());
    }

    /// A random affine nest interpreted under the runs engine is
    /// indistinguishable — traffic report, execution stats, observation —
    /// from the scalar engine, on every hierarchy in the zoo.
    #[test]
    fn nest_under_runs_engine_matches_scalar_engine(
        nest in arb_nest(),
        machine in arb_hierarchy(),
    ) {
        let prog = build_program(&nest);

        let run_with = |engine| {
            let _g = install(engine);
            let mut h = machine.build();
            let r = Interpreter::new(&prog).run(&mut h).expect("valid nest");
            h.flush();
            (h.report(), r.stats, r.observation)
        };

        let (rep_s, stats_s, obs_s) = run_with(Engine::Scalar);
        let (rep_r, stats_r, obs_r) = run_with(Engine::Runs);

        prop_assert_eq!(rep_s, rep_r);
        prop_assert_eq!(stats_s, stats_r);
        prop_assert_eq!(obs_s.diff(&obs_r, 0.0), None);
    }
}
