//! Property tests for the batched access path.
//!
//! The contract under test: for *any* access stream and *any* hierarchy
//! geometry, the three ways of feeding the simulator —
//!
//! 1. one [`AccessSink::access`] call per event,
//! 2. a single [`AccessSink::access_block`] over the whole stream,
//! 3. the stream pushed through a [`Buffered`] adapter of arbitrary
//!    capacity (including capacities that never divide the stream length),
//!
//! — produce byte-identical [`TrafficReport`]s.  This is what lets the
//! interpreter batch its emissions for speed without any risk to the
//! numbers the paper tables are built from.
//!
//! A second property drives the same equivalence through the text
//! tracefile: a stream serialised by [`TraceWriter`] and replayed (the
//! replay path is internally batched) must report identically to feeding
//! the parsed events one at a time.

use mbb_ir::trace::{Access, AccessKind, AccessSink, Buffered};
use mbb_memsim::cache::{CacheConfig, WritePolicy};
use mbb_memsim::hierarchy::Hierarchy;
use mbb_memsim::machine::MachineModel;
use mbb_memsim::tracefile::{parse_line, replay, TraceWriter};
use proptest::prelude::*;

/// A recipe for one access: address seed, size class, read/write.
#[derive(Clone, Debug)]
struct AccessRecipe {
    addr: u64,
    size: u32,
    write: bool,
}

fn arb_access() -> impl Strategy<Value = AccessRecipe> {
    // Addresses cover a few pages' worth of lines with occasional
    // unaligned offsets; sizes include zero, sub-line, exactly-one-line
    // and straddling multi-line accesses.
    (
        0u64..16384,
        prop_oneof![Just(0u32), Just(1u32), Just(8u32), Just(32u32), Just(100u32)],
        any::<bool>(),
    )
        .prop_map(|(addr, size, write)| AccessRecipe { addr, size, write })
}

fn to_access(r: &AccessRecipe) -> Access {
    Access {
        addr: r.addr,
        size: r.size,
        kind: if r.write { AccessKind::Write } else { AccessKind::Read },
    }
}

/// The hierarchy zoo: paper machines plus deliberately awkward geometries.
fn arb_hierarchy() -> impl Strategy<Value = HierarchyRecipe> {
    prop_oneof![
        Just(HierarchyRecipe::Origin),
        Just(HierarchyRecipe::Exemplar),
        Just(HierarchyRecipe::OddSets),
        Just(HierarchyRecipe::WriteThrough),
        Just(HierarchyRecipe::Prefetch),
        Just(HierarchyRecipe::ShuffledTlb),
    ]
}

#[derive(Clone, Copy, Debug)]
enum HierarchyRecipe {
    Origin,
    Exemplar,
    OddSets,
    WriteThrough,
    Prefetch,
    ShuffledTlb,
}

impl HierarchyRecipe {
    fn build(self) -> Hierarchy {
        match self {
            HierarchyRecipe::Origin => MachineModel::origin2000().hierarchy(),
            HierarchyRecipe::Exemplar => MachineModel::exemplar().hierarchy(),
            // 3 sets: exercises the modulo (non-mask) index fallback.
            HierarchyRecipe::OddSets => {
                Hierarchy::new(vec![CacheConfig::write_back("odd", 96, 32, 1)])
            }
            HierarchyRecipe::WriteThrough => Hierarchy::new(vec![
                CacheConfig {
                    name: "wt".into(),
                    size: 256,
                    line: 32,
                    assoc: 2,
                    policy: WritePolicy::WriteThrough,
                    prefetch_next: 0,
                    page_shuffle: None,
                },
                CacheConfig::write_back("L2", 1024, 64, 2),
            ]),
            HierarchyRecipe::Prefetch => Hierarchy::new(vec![
                CacheConfig::write_back("L1", 256, 32, 2).with_prefetch(1),
                CacheConfig::write_back("L2", 2048, 64, 2),
            ]),
            HierarchyRecipe::ShuffledTlb => Hierarchy::new(vec![
                CacheConfig::write_back("L1", 512, 32, 2),
                CacheConfig::write_back("L2", 4096, 128, 2).with_page_shuffle(1024),
            ])
            .with_tlb(4, 1024),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar, whole-block and arbitrarily-chunked feeds are identical.
    #[test]
    fn batched_feed_matches_scalar_feed(
        recipes in proptest::collection::vec(arb_access(), 1..200),
        machine in arb_hierarchy(),
        cap in 1usize..40,
    ) {
        let trace: Vec<Access> = recipes.iter().map(to_access).collect();

        let mut scalar = machine.build();
        for &a in &trace {
            scalar.access(a);
        }

        let mut block = machine.build();
        block.access_block(&trace);

        let mut chunked = machine.build();
        {
            let mut b = Buffered::with_capacity(&mut chunked, cap);
            for &a in &trace {
                b.access(a);
            }
            // Dropping `b` flushes the tail.
        }

        prop_assert_eq!(scalar.report(), block.report());
        prop_assert_eq!(scalar.report(), chunked.report());
    }

    /// Flushing dirty lines afterwards preserves the equivalence too (the
    /// drain path reconstructs victim addresses from stored tags).
    #[test]
    fn batched_feed_matches_scalar_feed_after_flush(
        recipes in proptest::collection::vec(arb_access(), 1..120),
        machine in arb_hierarchy(),
    ) {
        let trace: Vec<Access> = recipes.iter().map(to_access).collect();

        let mut scalar = machine.build();
        for &a in &trace {
            scalar.access(a);
        }
        scalar.flush();

        let mut block = machine.build();
        block.access_block(&trace);
        block.flush();

        prop_assert_eq!(scalar.report(), block.report());
    }

    /// Tracefile round-trip: serialise, replay through the (batched)
    /// reader, compare against a per-event feed of the parsed lines.
    #[test]
    fn tracefile_roundtrip_through_batched_replay(
        recipes in proptest::collection::vec(arb_access(), 1..120),
        machine in arb_hierarchy(),
    ) {
        // The text format has no zero-size events (size defaults to 8 on
        // read-back), so keep sizes positive here.
        let trace: Vec<Access> = recipes
            .iter()
            .map(to_access)
            .map(|mut a| { a.size = a.size.max(1); a })
            .collect();

        let mut text = Vec::new();
        {
            let mut w = TraceWriter::new(&mut text);
            for &a in &trace {
                w.access(a);
            }
            prop_assert_eq!(w.finish().unwrap(), trace.len() as u64);
        }

        let mut replayed = machine.build();
        let n = replay(std::io::BufReader::new(&text[..]), &mut replayed).unwrap();
        prop_assert_eq!(n, trace.len() as u64);

        let mut scalar = machine.build();
        for line in std::str::from_utf8(&text).unwrap().lines() {
            scalar.access(parse_line(line).unwrap());
        }

        prop_assert_eq!(replayed.report(), scalar.report());
    }
}
