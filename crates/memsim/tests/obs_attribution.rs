//! Span-correctness: the obs odometer mirrors the hierarchy's own
//! `TrafficReport` exactly — same bytes per channel, same miss and
//! writeback counts, same memory read/write split, same TLB misses.

use mbb_ir::trace::{Access, AccessSink};
use mbb_memsim::cache::{CacheConfig, WritePolicy};
use mbb_memsim::hierarchy::Hierarchy;
use mbb_obs::{collect, Mode};

fn two_level() -> Hierarchy {
    Hierarchy::new(vec![
        CacheConfig::write_back("L1", 256, 32, 2),
        CacheConfig::write_back("L2", 1024, 64, 2),
    ])
}

fn mixed_trace() -> Vec<Access> {
    let mut trace = Vec::new();
    for k in 0..4096u64 {
        let addr = (k.wrapping_mul(0x9E37_79B9).wrapping_add(7)) % 8192;
        trace.push(if k % 3 == 0 { Access::write(addr, 8) } else { Access::read(addr, 8) });
    }
    trace.push(Access::read(28, 8)); // straddler: splits across two lines
    trace
}

#[track_caller]
fn assert_mirrors(delta: &mbb_obs::Counters, report: &mbb_memsim::hierarchy::TrafficReport) {
    for (k, &bytes) in report.channel_bytes.iter().enumerate() {
        assert_eq!(delta.channel_bytes[k], bytes, "channel {k} bytes");
    }
    for k in report.channel_bytes.len()..mbb_obs::MAX_CHANNELS {
        assert_eq!(delta.channel_bytes[k], 0, "channel {k} should be untouched");
    }
    for (k, s) in report.level_stats.iter().enumerate() {
        assert_eq!(delta.misses[k], s.misses(), "level {k} misses");
        assert_eq!(delta.writebacks[k], s.writebacks, "level {k} writebacks");
    }
    assert_eq!(delta.mem_read_bytes, report.mem_read_bytes);
    assert_eq!(delta.mem_write_bytes, report.mem_write_bytes);
    assert_eq!(delta.tlb_misses, report.tlb_misses);
}

#[test]
fn span_delta_equals_traffic_report() {
    let trace = mixed_trace();
    let c = collect(Mode::Full);
    let mut h = two_level();
    {
        let _s = mbb_obs::span!("sim");
        h.access_block(&trace);
        h.flush();
    }
    let p = c.finish();
    let report = h.report();
    let sim = p.find("sim").unwrap();
    assert_mirrors(&p.spans[sim].delta, &report);
    assert_eq!(p.spans[sim].delta.accesses, trace.len() as u64);
}

#[test]
fn sibling_spans_partition_the_report() {
    let trace = mixed_trace();
    let mid = trace.len() / 2;
    let c = collect(Mode::Full);
    let mut h = two_level();
    {
        let _outer = mbb_obs::span!("run");
        {
            let _a = mbb_obs::span!("first-half");
            h.access_block(&trace[..mid]);
        }
        {
            let _b = mbb_obs::span!("second-half");
            h.access_block(&trace[mid..]);
        }
        {
            let _f = mbb_obs::span!("flush");
            h.flush();
        }
    }
    let p = c.finish();
    let outer = p.find("run").unwrap();
    // Children + (empty) gap == parent, and parent == the report.
    let mut kids = mbb_obs::Counters::default();
    for k in p.children(outer) {
        kids.add(&p.spans[k].delta);
    }
    assert_eq!(kids, p.spans[outer].delta, "children partition the parent exactly");
    assert_mirrors(&p.spans[outer].delta, &h.report());
}

#[test]
fn write_through_and_prefetch_and_tlb_are_attributed() {
    let c = collect(Mode::Full);
    let mut wt = CacheConfig::write_back("L1", 256, 32, 2).with_prefetch(1);
    wt.policy = WritePolicy::WriteThrough;
    let mut h =
        Hierarchy::new(vec![wt, CacheConfig::write_back("L2", 1024, 64, 2)]).with_tlb(4, 256);
    {
        let _s = mbb_obs::span!("sim");
        for k in 0..1024u64 {
            let addr = (k.wrapping_mul(0x85EB_CA6B).wrapping_add(3)) % 16384;
            if k % 2 == 0 {
                h.access(Access::write(addr, 8));
            } else {
                h.access(Access::read(addr, 8));
            }
        }
        h.flush();
    }
    let p = c.finish();
    let report = h.report();
    assert!(report.tlb_misses > 0, "trace should stress the TLB");
    assert!(report.level_stats[0].prefetches > 0, "trace should trigger prefetches");
    assert_mirrors(&p.spans[p.find("sim").unwrap()].delta, &report);
}

#[test]
fn attribution_is_identical_across_worker_threads() {
    // The same trace simulated on N threads must attribute byte-identical
    // deltas on each: the odometer is thread-local and the simulation is
    // deterministic, so worker count (--jobs) cannot change attribution.
    let trace = std::sync::Arc::new(mixed_trace());
    let deltas: Vec<mbb_obs::Counters> = (0..4)
        .map(|_| {
            let trace = trace.clone();
            std::thread::spawn(move || {
                let c = collect(Mode::Full);
                let mut h = two_level();
                {
                    let _s = mbb_obs::span!("sim");
                    h.access_block(&trace);
                    h.flush();
                }
                let p = c.finish();
                p.spans[p.find("sim").unwrap()].delta
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for d in &deltas[1..] {
        assert_eq!(*d, deltas[0], "attribution must not depend on the thread");
    }
}

#[test]
fn without_a_collector_the_simulation_is_unobserved() {
    let before = mbb_obs::snapshot();
    let mut h = two_level();
    h.access_block(&mixed_trace());
    h.flush();
    assert_eq!(mbb_obs::snapshot(), before, "no Full collector → no odometer movement");
}
