//! Store elimination (§3.3, Figures 7–8).
//!
//! After fusion, an array's last use often sits in the same iteration as
//! its (re)definition.  If the array is not live-out and no later nest
//! reads it, the writeback is pure bandwidth waste: the transformation
//! replaces the store with a register-resident temporary and forwards the
//! value to the same-iteration uses, turning
//!
//! ```text
//! res[i] = res[i] + data[i]        t = res[i] + data[i]
//! sum    = sum + res[i]      →     sum = sum + t
//! ```
//!
//! — exactly the paper's Figure 7(c).  The array remains readable (its
//! *original* values are still loaded), but it is never written, so its
//! dirty-line writebacks — half the memory traffic of an update loop on a
//! write-back cache — disappear.
//!
//! Legality (checked, conservatively, before rewriting):
//!
//! * the array is not observable output and is written in exactly one nest;
//! * no later nest reads it;
//! * within the nest, no read observes a value written in an *earlier
//!   iteration* (that would need the store or a contraction buffer):
//!   comparing `var + c` subscript offsets level-by-level, every
//!   (write, read) pair must satisfy "write iteration ≥ read iteration",
//!   with exact-match pairs resolved by textual order and forwarded
//!   through the temporary;
//! * every write is a top-level statement of the body (a write under a
//!   guard executes conditionally, and forwarding across its guard
//!   boundary would be wrong).

use std::collections::BTreeMap;

use mbb_ir::expr::{Expr, Ref, Sub};
use mbb_ir::liveness::array_liveness;
use mbb_ir::program::{ArrayId, Program, ScalarDecl, ScalarId, Stmt, VarId};

/// Why an array's stores cannot be eliminated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreBlocker {
    /// The array's final contents are observable.
    LiveOut,
    /// The array is written in zero or several nests.
    NotSingleWriterNest,
    /// A later nest reads the array: the values must reach memory.
    ReadLater,
    /// A read in a later iteration observes a written value; the store (or
    /// a contraction buffer) is needed.
    CrossIterationUse,
    /// A subscript shape the analysis does not support.
    UnsupportedSubscript,
    /// A write occurs under a conditional; forwarding across the guard is
    /// not supported.
    GuardedWrite,
}

/// One eliminated array, for reporting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreElimination {
    /// The array whose writebacks were removed.
    pub array: String,
    /// The nest the stores were removed from.
    pub nest: usize,
    /// Number of store statements rewritten.
    pub stores_removed: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    Level(usize, i64),
    Const(i64),
}

fn shapes_of(subs: &[Sub], levels: &BTreeMap<VarId, usize>) -> Result<Vec<Shape>, StoreBlocker> {
    subs.iter()
        .map(|s| {
            let e = s.as_plain().ok_or(StoreBlocker::UnsupportedSubscript)?;
            if let Some(k) = e.as_const() {
                Ok(Shape::Const(k))
            } else if let Some((v, c)) = e.as_var_plus_const() {
                levels
                    .get(&v)
                    .map(|&l| Shape::Level(l, c))
                    .ok_or(StoreBlocker::UnsupportedSubscript)
            } else {
                Err(StoreBlocker::UnsupportedSubscript)
            }
        })
        .collect()
}

/// `Some(true)` when the write's iteration is lexicographically *before*
/// the read's for some element (the illegal case), `Some(false)` when never,
/// `None` when the shapes are incomparable.
fn write_before_read(w: &[Shape], r: &[Shape]) -> Option<bool> {
    if w.len() != r.len() {
        return None;
    }
    // Order dimension pairs by loop level, outermost first; element x is
    // written at iteration x−cw and read at x−cr per level, so the write
    // precedes the read iff cw > cr at the outermost differing level.
    let mut pairs: Vec<(usize, i64, i64)> = Vec::with_capacity(w.len());
    for (sw, sr) in w.iter().zip(r) {
        match (sw, sr) {
            (Shape::Level(lw, cw), Shape::Level(lr, cr)) => {
                if lw != lr {
                    return None;
                }
                pairs.push((*lw, *cw, *cr));
            }
            (Shape::Const(kw), Shape::Const(kr)) => {
                if kw != kr {
                    // Disjoint planes: no element in common, never before.
                    return Some(false);
                }
            }
            _ => return None,
        }
    }
    pairs.sort_by_key(|&(l, _, _)| l);
    for &(_, cw, cr) in &pairs {
        if cw > cr {
            return Some(true);
        }
        if cw < cr {
            return Some(false);
        }
    }
    // Identical iteration: textual order governs; not "before".
    Some(false)
}

/// Checks whether `arr`'s stores can be eliminated; returns the writing
/// nest index.
pub fn can_eliminate(prog: &Program, arr: ArrayId) -> Result<usize, StoreBlocker> {
    if prog.array(arr).live_out {
        return Err(StoreBlocker::LiveOut);
    }
    let live = array_liveness(prog);
    let info = &live[arr.0 as usize];
    let [nest] = info.written_in.as_slice() else {
        return Err(StoreBlocker::NotSingleWriterNest);
    };
    let nest = *nest;
    if info.read_in.iter().any(|&r| r > nest) {
        return Err(StoreBlocker::ReadLater);
    }

    let n = &prog.nests[nest];
    let levels: BTreeMap<VarId, usize> =
        n.loops.iter().enumerate().map(|(l, lp)| (lp.var, l)).collect();

    // Writes must be top-level; collect all shapes.
    let mut writes: Vec<Vec<Shape>> = Vec::new();
    for st in &n.body {
        match st {
            Stmt::Assign { lhs: Ref::Element(a, subs), .. } if *a == arr => {
                writes.push(shapes_of(subs, &levels)?);
            }
            Stmt::If { .. } => {
                // Any write to arr inside? Conservative scan.
                let mut guarded = false;
                st.for_each_ref(&mut |r, is_store| {
                    if is_store && r.array() == Some(arr) {
                        guarded = true;
                    }
                });
                if guarded {
                    return Err(StoreBlocker::GuardedWrite);
                }
            }
            _ => {}
        }
    }
    if writes.is_empty() {
        return Err(StoreBlocker::NotSingleWriterNest);
    }

    let mut reads: Vec<Vec<Shape>> = Vec::new();
    let mut bad = None;
    n.for_each_ref(&mut |r, is_store| {
        if !is_store {
            if let Ref::Element(a, subs) = r {
                if *a == arr {
                    match shapes_of(subs, &levels) {
                        Ok(s) => reads.push(s),
                        Err(e) => bad = Some(e),
                    }
                }
            }
        }
    });
    if let Some(e) = bad {
        return Err(e);
    }
    for w in &writes {
        for r in &reads {
            match write_before_read(w, r) {
                Some(false) => {}
                Some(true) => return Err(StoreBlocker::CrossIterationUse),
                None => return Err(StoreBlocker::UnsupportedSubscript),
            }
        }
    }
    Ok(nest)
}

/// Eliminates the stores of `arr`: each write becomes a scalar temporary,
/// and every textually later load with identical subscripts in the same
/// body is forwarded to the temporary.
pub fn eliminate_stores_for(
    prog: &Program,
    arr: ArrayId,
) -> Result<(Program, StoreElimination), StoreBlocker> {
    let nest = can_eliminate(prog, arr)?;
    let mut out = prog.clone();
    let mut forwarded: Vec<(Vec<Sub>, ScalarId)> = Vec::new();
    let mut removed = 0usize;
    let mut body = Vec::with_capacity(out.nests[nest].body.len());

    // Forward loads through the most recent matching temporary.
    fn forward_expr(e: &Expr, arr: ArrayId, map: &[(Vec<Sub>, ScalarId)]) -> Expr {
        e.map_loads(&mut |r| match r {
            Ref::Element(a, subs) if *a == arr => map
                .iter()
                .rev()
                .find(|(fs, _)| fs == subs)
                .map(|&(_, t)| Expr::Load(Ref::Scalar(t))),
            _ => None,
        })
    }

    fn forward_stmt(st: &Stmt, arr: ArrayId, map: &[(Vec<Sub>, ScalarId)]) -> Stmt {
        match st {
            Stmt::Assign { lhs, rhs } => {
                Stmt::Assign { lhs: lhs.clone(), rhs: forward_expr(rhs, arr, map) }
            }
            Stmt::If { cond, then_, else_ } => Stmt::If {
                cond: cond.clone(),
                then_: then_.iter().map(|s| forward_stmt(s, arr, map)).collect(),
                else_: else_.iter().map(|s| forward_stmt(s, arr, map)).collect(),
            },
        }
    }

    for st in &prog.nests[nest].body {
        match st {
            Stmt::Assign { lhs: Ref::Element(a, subs), rhs } if *a == arr => {
                let mut name = format!("__se_t{}", out.scalars.len());
                while out.scalars.iter().any(|s| s.name == name) {
                    name.push('_');
                }
                let t = out.add_scalar(ScalarDecl { name, init: 0.0, printed: false });
                // The rhs itself may read earlier-forwarded values.
                let rhs = forward_expr(rhs, arr, &forwarded);
                body.push(Stmt::Assign { lhs: Ref::Scalar(t), rhs });
                forwarded.push((subs.clone(), t));
                removed += 1;
            }
            other => body.push(forward_stmt(other, arr, &forwarded)),
        }
    }
    out.nests[nest].body = body;
    let report =
        StoreElimination { array: prog.array(arr).name.clone(), nest, stores_removed: removed };
    Ok((out, report))
}

/// Eliminates stores for every array that qualifies; returns the
/// transformed program and one report per eliminated array.
pub fn eliminate_all_stores(prog: &Program) -> (Program, Vec<StoreElimination>) {
    let mut cur = prog.clone();
    let mut reports = Vec::new();
    loop {
        let access_changed = (0..cur.arrays.len()).find_map(|k| {
            let arr = ArrayId(k as u32);
            eliminate_stores_for(&cur, arr).ok()
        });
        match access_changed {
            Some((next, rep)) => {
                reports.push(rep);
                cur = next;
            }
            None => break,
        }
    }
    (cur, reports)
}

impl std::fmt::Display for StoreBlocker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreBlocker::LiveOut => write!(f, "array is observable program output"),
            StoreBlocker::NotSingleWriterNest => {
                write!(f, "array is written in zero or several nests")
            }
            StoreBlocker::ReadLater => {
                write!(f, "a later nest reads the array: values must reach memory")
            }
            StoreBlocker::CrossIterationUse => {
                write!(f, "a later iteration reads a stored value (contract instead)")
            }
            StoreBlocker::UnsupportedSubscript => {
                write!(f, "a subscript shape the analysis does not support")
            }
            StoreBlocker::GuardedWrite => {
                write!(f, "a write sits under a conditional; forwarding across it is unsupported")
            }
        }
    }
}

impl std::error::Error for StoreBlocker {}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;
    use mbb_ir::{interp, validate};

    /// Figure 7(b): the fused update+reduce loop.
    fn fig7_fused(n: usize) -> (Program, ArrayId) {
        let mut b = ProgramBuilder::new("fig7b");
        let res = b.array_in("res", &[n]);
        let data = b.array_in("data", &[n]);
        let sum = b.scalar_printed("sum", 0.0);
        let i = b.var("i");
        b.nest(
            "fused",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)]))),
                accumulate(sum, ld(res.at([v(i)]))),
            ],
        );
        (b.finish(), res)
    }

    #[test]
    fn figure7_store_elimination() {
        let (p, res) = fig7_fused(64);
        let before = interp::run(&p).unwrap();
        let (q, rep) = eliminate_stores_for(&p, res).unwrap();
        validate::validate(&q).unwrap();
        assert_eq!(rep.stores_removed, 1);
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 1e-12));
        // All array stores gone; loads unchanged (res still read once).
        assert_eq!(after.stats.stores, 0);
        assert_eq!(after.stats.loads, before.stats.loads - 64, "forwarded load removed");
    }

    #[test]
    fn unfused_fig7_blocks_on_later_read() {
        // Without fusion, res is read by the *next* nest: not eliminable —
        // the paper's point that fusion enables store elimination.
        let n = 16usize;
        let mut b = ProgramBuilder::new("fig7a");
        let res = b.array_in("res", &[n]);
        let data = b.array_in("data", &[n]);
        let sum = b.scalar_printed("sum", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        b.nest(
            "update",
            &[(i, 0, n as i64 - 1)],
            vec![assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)])))],
        );
        b.nest("reduce", &[(j, 0, n as i64 - 1)], vec![accumulate(sum, ld(res.at([v(j)])))]);
        let p = b.finish();
        assert_eq!(can_eliminate(&p, res), Err(StoreBlocker::ReadLater));
    }

    #[test]
    fn live_out_blocks() {
        let n = 8usize;
        let mut b = ProgramBuilder::new("lo");
        let a = b.array_out("a", &[n]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, n as i64 - 1)], vec![assign(a.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        assert_eq!(can_eliminate(&p, a), Err(StoreBlocker::LiveOut));
    }

    #[test]
    fn cross_iteration_use_blocks() {
        // t[i] written, t[i-1] read next iteration: the value must persist.
        let n = 8usize;
        let mut b = ProgramBuilder::new("ci");
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 1, n as i64 - 1)],
            vec![assign(t.at([v(i)]), lit(1.0)), accumulate(s, ld(t.at([v(i) - 1])))],
        );
        let p = b.finish();
        assert_eq!(can_eliminate(&p, t), Err(StoreBlocker::CrossIterationUse));
    }

    #[test]
    fn guarded_write_blocks() {
        let n = 8usize;
        let mut b = ProgramBuilder::new("gw");
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                if_then(cmp(v(i), mbb_ir::CmpOp::Ge, c(4)), vec![assign(t.at([v(i)]), lit(1.0))]),
                accumulate(s, ld(t.at([v(i)]))),
            ],
        );
        let p = b.finish();
        assert_eq!(can_eliminate(&p, t), Err(StoreBlocker::GuardedWrite));
    }

    #[test]
    fn chained_writes_forward_in_order() {
        // Two writes to the same element in one iteration: the later read
        // must see the second value.
        let n = 8usize;
        let mut b = ProgramBuilder::new("chain");
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(t.at([v(i)]), lit(1.0)),
                assign(t.at([v(i)]), ld(t.at([v(i)])) + lit(1.0)),
                accumulate(s, ld(t.at([v(i)]))),
            ],
        );
        let p = b.finish();
        let before = interp::run(&p).unwrap();
        let (q, rep) = eliminate_stores_for(&p, t).unwrap();
        assert_eq!(rep.stores_removed, 2);
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
        assert_eq!(after.observation.scalars[0].1, 2.0 * n as f64);
        assert_eq!(after.stats.stores, 0);
    }

    #[test]
    fn forwarding_reaches_into_conditionals() {
        // Write at top level, read inside an if: forwarding is safe.
        let n = 8usize;
        let mut b = ProgramBuilder::new("fc");
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(t.at([v(i)]), lit(5.0)),
                if_then(cmp(v(i), mbb_ir::CmpOp::Ge, c(4)), vec![accumulate(s, ld(t.at([v(i)])))]),
            ],
        );
        let p = b.finish();
        let before = interp::run(&p).unwrap();
        let (q, _) = eliminate_stores_for(&p, t).unwrap();
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
        assert_eq!(after.stats.stores, 0);
        assert_eq!(after.observation.scalars[0].1, 20.0);
    }

    #[test]
    fn eliminate_all_handles_multiple_arrays() {
        let n = 8usize;
        let mut b = ProgramBuilder::new("all");
        let t1 = b.array_zero("t1", &[n]);
        let t2 = b.array_zero("t2", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(t1.at([v(i)]), lit(1.0)),
                assign(t2.at([v(i)]), ld(t1.at([v(i)])) * lit(3.0)),
                accumulate(s, ld(t2.at([v(i)]))),
            ],
        );
        let p = b.finish();
        let before = interp::run(&p).unwrap();
        let (q, reports) = eliminate_all_stores(&p);
        assert_eq!(reports.len(), 2);
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
        assert_eq!(after.stats.stores, 0);
        assert_eq!(after.stats.loads, 0, "everything forwarded through registers");
    }
}
