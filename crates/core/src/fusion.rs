//! Bandwidth-minimal loop fusion (§3.1) and the edge-weighted baseline.
//!
//! The paper's formulation (Problem 3.1/3.2): partition the loops of a
//! program into an ordered sequence of fusible groups so that the **sum
//! over groups of the number of distinct arrays** each group touches is
//! minimal — because, with arrays too large for cross-group cache reuse,
//! every distinct array in a group is loaded from memory once per group.
//!
//! * [`two_partition_min_bandwidth`] — the polynomial case: two partitions
//!   induced by one fusion-preventing pair.  Data sharing is modelled with
//!   one *hyperedge per array*; dependences are enforced with the §3.1.2
//!   weight-`N` edge triples; the optimum is a minimal hyperedge cut
//!   (Figure 5, via `mbb-hypergraph`).
//! * [`exhaustive_min_bandwidth`] / [`exhaustive_min_edge_weighted`] —
//!   exact optima by enumerating legal partitionings (small programs; the
//!   general problem is NP-complete, §3.1.3).  These reproduce the
//!   Figure-4 comparison: the edge-weighted optimum (Gao et al.,
//!   Kennedy–McKinley) does *not* minimise memory transfer.
//! * [`greedy_fusion`] — a polynomial heuristic for the multi-partition
//!   case: repeatedly merge the legal group pair sharing the most arrays.
//!
//! Costs are computed by [`total_distinct_arrays`] (the paper's objective)
//! and [`cross_partition_edge_weight`] (the classical objective), so every
//! strategy can be scored under both.

use std::collections::{BTreeMap, BTreeSet};

use mbb_hypergraph::graph::{HyperEdge, Hypergraph};
use mbb_hypergraph::mincut::min_hyperedge_cut;
use mbb_ir::deps::{dependences, fusion_legal, nest_access};
use mbb_ir::program::{ArrayId, Program};

use crate::transform::{fuse_nests, FuseError};

/// The fusion graph of a program: per-nest array sets, dependence edges and
/// fusion-preventing pairs (explicit constraints plus every pair the
/// pairwise legality analysis rejects).
#[derive(Clone, Debug)]
pub struct FusionGraph {
    /// Number of nests (graph nodes).
    pub n: usize,
    /// Arrays touched by each nest.
    pub arrays_of: Vec<BTreeSet<ArrayId>>,
    /// Dependence edges `(src, dst)`, `src < dst`.
    pub deps: Vec<(usize, usize)>,
    /// Non-fusible pairs `(a, b)`, `a < b`.
    pub preventing: BTreeSet<(usize, usize)>,
}

/// Builds the fusion graph of a program.
pub fn build_fusion_graph(prog: &Program) -> FusionGraph {
    let n = prog.nests.len();
    let arrays_of = prog.nests.iter().map(|nest| nest_access(nest).arrays_touched()).collect();
    let deps = dependences(prog).edges.iter().map(|e| (e.src, e.dst)).collect();
    let mut preventing = BTreeSet::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if fusion_legal(prog, a, b).is_err() {
                preventing.insert((a, b));
            }
        }
    }
    FusionGraph { n, arrays_of, deps, preventing }
}

impl FusionGraph {
    /// Shared-array count between two nests — the edge weight of the
    /// classical (Gao et al. / Kennedy–McKinley) fusion formulation.
    pub fn edge_weight(&self, a: usize, b: usize) -> u64 {
        self.arrays_of[a].intersection(&self.arrays_of[b]).count() as u64
    }

    /// True if the pair may share a group.
    pub fn fusible(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        !self.preventing.contains(&key)
    }
}

/// An ordered sequence of fusible groups (nest indices).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partitioning {
    /// Groups in execution order; within a group, indices ascend.
    pub groups: Vec<Vec<usize>>,
}

impl Partitioning {
    /// The single-group partitioning (fuse everything).
    pub fn all_fused(n: usize) -> Self {
        Partitioning { groups: vec![(0..n).collect()] }
    }

    /// The identity partitioning (no fusion), one group per nest.
    pub fn unfused(n: usize) -> Self {
        Partitioning { groups: (0..n).map(|k| vec![k]).collect() }
    }

    /// Group index of each nest.
    pub fn group_of(&self, n: usize) -> Vec<usize> {
        let mut g = vec![usize::MAX; n];
        for (gi, group) in self.groups.iter().enumerate() {
            for &k in group {
                g[k] = gi;
            }
        }
        g
    }
}

/// Why a partitioning is illegal for a fusion graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PartitionError {
    /// Not a partition of `0..n`.
    NotAPartition,
    /// A fusion-preventing pair shares a group.
    PreventedPair(usize, usize),
    /// A dependence flows backwards across the sequence.
    BackwardDependence(usize, usize),
}

/// Checks the paper's correctness criteria (Problem 3.1) for a
/// partitioning: every node in exactly one group, no fusion-preventing pair
/// within a group, dependences only from earlier to later groups.
pub fn check_legal(graph: &FusionGraph, p: &Partitioning) -> Result<(), PartitionError> {
    let mut seen = vec![false; graph.n];
    for g in &p.groups {
        for &k in g {
            if k >= graph.n || seen[k] {
                return Err(PartitionError::NotAPartition);
            }
            seen[k] = true;
        }
        for (i, &a) in g.iter().enumerate() {
            for &b in &g[i + 1..] {
                if !graph.fusible(a, b) {
                    return Err(PartitionError::PreventedPair(a.min(b), a.max(b)));
                }
            }
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(PartitionError::NotAPartition);
    }
    let group_of = p.group_of(graph.n);
    for &(src, dst) in &graph.deps {
        if group_of[src] > group_of[dst] {
            return Err(PartitionError::BackwardDependence(src, dst));
        }
    }
    Ok(())
}

/// The paper's objective: total number of distinct arrays over all groups
/// (equals total array loads from memory when arrays exceed the cache).
pub fn total_distinct_arrays(graph: &FusionGraph, p: &Partitioning) -> u64 {
    p.groups
        .iter()
        .map(|g| {
            let mut set: BTreeSet<ArrayId> = BTreeSet::new();
            for &k in g {
                set.extend(&graph.arrays_of[k]);
            }
            set.len() as u64
        })
        .sum()
}

/// The classical objective: total shared-array weight on nest pairs split
/// across different groups (what Gao et al. / Kennedy–McKinley minimise).
pub fn cross_partition_edge_weight(graph: &FusionGraph, p: &Partitioning) -> u64 {
    let group_of = p.group_of(graph.n);
    let mut total = 0;
    for a in 0..graph.n {
        for b in (a + 1)..graph.n {
            if group_of[a] != group_of[b] {
                total += graph.edge_weight(a, b);
            }
        }
    }
    total
}

/// The §3.1.2 hypergraph of a fusion graph: one unit-weight hyperedge per
/// array over the nests touching it, plus, per dependence `src → dst`, the
/// three weight-`N` enforcement edges `{s, src}`, `{src, dst}`, `{dst, t}`
/// that make any dependence-violating cut non-minimal.
pub fn fusion_hypergraph(graph: &FusionGraph, s: usize, t: usize) -> (Hypergraph, u64) {
    let mut all_arrays: BTreeSet<ArrayId> = BTreeSet::new();
    for set in &graph.arrays_of {
        all_arrays.extend(set);
    }
    let heavy = all_arrays.len() as u64 + 1;
    let mut hg = Hypergraph::new(graph.n);
    for &arr in &all_arrays {
        let pins: Vec<usize> =
            (0..graph.n).filter(|&k| graph.arrays_of[k].contains(&arr)).collect();
        hg.add_edge(HyperEdge::weighted(pins, 1));
    }
    let mut dep_count = 0u64;
    for &(src, dst) in &graph.deps {
        // A dependence between the terminals themselves is already decided
        // by the partition order; edges between a terminal and itself would
        // be degenerate.
        hg.add_edge(HyperEdge::weighted([s, src], heavy));
        hg.add_edge(HyperEdge::weighted([src, dst], heavy));
        hg.add_edge(HyperEdge::weighted([dst, t], heavy));
        dep_count += 1;
    }
    (hg, heavy * dep_count)
}

/// The polynomial two-partitioning algorithm: given the fusion-preventing
/// pair `(s, t)` (with `s`'s group executing first), returns the
/// bandwidth-minimal legal two-partitioning and its total-distinct-arrays
/// cost.
///
/// Returns `Err` if no legal two-partitioning exists (e.g. a group ends up
/// containing another fusion-preventing pair).
pub fn two_partition_min_bandwidth(
    graph: &FusionGraph,
    s: usize,
    t: usize,
) -> Result<(Partitioning, u64), PartitionError> {
    let (hg, dep_baseline) = fusion_hypergraph(graph, s, t);
    let cut = min_hyperedge_cut(&hg, s, t);
    // Every legal partitioning pays exactly `heavy` per dependence; any
    // violation pays more, so a legal minimum survives whenever one exists.
    let _array_cut = cut.cut_weight.saturating_sub(dep_baseline);
    let mut first: Vec<usize> = cut.side_s.iter().copied().collect();
    let mut second: Vec<usize> = cut.side_t.iter().copied().collect();
    first.sort_unstable();
    second.sort_unstable();
    let p = Partitioning { groups: vec![first, second] };
    check_legal(graph, &p)?;
    let cost = total_distinct_arrays(graph, &p);
    Ok((p, cost))
}

/// Enumerates every legal partitioning of a small fusion graph (restricted
/// growth strings, ≤ 12 nests) and returns the minimum under `cost`.
fn exhaustive_best(
    graph: &FusionGraph,
    cost: impl Fn(&FusionGraph, &Partitioning) -> u64,
) -> (Partitioning, u64) {
    assert!(graph.n <= 12, "exhaustive search is exponential; too many nests");
    assert!(graph.n >= 1, "empty program");
    let mut assign = vec![0usize; graph.n];
    let mut best: Option<(Partitioning, u64)> = None;

    fn groups_from(assign: &[usize]) -> Vec<Vec<usize>> {
        let k = assign.iter().copied().max().unwrap_or(0) + 1;
        let mut groups = vec![Vec::new(); k];
        for (node, &g) in assign.iter().enumerate() {
            groups[g].push(node);
        }
        groups
    }

    /// Orders groups topologically w.r.t. dependences; `None` when cyclic.
    fn order_groups(graph: &FusionGraph, groups: Vec<Vec<usize>>) -> Option<Partitioning> {
        let k = groups.len();
        let mut group_of = vec![0usize; graph.n];
        for (gi, g) in groups.iter().enumerate() {
            for &n in g {
                group_of[n] = gi;
            }
        }
        let mut succ = vec![BTreeSet::new(); k];
        let mut indeg = vec![0usize; k];
        for &(s, d) in &graph.deps {
            let (gs, gd) = (group_of[s], group_of[d]);
            if gs != gd && succ[gs].insert(gd) {
                indeg[gd] += 1;
            }
        }
        let mut order = Vec::with_capacity(k);
        let mut ready: Vec<usize> = (0..k).filter(|&g| indeg[g] == 0).collect();
        while let Some(g) = ready.pop() {
            order.push(g);
            for &nx in &succ[g] {
                indeg[nx] -= 1;
                if indeg[nx] == 0 {
                    ready.push(nx);
                }
            }
        }
        if order.len() != k {
            return None;
        }
        Some(Partitioning { groups: order.into_iter().map(|g| groups[g].clone()).collect() })
    }

    fn recurse(
        graph: &FusionGraph,
        cost: &impl Fn(&FusionGraph, &Partitioning) -> u64,
        assign: &mut Vec<usize>,
        node: usize,
        max_used: usize,
        best: &mut Option<(Partitioning, u64)>,
    ) {
        if node == graph.n {
            let groups = groups_from(assign);
            // Within-group fusibility.
            for g in &groups {
                for (i, &a) in g.iter().enumerate() {
                    for &b in &g[i + 1..] {
                        if !graph.fusible(a, b) {
                            return;
                        }
                    }
                }
            }
            if let Some(p) = order_groups(graph, groups) {
                let c = cost(graph, &p);
                if best.as_ref().map(|&(_, bc)| c < bc).unwrap_or(true) {
                    *best = Some((p, c));
                }
            }
            return;
        }
        for g in 0..=max_used.min(node) {
            assign[node] = g;
            recurse(graph, cost, assign, node + 1, max_used.max(g + 1), best);
        }
    }

    recurse(graph, &cost, &mut assign, 0, 0, &mut best);
    best.expect("the unfused partitioning is always legal")
}

/// Exact bandwidth-minimal fusion for small programs (exhaustive).
pub fn exhaustive_min_bandwidth(graph: &FusionGraph) -> (Partitioning, u64) {
    exhaustive_best(graph, total_distinct_arrays)
}

/// Exact edge-weighted fusion (the Gao et al. / Kennedy–McKinley objective)
/// for small programs (exhaustive).  Reported cost is the cross-partition
/// edge weight.
pub fn exhaustive_min_edge_weighted(graph: &FusionGraph) -> (Partitioning, u64) {
    exhaustive_best(graph, cross_partition_edge_weight)
}

/// Polynomial greedy heuristic for the NP-complete multi-partition case:
/// start unfused (program order) and repeatedly merge the legal group pair
/// with the largest shared-array benefit, until no merge helps.
pub fn greedy_fusion(graph: &FusionGraph) -> Partitioning {
    let mut p = Partitioning::unfused(graph.n);
    loop {
        let mut best: Option<(u64, usize, usize)> = None;
        for gi in 0..p.groups.len() {
            for gj in (gi + 1)..p.groups.len() {
                // Benefit of merging: arrays counted twice today that would
                // be counted once.
                let set_i: BTreeSet<ArrayId> =
                    p.groups[gi].iter().flat_map(|&k| graph.arrays_of[k].iter().copied()).collect();
                let set_j: BTreeSet<ArrayId> =
                    p.groups[gj].iter().flat_map(|&k| graph.arrays_of[k].iter().copied()).collect();
                let benefit = set_i.intersection(&set_j).count() as u64;
                if benefit == 0 {
                    continue;
                }
                // Candidate merge must be legal.
                let mut merged = Vec::new();
                for (g, group) in p.groups.iter().enumerate() {
                    if g == gi {
                        let mut m = group.clone();
                        m.extend(&p.groups[gj]);
                        m.sort_unstable();
                        merged.push(m);
                    } else if g != gj {
                        merged.push(group.clone());
                    }
                }
                let candidate = Partitioning { groups: merged };
                let candidate = match reorder_topologically(graph, candidate) {
                    Some(c) => c,
                    None => continue,
                };
                if check_legal(graph, &candidate).is_ok()
                    && best.map(|(b, _, _)| benefit > b).unwrap_or(true)
                {
                    best = Some((benefit, gi, gj));
                }
            }
        }
        let Some((_, gi, gj)) = best else { break };
        let mut merged = Vec::new();
        for (g, group) in p.groups.iter().enumerate() {
            if g == gi {
                let mut m = group.clone();
                m.extend(&p.groups[gj]);
                m.sort_unstable();
                merged.push(m);
            } else if g != gj {
                merged.push(group.clone());
            }
        }
        p = reorder_topologically(graph, Partitioning { groups: merged })
            .expect("merge was checked legal");
    }
    p
}

/// The paper's §4 suggestion: Kennedy–McKinley's recursive-bisection
/// heuristic for the NP-complete multi-partition case, with the bisection
/// performed by *this paper's* hyperedge minimal cut instead of the
/// classical edge cut.
///
/// The fusion-preventing pairs are processed one at a time: for each pair
/// still sharing a group, the group is bisected by
/// [`two_partition_min_bandwidth`] restricted to that group's subgraph.
/// Terminates after at most one bisection per preventing pair.
pub fn recursive_bisection_fusion(graph: &FusionGraph) -> Partitioning {
    // Start fully fused; split until every preventing pair is separated.
    let mut groups: Vec<Vec<usize>> = vec![(0..graph.n).collect()];
    let preventing: Vec<(usize, usize)> = graph.preventing.iter().copied().collect();
    while let Some((&(s, t), gi)) = preventing.iter().find_map(|p| {
        groups.iter().position(|g| g.contains(&p.0) && g.contains(&p.1)).map(|gi| (p, gi))
    }) {
        // Build the subgraph over this group's nodes.
        let members = groups[gi].clone();
        let index_of: BTreeMap<usize, usize> =
            members.iter().enumerate().map(|(k, &n)| (n, k)).collect();
        let sub = FusionGraph {
            n: members.len(),
            arrays_of: members.iter().map(|&m| graph.arrays_of[m].clone()).collect(),
            deps: graph
                .deps
                .iter()
                .filter_map(|&(a, b)| Some((*index_of.get(&a)?, *index_of.get(&b)?)))
                .collect(),
            preventing: graph
                .preventing
                .iter()
                .filter_map(|&(a, b)| {
                    let (x, y) = (*index_of.get(&a)?, *index_of.get(&b)?);
                    Some((x.min(y), x.max(y)))
                })
                .collect(),
        };
        let (ls, lt) = (index_of[&s], index_of[&t]);
        let halves = match two_partition_min_bandwidth(&sub, ls, lt) {
            Ok((p, _)) => p.groups,
            // The min-cut bisection can be illegal when the subgraph holds
            // further constraints; fall back to isolating `s`.
            Err(_) => {
                let rest: Vec<usize> = (0..sub.n).filter(|&k| k != ls).collect();
                vec![vec![ls], rest]
            }
        };
        let replacement: Vec<Vec<usize>> = halves
            .into_iter()
            .map(|half| {
                let mut g: Vec<usize> = half.into_iter().map(|k| members[k]).collect();
                g.sort_unstable();
                g
            })
            .filter(|g| !g.is_empty())
            .collect();
        groups.splice(gi..=gi, replacement);
    }
    // The sequence must respect dependences; a topological reorder
    // restores a legal order, and any residual illegality (possible with
    // pathological constraint sets) falls back to no fusion at all.
    let p = Partitioning { groups };
    match reorder_topologically(graph, p) {
        Some(p) if check_legal(graph, &p).is_ok() => p,
        _ => Partitioning::unfused(graph.n),
    }
}

/// Reorders groups into a dependence-respecting sequence (stable w.r.t.
/// smallest member); `None` when the condensation is cyclic.
fn reorder_topologically(graph: &FusionGraph, p: Partitioning) -> Option<Partitioning> {
    let k = p.groups.len();
    let group_of = p.group_of(graph.n);
    let mut succ = vec![BTreeSet::new(); k];
    let mut indeg = vec![0usize; k];
    for &(s, d) in &graph.deps {
        let (gs, gd) = (group_of[s], group_of[d]);
        if gs != gd && succ[gs].insert(gd) {
            indeg[gd] += 1;
        }
    }
    let mut order = Vec::with_capacity(k);
    let mut ready: BTreeSet<(usize, usize)> = (0..k)
        .filter(|&g| indeg[g] == 0)
        .map(|g| (*p.groups[g].first().unwrap_or(&0), g))
        .collect();
    while let Some(&(key, g)) = ready.iter().next() {
        ready.remove(&(key, g));
        order.push(g);
        for &nx in &succ[g] {
            indeg[nx] -= 1;
            if indeg[nx] == 0 {
                ready.insert((*p.groups[nx].first().unwrap_or(&0), nx));
            }
        }
    }
    if order.len() != k {
        return None;
    }
    Some(Partitioning { groups: order.into_iter().map(|g| p.groups[g].clone()).collect() })
}

/// Applies a partitioning to the program (delegates to
/// [`crate::transform::fuse_nests`]).
pub fn apply(prog: &Program, p: &Partitioning) -> Result<Program, FuseError> {
    fuse_nests(prog, &p.groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 as a bare fusion graph (no IR needed): six
    /// loops, arrays A–F, one fusion-preventing pair (5,6) [0-indexed:
    /// (4,5)], and the dependence loop5 → loop6.
    pub fn figure4_graph() -> FusionGraph {
        let arr = |k: u32| ArrayId(k); // A=0, B=1, C=2, D=3, E=4, F=5
        let set = |ids: &[u32]| -> BTreeSet<ArrayId> { ids.iter().map(|&k| arr(k)).collect() };
        FusionGraph {
            n: 6,
            arrays_of: vec![
                set(&[0, 3, 4, 5]),    // loop 1: A, D, E, F
                set(&[0, 3, 4, 5]),    // loop 2
                set(&[0, 3, 4, 5]),    // loop 3
                set(&[1, 2, 3, 4, 5]), // loop 4: B, C, D, E, F
                set(&[0]),             // loop 5: A
                set(&[1, 2]),          // loop 6: B, C
            ],
            deps: vec![(4, 5)],
            preventing: BTreeSet::from([(4, 5)]),
        }
    }

    #[test]
    fn figure4_unfused_costs_20() {
        let g = figure4_graph();
        let p = Partitioning::unfused(6);
        assert_eq!(total_distinct_arrays(&g, &p), 20);
    }

    #[test]
    fn figure4_bandwidth_minimal_costs_7() {
        // Paper: "The optimal fusion leaves loop 5 alone and fuses all other
        // loops … the total memory transfer is reduced from 20 arrays to 7."
        let g = figure4_graph();
        let (p, cost) = exhaustive_min_bandwidth(&g);
        assert_eq!(cost, 7);
        // Loop 5 (index 4) is alone.
        let alone: Vec<_> = p.groups.iter().filter(|grp| grp.len() == 1).collect();
        assert!(alone.iter().any(|grp| grp[0] == 4), "loop 5 isolated: {p:?}");
    }

    #[test]
    fn figure4_two_partition_matches_exhaustive() {
        let g = figure4_graph();
        let (p, cost) = two_partition_min_bandwidth(&g, 4, 5).unwrap();
        assert_eq!(cost, 7);
        assert_eq!(p.groups[0], vec![4]);
        assert_eq!(p.groups[1], vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn figure4_edge_weighted_optimum_is_worse() {
        // Paper: the edge-weighted optimum fuses loops 1–5 and leaves loop 6
        // alone (cross weight 2), but that partitioning loads 8 arrays; the
        // bandwidth-minimal one loads 7 yet has cross weight 3.
        let g = figure4_graph();
        let (p_ew, w_ew) = exhaustive_min_edge_weighted(&g);
        assert_eq!(w_ew, 2);
        let arrays_of_ew = total_distinct_arrays(&g, &p_ew);
        assert_eq!(arrays_of_ew, 8);

        let (p_bw, cost_bw) = exhaustive_min_bandwidth(&g);
        assert_eq!(cost_bw, 7);
        assert_eq!(cross_partition_edge_weight(&g, &p_bw), 3);
        assert!(arrays_of_ew > cost_bw, "edge-weighted fusion does not minimise bandwidth");
    }

    #[test]
    fn dependence_violating_cut_rejected() {
        // s = 0 writes x; t = 1 reads x; dep 0 → 1 and preventing (0,1):
        // only legal order puts 0 first.
        let g = FusionGraph {
            n: 2,
            arrays_of: vec![BTreeSet::from([ArrayId(0)]), BTreeSet::from([ArrayId(0)])],
            deps: vec![(0, 1)],
            preventing: BTreeSet::from([(0, 1)]),
        };
        let (p, cost) = two_partition_min_bandwidth(&g, 0, 1).unwrap();
        assert_eq!(p.groups, vec![vec![0], vec![1]]);
        assert_eq!(cost, 2);
    }

    #[test]
    fn dependence_pulls_node_to_correct_side() {
        // Nodes: 0=s, 1=t, 2=middle. Arrays: {0,2} and {2,1} (so 2 is torn).
        // A dependence 2 → 0 means 2 must not land after 0's group... with
        // s first, node 2 in the second group would put dep src after dst.
        let g = FusionGraph {
            n: 3,
            arrays_of: vec![
                BTreeSet::from([ArrayId(0)]),
                BTreeSet::from([ArrayId(1)]),
                BTreeSet::from([ArrayId(0), ArrayId(1)]),
            ],
            deps: vec![(2, 0)],
            preventing: BTreeSet::from([(0, 1)]),
        };
        let (p, _) = two_partition_min_bandwidth(&g, 0, 1).unwrap();
        // Node 2 must be in the first group (with s) despite equal array
        // pull from both sides.
        assert!(p.groups[0].contains(&2), "{p:?}");
        assert!(check_legal(&g, &p).is_ok());
    }

    #[test]
    fn greedy_on_figure4_is_legal_and_good() {
        let g = figure4_graph();
        let p = greedy_fusion(&g);
        check_legal(&g, &p).unwrap();
        let cost = total_distinct_arrays(&g, &p);
        assert!(cost <= 8, "greedy should get close to 7, got {cost}");
    }

    #[test]
    fn check_legal_detects_errors() {
        let g = figure4_graph();
        // Prevented pair together.
        let bad = Partitioning { groups: vec![vec![0, 1, 2, 3, 4, 5]] };
        assert_eq!(check_legal(&g, &bad), Err(PartitionError::PreventedPair(4, 5)));
        // Backward dependence.
        let bad2 = Partitioning { groups: vec![vec![5], vec![0, 1, 2, 3, 4]] };
        assert_eq!(check_legal(&g, &bad2), Err(PartitionError::BackwardDependence(4, 5)));
        // Missing node.
        let bad3 = Partitioning { groups: vec![vec![0, 1, 2]] };
        assert_eq!(check_legal(&g, &bad3), Err(PartitionError::NotAPartition));
    }

    #[test]
    fn costs_on_trivial_graph() {
        let g = FusionGraph {
            n: 2,
            arrays_of: vec![BTreeSet::from([ArrayId(0)]), BTreeSet::from([ArrayId(0)])],
            deps: vec![],
            preventing: BTreeSet::new(),
        };
        assert_eq!(total_distinct_arrays(&g, &Partitioning::unfused(2)), 2);
        assert_eq!(total_distinct_arrays(&g, &Partitioning::all_fused(2)), 1);
        assert_eq!(cross_partition_edge_weight(&g, &Partitioning::unfused(2)), 1);
        assert_eq!(cross_partition_edge_weight(&g, &Partitioning::all_fused(2)), 0);
    }
}

#[cfg(test)]
mod bisection_tests {
    use super::*;
    use tests::figure4_graph;

    #[test]
    fn bisection_solves_figure4_optimally() {
        let g = figure4_graph();
        let p = recursive_bisection_fusion(&g);
        check_legal(&g, &p).unwrap();
        assert_eq!(total_distinct_arrays(&g, &p), 7, "{p:?}");
    }

    #[test]
    fn bisection_with_no_constraints_fuses_everything() {
        let g = FusionGraph {
            n: 4,
            arrays_of: (0..4).map(|_| BTreeSet::from([ArrayId(0)])).collect(),
            deps: vec![(0, 1)],
            preventing: BTreeSet::new(),
        };
        let p = recursive_bisection_fusion(&g);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(total_distinct_arrays(&g, &p), 1);
    }

    #[test]
    fn bisection_separates_chained_constraints() {
        // Three mutually non-fusible reductions force three partitions.
        let g = FusionGraph {
            n: 3,
            arrays_of: (0..3).map(|k| BTreeSet::from([ArrayId(k)])).collect(),
            deps: vec![(0, 1), (1, 2)],
            preventing: BTreeSet::from([(0, 1), (1, 2), (0, 2)]),
        };
        let p = recursive_bisection_fusion(&g);
        check_legal(&g, &p).unwrap();
        assert_eq!(p.groups.len(), 3);
    }

    #[test]
    fn bisection_never_beats_the_exhaustive_optimum() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(2..7);
            let arrays = rng.gen_range(1..5u32);
            let g = FusionGraph {
                n,
                arrays_of: (0..n)
                    .map(|_| (0..arrays).filter(|_| rng.gen_bool(0.5)).map(ArrayId).collect())
                    .collect(),
                deps: (0..n)
                    .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                    .filter(|_| rng.gen_bool(0.2))
                    .collect(),
                preventing: (0..n)
                    .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                    .filter(|_| rng.gen_bool(0.25))
                    .collect(),
            };
            let p = recursive_bisection_fusion(&g);
            check_legal(&g, &p).unwrap();
            let (_, best) = exhaustive_min_bandwidth(&g);
            let got = total_distinct_arrays(&g, &p);
            assert!(got >= best, "heuristic {got} below optimum {best}?!");
        }
    }
}
