//! Iteration embedding and guard-context subscript normalisation.
//!
//! Figure 6(b) of the paper fuses a *one*-dimensional boundary loop
//! (`b[i,N] = g(b[i,N], a[i,1])`) into the last iteration of a
//! two-dimensional nest by guarding it with `if (j = N)`.  Two passes make
//! that reproducible mechanically:
//!
//! * [`embed_nest`] — move a depth-(d−1) nest into a chosen constant
//!   iteration of an adjacent depth-d nest, wrapped in the guard;
//! * [`normalize_guarded_consts`] — inside a branch guarded by
//!   `var == k`, rewrite constant subscripts equal to `k` into `var`
//!   (`b[i, N-1]` → `b[i, j]` under `j == N-1`), which is what lets the
//!   contraction analysis see the boundary access as part of the same
//!   per-iteration live range and collapse the whole array to a scalar,
//!   exactly as Figure 6(c) does with `b1`.

use mbb_ir::deps::nest_access;
use mbb_ir::expr::{Affine, CmpOp, Cond, Expr, Ref, Sub};
use mbb_ir::program::{LoopNest, Program, Stmt, VarId};

/// Why embedding was refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EmbedError {
    /// The nests are not adjacent in program order (`src == dst + 1`).
    NotAdjacent,
    /// The source nest's loops do not conform to the destination's with
    /// one level removed.
    NonConforming,
    /// `at` is not the destination level's constant upper bound (only
    /// last-iteration embedding is supported — that is when execution
    /// order is preserved for every dependence direction the conservative
    /// check admits).
    NotLastIteration,
    /// A shared array access could not be proven safe to interleave.
    UnsafeInterleaving,
}

/// Embeds nest `src` (= `dst + 1` in program order, depth `d−1`) into the
/// final iteration of level `level` of nest `dst` (depth `d`), guarded by
/// `if level_var == at`.
///
/// Safety argument: `src` originally runs after all of `dst`.  Embedded at
/// the last level-`level` iteration, each of `src`'s bodies runs after
/// `dst`'s body for the *same* inner iteration but before `dst`'s bodies
/// for later inner iterations.  The conservative check therefore requires
/// that for every array both nests touch with at least one write, `src`'s
/// subscripts match `dst`'s at the same inner iteration (offset 0 on every
/// shared level, constants allowed when equal or provably disjoint).
pub fn embed_nest(
    prog: &Program,
    dst: usize,
    level: usize,
    at: i64,
) -> Result<Program, EmbedError> {
    let src = dst + 1;
    if src >= prog.nests.len() {
        return Err(EmbedError::NotAdjacent);
    }
    let (nd, ns) = (&prog.nests[dst], &prog.nests[src]);
    if ns.loops.len() + 1 != nd.loops.len() || level >= nd.loops.len() {
        return Err(EmbedError::NonConforming);
    }
    // Loops of src must conform to dst's loops with `level` removed.
    let reduced: Vec<_> =
        nd.loops.iter().enumerate().filter(|&(l, _)| l != level).map(|(_, lp)| lp).collect();
    for (ls, ld) in ns.loops.iter().zip(&reduced) {
        if !ls.conforms_to(ld) {
            return Err(EmbedError::NonConforming);
        }
    }
    // Last iteration only.
    match nd.loops[level].hi.as_const() {
        Some(hi) if hi == at && nd.loops[level].step == 1 => {}
        _ => return Err(EmbedError::NotLastIteration),
    }

    // Conservative interleaving check on shared arrays with a write.
    let (acc_d, acc_s) = (nest_access(nd), nest_access(ns));
    let shared: Vec<_> = acc_d
        .arrays_touched()
        .intersection(&acc_s.arrays_touched())
        .copied()
        .filter(|a| acc_d.array_writes.contains(a) || acc_s.array_writes.contains(a))
        .collect();
    for arr in shared {
        if !interleaving_safe(nd, ns, level, at, arr) {
            return Err(EmbedError::UnsafeInterleaving);
        }
    }
    // Scalars: a scalar written by either and touched by both would change
    // meaning if src's updates interleave with dst's later iterations.
    let scalar_conflict = acc_d
        .scalar_writes
        .iter()
        .any(|s| acc_s.scalar_reads.contains(s) || acc_s.scalar_writes.contains(s))
        || acc_s
            .scalar_writes
            .iter()
            .any(|s| acc_d.scalar_reads.contains(s) || acc_d.scalar_writes.contains(s));
    if scalar_conflict {
        return Err(EmbedError::UnsafeInterleaving);
    }

    // Build: rename src's loop vars onto dst's (skipping `level`), wrap in
    // the guard, append to dst's body.
    let mut out = prog.clone();
    let mut body = ns.body.clone();
    let fresh: Vec<VarId> =
        ns.loops.iter().map(|lp| out.add_var(format!("{}__emb", prog.var_name(lp.var)))).collect();
    for (lp, &f) in ns.loops.iter().zip(&fresh) {
        body = body.iter().map(|s| s.rename(lp.var, f)).collect();
    }
    for (ld, &f) in reduced.iter().zip(&fresh) {
        body = body.iter().map(|s| s.rename(f, ld.var)).collect();
    }
    let guard = Cond::new(Affine::var(nd.loops[level].var), CmpOp::Eq, Affine::constant(at));
    let mut new_dst = nd.clone();
    new_dst.name = format!("{}+{}@", nd.name, ns.name);
    new_dst.body.push(Stmt::If { cond: guard, then_: body, else_: Vec::new() });
    out.nests[dst] = new_dst;
    out.nests.remove(src);
    out.fusion_preventing = prog
        .fusion_preventing
        .iter()
        .filter(|&&(a, b)| a != src && b != src)
        .map(|&(a, b)| {
            let shift = |x: usize| if x > src { x - 1 } else { x };
            (shift(a), shift(b))
        })
        .collect();
    Ok(out)
}

/// True when interleaving src's accesses to `arr` at the last level-`level`
/// iteration is provably safe: along `level`, dst touches the array only at
/// offsets that keep writes within the current iteration visible (offset
/// exactly 0 for writes) and src touches only the plane `at` (constant) or,
/// along shared levels, the same iteration (offset 0).
fn interleaving_safe(
    nd: &LoopNest,
    ns: &LoopNest,
    level: usize,
    at: i64,
    arr: mbb_ir::program::ArrayId,
) -> bool {
    // dst side: every subscript either does not involve `level`'s variable,
    // or is exactly `var(level) + 0`.
    let vd = nd.loops[level].var;
    let mut ok = true;
    nd.for_each_ref(&mut |r, _| {
        if let Ref::Element(a, subs) = r {
            if *a != arr {
                return;
            }
            for s in subs {
                let Some(e) = s.as_plain() else {
                    ok = false;
                    return;
                };
                let coef = e.coeff(vd);
                if coef != 0 && e.as_var_plus_const() != Some((vd, 0)) {
                    ok = false;
                }
            }
        }
    });
    if !ok {
        return false;
    }
    // src side: the dimensions where dst used var(level) must be the
    // constant `at` in src (same plane as the guarded iteration); shared
    // inner variables must appear with offset 0.
    let shared_vars: std::collections::BTreeSet<VarId> =
        nd.loops.iter().enumerate().filter(|&(l, _)| l != level).map(|(_, lp)| lp.var).collect();
    let src_vars: std::collections::BTreeSet<VarId> = ns.loops.iter().map(|lp| lp.var).collect();
    ns.for_each_ref(&mut |r, _| {
        if let Ref::Element(a, subs) = r {
            if *a != arr {
                return;
            }
            for s in subs {
                let Some(e) = s.as_plain() else {
                    ok = false;
                    return;
                };
                if let Some(k) = e.as_const() {
                    // A constant subscript must be the guarded plane or a
                    // plane dst never writes through var(level)… requiring
                    // the guarded plane keeps this simple and sufficient.
                    if k != at {
                        ok = false;
                    }
                } else if let Some((v, c)) = e.as_var_plus_const() {
                    if c != 0 || (!src_vars.contains(&v) && !shared_vars.contains(&v)) {
                        ok = false;
                    }
                } else {
                    ok = false;
                }
            }
        }
    });
    ok
}

/// Rewrites constant subscripts into loop variables where an enclosing
/// guard proves them equal (`b[i, 4]` → `b[i, j]` under `if j == 4`),
/// enabling contraction of boundary accesses.  Semantics-preserving by
/// construction.
pub fn normalize_guarded_consts(prog: &Program) -> Program {
    let mut out = prog.clone();
    for nest in &mut out.nests {
        let body = std::mem::take(&mut nest.body);
        nest.body = normalize_stmts(&body, &mut Vec::new());
    }
    out
}

fn normalize_stmts(stmts: &[Stmt], known: &mut Vec<(VarId, i64)>) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|st| match st {
            Stmt::Assign { lhs, rhs } => {
                Stmt::Assign { lhs: normalize_ref(lhs, known), rhs: normalize_expr(rhs, known) }
            }
            Stmt::If { cond, then_, else_ } => {
                let eq = as_var_eq(cond);
                if let Some(pair) = eq {
                    known.push(pair);
                }
                let then_ = normalize_stmts(then_, known);
                if eq.is_some() {
                    known.pop();
                }
                let else_ = normalize_stmts(else_, known);
                Stmt::If { cond: cond.clone(), then_, else_ }
            }
        })
        .collect()
}

fn as_var_eq(cond: &Cond) -> Option<(VarId, i64)> {
    match mbb_ir::ranges::normalize_cond(cond) {
        Some((v, CmpOp::Eq, k)) => Some((v, k)),
        _ => None,
    }
}

fn normalize_ref(r: &Ref, known: &[(VarId, i64)]) -> Ref {
    match r {
        Ref::Scalar(s) => Ref::Scalar(*s),
        Ref::Element(a, subs) => Ref::Element(
            *a,
            subs.iter()
                .map(|s| {
                    if s.modulo.is_none() {
                        if let Some(k) = s.expr.as_const() {
                            if let Some(&(v, _)) = known.iter().rev().find(|&&(_, kv)| kv == k) {
                                return Sub::plain(Affine::var(v));
                            }
                        }
                    }
                    s.clone()
                })
                .collect(),
        ),
    }
}

fn normalize_expr(e: &Expr, known: &[(VarId, i64)]) -> Expr {
    e.map_refs(&mut |r| normalize_ref(r, known))
}

/// Prunes conditionals whose outcome is statically decidable from the
/// enclosing loop bounds and guards: `if j == 0 …` inside a `j = 1..N`
/// loop keeps only its else branch.  Peeling and loop splitting leave such
/// dead guards behind; pruning them un-pins arrays from nests that can no
/// longer touch them, which re-enables contraction.
pub fn simplify_guards(prog: &Program) -> Program {
    let mut out = prog.clone();
    for nest in &mut out.nests {
        // Constant unit-step bounds give exact intervals; anything else gets
        // an unbounded interval (no pruning, still sound).
        let mut intervals: std::collections::BTreeMap<VarId, (i64, i64)> = Default::default();
        for lp in &nest.loops {
            if lp.step == 1 {
                if let (Some(lo), Some(hi)) = (lp.lo.as_const(), lp.hi.as_const()) {
                    intervals.insert(lp.var, (lo, hi));
                }
            }
        }
        let body = std::mem::take(&mut nest.body);
        nest.body = simplify_stmts(&body, &mut intervals);
    }
    out
}

fn cond_decidable(
    cond: &Cond,
    intervals: &std::collections::BTreeMap<VarId, (i64, i64)>,
) -> Option<bool> {
    let (v, op, k) = mbb_ir::ranges::normalize_cond(cond)?;
    let &(lo, hi) = intervals.get(&v)?;
    if lo > hi {
        return None;
    }
    let all = |f: &dyn Fn(i64) -> bool| f(lo) && f(hi);
    match op {
        CmpOp::Eq => {
            if lo == hi && lo == k {
                Some(true)
            } else if k < lo || k > hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ne => {
            cond_decidable(&Cond::new(Affine::var(v), CmpOp::Eq, Affine::constant(k)), intervals)
                .map(|b| !b)
        }
        CmpOp::Le => {
            if all(&|x| x <= k) {
                Some(true)
            } else if all(&|x| x > k) {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if all(&|x| x < k) {
                Some(true)
            } else if all(&|x| x >= k) {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if all(&|x| x >= k) {
                Some(true)
            } else if all(&|x| x < k) {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if all(&|x| x > k) {
                Some(true)
            } else if all(&|x| x <= k) {
                Some(false)
            } else {
                None
            }
        }
    }
}

fn refine_interval(iv: (i64, i64), op: CmpOp, k: i64, taken: bool) -> (i64, i64) {
    let (lo, hi) = iv;
    match (op, taken) {
        (CmpOp::Eq, true) => (lo.max(k), hi.min(k)),
        (CmpOp::Eq, false) | (CmpOp::Ne, true) => {
            if k == lo {
                (lo + 1, hi)
            } else if k == hi {
                (lo, hi - 1)
            } else {
                (lo, hi)
            }
        }
        (CmpOp::Ne, false) => (lo.max(k), hi.min(k)),
        (CmpOp::Le, true) => (lo, hi.min(k)),
        (CmpOp::Le, false) | (CmpOp::Gt, true) => (lo.max(k + 1), hi),
        (CmpOp::Lt, true) => (lo, hi.min(k - 1)),
        (CmpOp::Lt, false) | (CmpOp::Ge, true) => (lo.max(k), hi),
        (CmpOp::Ge, false) => (lo, hi.min(k - 1)),
        (CmpOp::Gt, false) => (lo, hi.min(k)),
    }
}

fn simplify_stmts(
    stmts: &[Stmt],
    intervals: &mut std::collections::BTreeMap<VarId, (i64, i64)>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for st in stmts {
        match st {
            Stmt::Assign { .. } => out.push(st.clone()),
            Stmt::If { cond, then_, else_ } => match cond_decidable(cond, intervals) {
                Some(true) => out.extend(simplify_stmts(then_, intervals)),
                Some(false) => out.extend(simplify_stmts(else_, intervals)),
                None => {
                    let refined = mbb_ir::ranges::normalize_cond(cond);
                    let branch = |body: &[Stmt],
                                      taken: bool,
                                      intervals: &mut std::collections::BTreeMap<
                        VarId,
                        (i64, i64),
                    >| {
                        match refined {
                            Some((v, op, k)) if intervals.contains_key(&v) => {
                                let saved = intervals[&v];
                                intervals.insert(v, refine_interval(saved, op, k, taken));
                                let res = simplify_stmts(body, intervals);
                                intervals.insert(v, saved);
                                res
                            }
                            _ => simplify_stmts(body, intervals),
                        }
                    };
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_: branch(then_, true, intervals),
                        else_: branch(else_, false, intervals),
                    });
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;
    use mbb_ir::{interp, validate};

    /// A 2-D compute nest followed by a 1-D boundary loop on the last
    /// column — the Figure-6 pattern.
    fn boundary_program(n: usize) -> mbb_ir::Program {
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("bp");
        let bb = b.array_out("b", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        let i2 = b.var("i2");
        b.nest(
            "compute",
            &[(j, 0, hi), (i, 0, hi)],
            vec![assign(bb.at([v(i), v(j)]), Expr::Input(mbb_ir::SourceId(9), vec![v(i), v(j)]))],
        );
        b.nest(
            "boundary",
            &[(i2, 0, hi)],
            vec![assign(bb.at([v(i2), c(hi)]), ld(bb.at([v(i2), c(hi)])) * lit(2.0))],
        );
        b.finish()
    }

    #[test]
    fn embed_boundary_into_last_iteration() {
        let n = 8usize;
        let p = boundary_program(n);
        let before = interp::run(&p).unwrap();
        let q = embed_nest(&p, 0, 0, n as i64 - 1).unwrap();
        assert_eq!(q.nests.len(), 1);
        validate::validate(&q).unwrap();
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn embed_requires_last_iteration() {
        let p = boundary_program(8);
        assert_eq!(embed_nest(&p, 0, 0, 3).err(), Some(EmbedError::NotLastIteration));
    }

    #[test]
    fn embed_rejects_wrong_plane() {
        // Boundary touches column 0, not the last: interleaving with the
        // last iteration would read/write the wrong time step.
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("wp");
        let bb = b.array_out("b", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        let i2 = b.var("i2");
        b.nest("compute", &[(j, 0, hi), (i, 0, hi)], vec![assign(bb.at([v(i), v(j)]), lit(1.0))]);
        b.nest("boundary", &[(i2, 0, hi)], vec![assign(bb.at([v(i2), c(0)]), lit(5.0))]);
        let p = b.finish();
        assert_eq!(embed_nest(&p, 0, 0, hi).err(), Some(EmbedError::UnsafeInterleaving));
    }

    #[test]
    fn embed_rejects_nonconforming() {
        let mut p = boundary_program(8);
        // Shrink the boundary loop's range so it no longer conforms.
        p.nests[1].loops[0].hi = Affine::constant(3);
        assert_eq!(embed_nest(&p, 0, 0, 7).err(), Some(EmbedError::NonConforming));
    }

    #[test]
    fn normalize_rewrites_guarded_consts() {
        use mbb_ir::CmpOp;
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("ng");
        let t = b.array_out("t", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "k",
            &[(j, 0, hi), (i, 0, hi)],
            vec![
                assign(t.at([v(i), v(j)]), lit(1.0)),
                if_then(cmp(v(j), CmpOp::Eq, c(hi)), vec![assign(t.at([v(i), c(hi)]), lit(2.0))]),
            ],
        );
        let p = b.finish();
        let q = normalize_guarded_consts(&p);
        validate::validate(&q).unwrap();
        // The const subscript under the guard became the variable.
        let text = mbb_ir::pretty::program(&q);
        assert!(text.contains("t[i,j] = 2"), "{text}");
        let before = interp::run(&p).unwrap();
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn normalize_leaves_unguarded_consts() {
        let n = 4usize;
        let mut b = ProgramBuilder::new("ng2");
        let t = b.array_out("t", &[n]);
        let i = b.var("i");
        b.nest("k", &[(i, 0, n as i64 - 1)], vec![assign(t.at([c(2)]), lit(1.0))]);
        let p = b.finish();
        let q = normalize_guarded_consts(&p);
        let text = mbb_ir::pretty::program(&q);
        assert!(text.contains("t[2]"), "{text}");
    }

    #[test]
    fn simplify_prunes_decidable_guards() {
        use mbb_ir::CmpOp;
        let mut b = ProgramBuilder::new("sg");
        let t = b.array_out("t", &[8]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 1, 7)],
            vec![
                // Always false inside i = 1..7.
                if_else(
                    cmp(v(i), CmpOp::Eq, c(0)),
                    vec![assign(t.at([v(i)]), lit(-1.0))],
                    vec![assign(t.at([v(i)]), lit(1.0))],
                ),
                // Always true.
                if_then(cmp(v(i), CmpOp::Ge, c(1)), vec![accumulate(s, lit(1.0))]),
                // Undecidable: stays, with refined nested pruning.
                if_then(
                    cmp(v(i), CmpOp::Ge, c(4)),
                    vec![if_then(cmp(v(i), CmpOp::Ge, c(2)), vec![accumulate(s, lit(1.0))])],
                ),
            ],
        );
        let p = b.finish();
        let q = simplify_guards(&p);
        validate::validate(&q).unwrap();
        // Outer structure: assign, accumulate, one surviving If whose body
        // collapsed to a bare accumulate.
        assert_eq!(q.nests[0].body.len(), 3);
        assert!(matches!(q.nests[0].body[0], Stmt::Assign { .. }));
        assert!(matches!(q.nests[0].body[1], Stmt::Assign { .. }));
        match &q.nests[0].body[2] {
            Stmt::If { then_, .. } => {
                assert_eq!(then_.len(), 1);
                assert!(matches!(then_[0], Stmt::Assign { .. }));
            }
            other => panic!("expected surviving If, got {other:?}"),
        }
        let before = interp::run(&p).unwrap();
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn simplify_keeps_semantics_on_boundary_guards() {
        // The post-peeling shape: guard j == 0 inside a j = 0..0 nest and a
        // j = 1..N nest.
        let n = 6usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("sg2");
        let a = b.array_out("a", &[n]);
        let j = b.var("j");
        let j2 = b.var("j2");
        let body = |jv: mbb_ir::VarId| {
            vec![if_else(
                cmp(v(jv), mbb_ir::CmpOp::Eq, c(0)),
                vec![assign(a.at([v(jv)]), lit(7.0))],
                vec![assign(a.at([v(jv)]), lit(9.0))],
            )]
        };
        b.nest("first", &[(j, 0, 0)], body(j));
        b.nest("rest", &[(j2, 1, hi)], body(j2));
        let p = b.finish();
        let q = simplify_guards(&p);
        // Both guards pruned to bare assignments.
        assert!(matches!(q.nests[0].body[0], Stmt::Assign { .. }));
        assert!(matches!(q.nests[1].body[0], Stmt::Assign { .. }));
        let before = interp::run(&p).unwrap();
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    use mbb_ir::Affine;
    use mbb_ir::Expr;
}
