//! Per-loop-nest balance attribution from an observability profile.
//!
//! [`measure_program_balance`](crate::balance::measure_program_balance)
//! wraps interpretation in an `"interp"` span; the interpreter opens one
//! `"nest:<name>"` span per loop nest (flushing its access buffer at each
//! nest boundary), and the final writeback flush runs under a sibling
//! `"flush"` span.  Those spans partition the run's traffic exactly, so
//! this module can rebuild the paper's program-balance table *per nest*:
//! which loop nest moved how many bytes on which channel, per flop — the
//! decomposition that tells you which nest a fusion or store-elimination
//! pass actually helped.

use mbb_obs::{Counters, Profile};

/// One row of the per-nest table: a loop nest (or the final flush) with
/// its attributed traffic.
#[derive(Clone, Debug)]
pub struct NestRow {
    /// `"nest:<name>"` as recorded, `"(flush)"` for the final writeback
    /// flush, `"(other)"` for any unattributed remainder.
    pub name: String,
    /// Flops executed in this nest.
    pub flops: u64,
    /// Wall-clock spent in the span.
    pub wall_ns: u64,
    /// Full attributed counter delta.
    pub delta: Counters,
}

impl NestRow {
    /// Balance of channel `k`: bytes moved per flop *of this nest*.
    /// Flop-free rows (the flush) report the bytes against zero flops as
    /// infinity — the table renderer prints `-` for those.
    pub fn balance(&self, k: usize) -> f64 {
        self.delta.channel_bytes[k] as f64 / self.flops.max(1) as f64
    }
}

/// The per-nest attribution table of one measured run.
#[derive(Clone, Debug)]
pub struct NestTable {
    /// One row per loop nest, in program order, then `"(flush)"` /
    /// `"(other)"` rows when they carried traffic.
    pub rows: Vec<NestRow>,
    /// Column-wise total — equals the whole-program report by the span
    /// partition invariant.
    pub total: Counters,
    /// Total flops (denominator of the whole-program balance row).
    pub flops: u64,
    /// Number of channels with traffic (hierarchy depth + 1).
    pub channels: usize,
}

/// Extracts the per-nest table from the first `"interp"` span of a
/// profile.  Returns `None` when the profile has no `"interp"` span (e.g.
/// a timing-only collection).
pub fn nest_table(profile: &Profile) -> Option<NestTable> {
    nest_table_under(profile, None)
}

/// As [`nest_table`], but restricted to the first `"interp"` span nested
/// under the named ancestor span — used to pull the *before* and *after*
/// tables out of an `optimize` profile, where several interpretations
/// happen under different phase spans.
pub fn nest_table_under(profile: &Profile, phase: Option<&str>) -> Option<NestTable> {
    let scope = match phase {
        Some(name) => Some(profile.find(name)?),
        None => None,
    };
    let interp = (0..profile.spans.len()).find(|&k| {
        profile.spans[k].name == "interp" && scope.is_none_or(|s| profile.has_ancestor(k, s))
    })?;

    let mut rows = Vec::new();
    let mut attributed = Counters::default();
    for k in profile.children(interp) {
        let s = &profile.spans[k];
        if !s.name.starts_with("nest:") {
            continue;
        }
        attributed.add(&s.delta);
        rows.push(NestRow {
            name: s.name.clone(),
            flops: s.delta.flops,
            wall_ns: s.wall_ns,
            delta: s.delta,
        });
    }

    let mut total = profile.spans[interp].delta;
    // Anything the interp span saw outside its nest children (should be
    // nothing — the interpreter flushes per nest — but never hide bytes).
    let other = total.delta_since(&attributed);
    if other != Counters::default() {
        rows.push(NestRow { name: "(other)".into(), flops: other.flops, wall_ns: 0, delta: other });
    }

    // The final writeback flush is a *sibling* span under the same parent,
    // recorded after interp; its bytes belong in the program total.
    let parent = profile.spans[interp].parent;
    if let Some(f) = (interp + 1..profile.spans.len())
        .find(|&k| profile.spans[k].name == "flush" && profile.spans[k].parent == parent)
    {
        let s = &profile.spans[f];
        if s.delta != Counters::default() {
            rows.push(NestRow {
                name: "(flush)".into(),
                flops: 0,
                wall_ns: s.wall_ns,
                delta: s.delta,
            });
        }
        total.add(&s.delta);
    }

    Some(NestTable { channels: total.channels_used(), flops: total.flops, total, rows })
}

/// Channel display names for an `n`-channel hierarchy, matching the
/// whole-program report: `Reg↔L1`, `L1↔L2`, …, `Mem`.
pub fn channel_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| {
            if k == 0 {
                "Reg↔L1".to_string()
            } else if k + 1 == n {
                "Mem".to_string()
            } else {
                format!("L{}↔L{}", k, k + 1)
            }
        })
        .collect()
}

/// Renders the table: one row per nest, `bytes (bytes/flop)` per channel,
/// and a totals row that matches the whole-program report exactly.
pub fn render(table: &NestTable) -> String {
    use std::fmt::Write as _;
    let names = channel_names(table.channels);
    let mut out = String::new();
    let name_w =
        table.rows.iter().map(|r| r.name.len()).chain(["total".len()]).max().unwrap_or(5).max(5);
    let _ = write!(out, "  {:name_w$}  {:>12}", "nest", "flops");
    for n in &names {
        // `↔` is 3 UTF-8 bytes but one column; pad by display width.
        let pad = 22usize.saturating_sub(n.chars().count());
        let _ = write!(out, "  {}{}", " ".repeat(pad), n);
    }
    let _ = writeln!(out);
    let mut line = |name: &str, flops: u64, delta: &Counters| {
        let _ = write!(out, "  {:name_w$}  {:>12}", name, flops);
        for k in 0..table.channels {
            let bytes = delta.channel_bytes[k];
            let cell = if flops == 0 {
                format!("{bytes} (-)")
            } else {
                format!("{} ({:.2})", bytes, bytes as f64 / flops as f64)
            };
            let _ = write!(out, "  {cell:>22}");
        }
        let _ = writeln!(out);
    };
    for r in &table.rows {
        line(&r.name, r.flops, &r.delta);
    }
    line("total", table.flops, &table.total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::measure_program_balance;
    use mbb_ir::builder::*;
    use mbb_memsim::machine::MachineModel;
    use mbb_obs::{collect, Mode};

    fn two_nests(n: usize) -> mbb_ir::program::Program {
        let mut b = ProgramBuilder::new("two");
        let a = b.array_out("a", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "update",
            &[(i, 0, n as i64 - 1)],
            vec![assign(a.at([v(i)]), ld(a.at([v(i)])) + lit(0.5))],
        );
        b.nest("reduce", &[(j, 0, n as i64 - 1)], vec![accumulate(s, ld(a.at([v(j)])))]);
        b.finish()
    }

    #[test]
    fn nest_rows_sum_exactly_to_the_whole_program_report() {
        let m = MachineModel::origin2000();
        let prog = two_nests(1 << 16);
        let c = collect(Mode::Full);
        let bal = measure_program_balance(&prog, &m).unwrap();
        let p = c.finish();
        let t = nest_table(&p).expect("interp span present");

        assert_eq!(t.channels, bal.report.channel_bytes.len());
        assert_eq!(t.flops, bal.flops);
        // Exactness: per-channel totals equal the report byte for byte…
        for (k, &bytes) in bal.report.channel_bytes.iter().enumerate() {
            assert_eq!(t.total.channel_bytes[k], bytes, "channel {k}");
            let row_sum: u64 = t.rows.iter().map(|r| r.delta.channel_bytes[k]).sum();
            assert_eq!(row_sum, bytes, "rows must partition channel {k}");
        }
        assert_eq!(t.total.mem_read_bytes, bal.report.mem_read_bytes);
        assert_eq!(t.total.mem_write_bytes, bal.report.mem_write_bytes);
        // …and both nests appear by name, in program order.
        let names: Vec<&str> = t.rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.starts_with(&["nest:update", "nest:reduce"]), "{names:?}");
        // The update nest writes; the flush row carries its writebacks.
        assert!(names.contains(&"(flush)"), "{names:?}");
    }

    #[test]
    fn update_nest_dominates_memory_traffic() {
        let m = MachineModel::origin2000();
        let prog = two_nests(1 << 18); // out of cache
        let c = collect(Mode::Full);
        measure_program_balance(&prog, &m).unwrap();
        let t = nest_table(&c.finish()).unwrap();
        let mem = t.channels - 1;
        let row = |name: &str| t.rows.iter().find(|r| r.name == name).unwrap();
        // Per flop, the update nest fetches a[i]; reduce also fetches, but
        // update additionally owes writebacks (mostly in-flight evictions).
        let update = row("nest:update");
        let reduce = row("nest:reduce");
        assert!(update.delta.channel_bytes[mem] > reduce.delta.channel_bytes[mem]);
        assert!(update.delta.mem_write_bytes > 0);
        assert_eq!(reduce.flops, update.flops);
    }

    #[test]
    fn render_includes_every_nest_and_a_total() {
        let m = MachineModel::origin2000();
        let c = collect(Mode::Full);
        measure_program_balance(&two_nests(1 << 12), &m).unwrap();
        let t = nest_table(&c.finish()).unwrap();
        let text = render(&t);
        assert!(text.contains("nest:update"));
        assert!(text.contains("nest:reduce"));
        assert!(text.contains("total"));
        assert!(text.contains("Mem"));
        assert!(text.contains("Reg↔L1"));
    }

    #[test]
    fn timing_only_profile_has_no_table() {
        let m = MachineModel::origin2000();
        let c = collect(Mode::Timing);
        measure_program_balance(&two_nests(256), &m).unwrap();
        let p = c.finish();
        // The spans exist but carry no counters: the table is all zeros
        // rather than absent — callers gate on Mode::Full instead.
        let t = nest_table(&p).unwrap();
        assert_eq!(t.total, Counters::default());
    }

    #[test]
    fn tables_extract_per_phase() {
        let m = MachineModel::origin2000();
        let prog = two_nests(1 << 12);
        let opt = crate::pipeline::optimize(&prog, crate::pipeline::OptimizeOptions::default());
        let c = collect(Mode::Full);
        {
            let _b = mbb_obs::span!("before");
            measure_program_balance(&prog, &m).unwrap();
        }
        {
            let _a = mbb_obs::span!("after");
            measure_program_balance(&opt.program, &m).unwrap();
        }
        let p = c.finish();
        let before = nest_table_under(&p, Some("before")).unwrap();
        let after = nest_table_under(&p, Some("after")).unwrap();
        assert_eq!(before.rows.iter().filter(|r| r.name.starts_with("nest:")).count(), 2);
        // Fusion merged the two nests: the after table has fewer nest rows
        // and no more memory traffic than before.
        let after_nests = after.rows.iter().filter(|r| r.name.starts_with("nest:")).count();
        assert!(after_nests <= 1, "fused: {after_nests} rows");
        let mem = before.channels - 1;
        assert!(after.total.channel_bytes[mem] <= before.total.channel_bytes[mem]);
    }
}
