//! Storage reduction: array peeling and array shrinking (§3.2, Figure 6).
//!
//! After fusion localises an array's live range to one nest, two
//! transformations shrink its storage:
//!
//! * [`peel`] splits a constant-index section (`a[*, 1]` in Figure 6) into
//!   its own smaller array.  References whose subscript *may* hit the
//!   section at run time are guarded with the boundary conditionals the
//!   paper shows in Figure 6(c) (`if (j = 2) … else …`).  Peeled arrays are
//!   initialised with [`mbb_ir::Init::HashSection`], mirroring the original
//!   section's live-in contents, so peeling is unconditionally
//!   semantics-preserving.
//! * [`contract`] replaces a localised array with a modular buffer sized by
//!   the live distance computed in `mbb_ir::ranges` — `(distance + 1)`
//!   slots along the carried loop level, full extent inner to it — or with
//!   a register-resident scalar when every live range is intra-iteration.
//!   The buffer is addressed as `(v + c) mod m`; this is within a constant
//!   factor of the paper's rotating buffer (`a3[N]` + a scalar) and
//!   asymptotically identical (`O(N²) → O(N)`).
//!
//! [`shrink_storage`] is the driver: it tries to contract every localised
//! array, peeling constant-index sections out of the way when the analysis
//! asks for it, to a fixed point.

use mbb_ir::expr::{Affine, CmpOp, Cond, Expr, Ref, Sub};
use mbb_ir::program::{ArrayDecl, ArrayId, Init, Program, ScalarDecl, ScalarId, Stmt, VarId};
use mbb_ir::ranges::{contraction_plan, ContractBlocker, ContractionPlan};

/// Why peeling was refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PeelError {
    /// The array is observable output.
    LiveOut,
    /// `dim`/`index` out of range.
    BadSection,
    /// A reference's subscript in the peeled dimension is neither a
    /// constant nor `var + c`, or is modular.
    UnsupportedSubscript,
    /// The array was already produced by a peel (composed sections are not
    /// supported).
    AlreadyPeeled,
}

/// Result of a peel.
#[derive(Clone, Debug)]
pub struct PeelOutcome {
    /// The transformed program.
    pub program: Program,
    /// The id of the new, smaller section array.
    pub peeled: ArrayId,
}

/// How the peeled dimension's subscript relates to the section index, for
/// one reference site.
enum HitKind {
    /// Constant subscript equal to the section index: always the section.
    Always,
    /// Constant subscript different from the section index, or a variable
    /// subscript whose loop range cannot reach the index: never the section.
    Never,
    /// `var + c` that may or may not hit the index: needs a runtime guard
    /// `var + c == index`.
    Guarded(Affine),
}

struct PeelCtx {
    arr: ArrayId,
    dim: usize,
    index: i64,
    peeled: ArrayId,
    /// `var → (lo, hi)` for the current nest's constant-bound loops.
    var_bounds: std::collections::BTreeMap<VarId, (i64, i64)>,
    /// Fresh temporaries created so far (appended to the program at the
    /// end).
    new_scalars: Vec<ScalarDecl>,
    first_new_scalar: usize,
}

impl PeelCtx {
    fn fresh_temp(&mut self) -> ScalarId {
        let id = ScalarId((self.first_new_scalar + self.new_scalars.len()) as u32);
        self.new_scalars.push(ScalarDecl {
            name: format!("__peel_t{}", id.0),
            init: 0.0,
            printed: false,
        });
        id
    }

    fn classify(&self, sub: &Sub) -> Result<HitKind, PeelError> {
        let expr = sub.as_plain().ok_or(PeelError::UnsupportedSubscript)?;
        if let Some(k) = expr.as_const() {
            return Ok(if k == self.index { HitKind::Always } else { HitKind::Never });
        }
        if let Some((v, c)) = expr.as_var_plus_const() {
            if let Some(&(lo, hi)) = self.var_bounds.get(&v) {
                let hit_at = self.index - c;
                if hit_at < lo || hit_at > hi {
                    return Ok(HitKind::Never);
                }
                if lo == hi {
                    return Ok(HitKind::Always);
                }
            }
            return Ok(HitKind::Guarded(expr.clone()));
        }
        Err(PeelError::UnsupportedSubscript)
    }

    fn section_ref(&self, subs: &[Sub]) -> Ref {
        let rest: Vec<Sub> = subs
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != self.dim)
            .map(|(_, s)| s.clone())
            .collect();
        Ref::Element(self.peeled, rest)
    }
}

/// Peels the section `arr[…, index, …]` (constant `index` in dimension
/// `dim`) into its own array, rewriting every reference program-wide.
pub fn peel(
    prog: &Program,
    arr: ArrayId,
    dim: usize,
    index: i64,
) -> Result<PeelOutcome, PeelError> {
    let decl = prog.array(arr);
    if dim >= decl.dims.len() || index < 0 || index as usize >= decl.dims[dim] {
        return Err(PeelError::BadSection);
    }
    if decl.live_out {
        return Err(PeelError::LiveOut);
    }
    if matches!(decl.init, Init::HashSection { .. } | Init::HashInterleaved { .. }) {
        return Err(PeelError::AlreadyPeeled);
    }

    let mut out = prog.clone();
    // Declare the section array.
    let peel_init = match &decl.init {
        Init::Zero => Init::Zero,
        Init::Hash => Init::HashSection {
            source: decl.source,
            orig_dims: decl.dims.clone(),
            dim,
            index: index as usize,
        },
        Init::HashSection { .. } | Init::HashInterleaved { .. } => {
            unreachable!("rejected above")
        }
    };
    let mut peel_name = format!("{}_peel{}", decl.name, index);
    while out.arrays.iter().any(|a| a.name == peel_name)
        || out.scalars.iter().any(|s| s.name == peel_name)
    {
        peel_name.push('_');
    }
    let source = out.fresh_source();
    let peeled = out.add_array(ArrayDecl {
        name: peel_name,
        dims: decl.dims.iter().enumerate().filter(|&(d, _)| d != dim).map(|(_, &e)| e).collect(),
        init: peel_init,
        live_out: false,
        source,
    });

    let mut ctx = PeelCtx {
        arr,
        dim,
        index,
        peeled,
        var_bounds: Default::default(),
        new_scalars: Vec::new(),
        first_new_scalar: prog.scalars.len(),
    };

    // Dry-run classification so unsupported subscripts fail atomically.
    for nest in &prog.nests {
        ctx.var_bounds = nest_bounds(nest);
        let mut bad = None;
        nest.for_each_ref(&mut |r, _| {
            if let Ref::Element(a, subs) = r {
                if *a == arr {
                    if let Err(e) = ctx.classify(&subs[dim]) {
                        bad = Some(e);
                    }
                }
            }
        });
        if let Some(e) = bad {
            return Err(e);
        }
    }

    let mut nests = Vec::with_capacity(prog.nests.len());
    for nest in &prog.nests {
        ctx.var_bounds = nest_bounds(nest);
        let mut new_nest = nest.clone();
        new_nest.body = rewrite_stmts(&nest.body, &mut ctx);
        nests.push(new_nest);
    }
    out.nests = nests;
    out.scalars.extend(ctx.new_scalars);
    Ok(PeelOutcome { program: out, peeled })
}

fn nest_bounds(nest: &mbb_ir::program::LoopNest) -> std::collections::BTreeMap<VarId, (i64, i64)> {
    nest.loops
        .iter()
        .filter_map(|lp| {
            if lp.step == 1 {
                Some((lp.var, (lp.lo.as_const()?, lp.hi.as_const()?)))
            } else {
                None
            }
        })
        .collect()
}

fn rewrite_stmts(stmts: &[Stmt], ctx: &mut PeelCtx) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for st in stmts {
        match st {
            Stmt::Assign { lhs, rhs } => {
                let mut prelude = Vec::new();
                let new_rhs = rewrite_expr(rhs, ctx, &mut prelude);
                out.extend(prelude);
                out.extend(rewrite_store(lhs, new_rhs, ctx));
            }
            Stmt::If { cond, then_, else_ } => {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_: rewrite_stmts(then_, ctx),
                    else_: rewrite_stmts(else_, ctx),
                });
            }
        }
    }
    out
}

fn rewrite_expr(e: &Expr, ctx: &mut PeelCtx, prelude: &mut Vec<Stmt>) -> Expr {
    match e {
        Expr::Const(_) | Expr::Input(..) => e.clone(),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(rewrite_expr(x, ctx, prelude))),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(l, ctx, prelude)),
            Box::new(rewrite_expr(r, ctx, prelude)),
        ),
        Expr::Load(r) => match r {
            Ref::Element(a, subs) if *a == ctx.arr => {
                match ctx.classify(&subs[ctx.dim]).expect("pre-checked") {
                    HitKind::Always => Expr::Load(ctx.section_ref(subs)),
                    HitKind::Never => e.clone(),
                    HitKind::Guarded(expr) => {
                        let t = ctx.fresh_temp();
                        prelude.push(Stmt::If {
                            cond: Cond::new(expr, CmpOp::Eq, Affine::constant(ctx.index)),
                            then_: vec![Stmt::Assign {
                                lhs: Ref::Scalar(t),
                                rhs: Expr::Load(ctx.section_ref(subs)),
                            }],
                            else_: vec![Stmt::Assign {
                                lhs: Ref::Scalar(t),
                                rhs: Expr::Load(r.clone()),
                            }],
                        });
                        Expr::Load(Ref::Scalar(t))
                    }
                }
            }
            _ => e.clone(),
        },
    }
}

fn rewrite_store(lhs: &Ref, rhs: Expr, ctx: &mut PeelCtx) -> Vec<Stmt> {
    match lhs {
        Ref::Element(a, subs) if *a == ctx.arr => {
            match ctx.classify(&subs[ctx.dim]).expect("pre-checked") {
                HitKind::Always => vec![Stmt::Assign { lhs: ctx.section_ref(subs), rhs }],
                HitKind::Never => vec![Stmt::Assign { lhs: lhs.clone(), rhs }],
                HitKind::Guarded(expr) => {
                    let t = ctx.fresh_temp();
                    vec![
                        Stmt::Assign { lhs: Ref::Scalar(t), rhs },
                        Stmt::If {
                            cond: Cond::new(expr, CmpOp::Eq, Affine::constant(ctx.index)),
                            then_: vec![Stmt::Assign {
                                lhs: ctx.section_ref(subs),
                                rhs: Expr::Load(Ref::Scalar(t)),
                            }],
                            else_: vec![Stmt::Assign {
                                lhs: lhs.clone(),
                                rhs: Expr::Load(Ref::Scalar(t)),
                            }],
                        },
                    ]
                }
            }
        }
        _ => vec![Stmt::Assign { lhs: lhs.clone(), rhs }],
    }
}

/// Result of a contraction.
#[derive(Clone, Debug)]
pub struct ContractOutcome {
    /// The transformed program.
    pub program: Program,
    /// The plan that was applied.
    pub plan: ContractionPlan,
    /// When the array collapsed to a register, the replacing scalar.
    pub scalar_replacement: Option<ScalarId>,
    /// Storage bytes before and after.
    pub bytes_before: usize,
    /// Storage bytes after the contraction.
    pub bytes_after: usize,
}

/// Contracts `arr` per [`mbb_ir::ranges::contraction_plan`]: to a scalar
/// when every live range is intra-iteration, otherwise to a modular buffer.
pub fn contract(prog: &Program, arr: ArrayId) -> Result<ContractOutcome, ContractBlocker> {
    let plan = contraction_plan(prog, arr)?;
    let decl = prog.array(arr);
    let bytes_before = decl.bytes();
    let mut out = prog.clone();

    if plan.is_scalar() {
        let mut name = format!("{}_reg", decl.name);
        while out.scalars.iter().any(|s| s.name == name)
            || out.arrays.iter().any(|a| a.name == name)
        {
            name.push('_');
        }
        let s = out.add_scalar(ScalarDecl { name, init: 0.0, printed: false });
        for nest in &mut out.nests {
            nest.body = nest
                .body
                .iter()
                .map(|st| {
                    st.map_refs(&mut |r| match r {
                        Ref::Element(a, _) if *a == arr => Ref::Scalar(s),
                        other => other.clone(),
                    })
                })
                .collect();
        }
        let out = remove_array(&out, arr);
        Ok(ContractOutcome {
            program: out,
            plan,
            scalar_replacement: Some(s),
            bytes_before,
            bytes_after: 0,
        })
    } else {
        let dims = decl.dims.clone();
        let slots = plan.slot_counts.clone();
        for nest in &mut out.nests {
            nest.body = nest
                .body
                .iter()
                .map(|st| {
                    st.map_refs(&mut |r| match r {
                        Ref::Element(a, subs) if *a == arr => {
                            let new_subs: Vec<Sub> = subs
                                .iter()
                                .enumerate()
                                .map(|(d, s)| {
                                    if slots[d] < dims[d] {
                                        Sub::modular(s.expr.clone(), slots[d] as u64)
                                    } else {
                                        s.clone()
                                    }
                                })
                                .collect();
                            Ref::Element(arr, new_subs)
                        }
                        other => other.clone(),
                    })
                })
                .collect();
        }
        let bytes_after = slots.iter().product::<usize>() * 8;
        out.arrays[arr.0 as usize].dims = slots;
        Ok(ContractOutcome {
            program: out,
            plan,
            scalar_replacement: None,
            bytes_before,
            bytes_after,
        })
    }
}

/// Removes an array declaration, remapping every higher [`ArrayId`].
///
/// # Panics
/// Panics if the array is still referenced.
pub fn remove_array(prog: &Program, arr: ArrayId) -> Program {
    let mut out = prog.clone();
    for nest in &prog.nests {
        nest.for_each_ref(&mut |r, _| {
            assert!(r.array() != Some(arr), "cannot remove a referenced array");
        });
    }
    out.arrays.remove(arr.0 as usize);
    for nest in &mut out.nests {
        nest.body = nest
            .body
            .iter()
            .map(|st| {
                st.map_refs(&mut |r| match r {
                    Ref::Element(a, subs) if a.0 > arr.0 => {
                        Ref::Element(ArrayId(a.0 - 1), subs.clone())
                    }
                    other => other.clone(),
                })
            })
            .collect();
    }
    out
}

/// One action taken by the shrink driver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShrinkAction {
    /// An array was contracted.
    Contracted {
        /// The array's name.
        array: String,
        /// Bytes before.
        from_bytes: usize,
        /// Bytes after (0 when replaced by a scalar).
        to_bytes: usize,
        /// Whether the array became a register-resident scalar.
        to_scalar: bool,
    },
    /// A constant-index section was peeled to unblock contraction.
    Peeled {
        /// The original array's name.
        array: String,
        /// The peeled dimension.
        dim: usize,
        /// The constant index.
        index: i64,
        /// The new section array's name.
        new_array: String,
    },
}

/// The storage-reduction driver: contracts every array it legally can,
/// peeling constant-index sections out of the way when the live-range
/// analysis reports them, until a fixed point.
pub fn shrink_storage(prog: &Program) -> (Program, Vec<ShrinkAction>) {
    let mut cur = prog.clone();
    let mut actions = Vec::new();
    let mut failed_peels: std::collections::BTreeSet<(String, usize, i64)> = Default::default();
    // Each iteration either performs an action or stops; actions are
    // bounded (peels bounded by (array, dim, index) triples; contractions
    // by the array count), so a generous cap guards non-termination bugs.
    for _round in 0..10_000 {
        let mut acted = false;
        for k in 0..cur.arrays.len() {
            let arr = ArrayId(k as u32);
            match contraction_plan(&cur, arr) {
                Ok(plan) if plan.total_slots() * 8 < cur.array(arr).bytes() => {
                    let name = cur.array(arr).name.clone();
                    let oc = contract(&cur, arr).expect("plan already computed");
                    actions.push(ShrinkAction::Contracted {
                        array: name,
                        from_bytes: oc.bytes_before,
                        to_bytes: oc.bytes_after,
                        to_scalar: oc.scalar_replacement.is_some(),
                    });
                    cur = oc.program;
                    acted = true;
                    break;
                }
                Err(ContractBlocker::ConstSubscript { dim, index }) => {
                    // Peeling only ever pays off as a stepping stone to
                    // contraction, which needs the array to be written;
                    // peeling a read-only array just adds storage.
                    let live = mbb_ir::liveness::array_liveness(&cur);
                    if live[arr.0 as usize].written_in.is_empty() {
                        continue;
                    }
                    let name = cur.array(arr).name.clone();
                    if failed_peels.contains(&(name.clone(), dim, index)) {
                        continue;
                    }
                    match peel(&cur, arr, dim, index) {
                        Ok(po) => {
                            let new_name = po.program.array(po.peeled).name.clone();
                            actions.push(ShrinkAction::Peeled {
                                array: name,
                                dim,
                                index,
                                new_array: new_name,
                            });
                            cur = po.program;
                            acted = true;
                            break;
                        }
                        Err(_) => {
                            failed_peels.insert((name, dim, index));
                        }
                    }
                }
                _ => {}
            }
        }
        if !acted {
            break;
        }
    }
    // Sweep arrays that no longer have any reference (e.g. fully peeled
    // or forwarded away) and are not observable output.
    loop {
        let mut referenced = vec![false; cur.arrays.len()];
        for nest in &cur.nests {
            nest.for_each_ref(&mut |r, _| {
                if let Some(a) = r.array() {
                    referenced[a.0 as usize] = true;
                }
            });
        }
        let dead = (0..cur.arrays.len()).find(|&k| !referenced[k] && !cur.arrays[k].live_out);
        match dead {
            Some(k) => {
                actions.push(ShrinkAction::Contracted {
                    array: cur.arrays[k].name.clone(),
                    from_bytes: cur.arrays[k].bytes(),
                    to_bytes: 0,
                    to_scalar: false,
                });
                cur = remove_array(&cur, ArrayId(k as u32));
            }
            None => break,
        }
    }
    (cur, actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;
    use mbb_ir::{interp, validate};

    fn check_equiv(a: &Program, b: &Program, tol: f64) {
        validate::validate(b).unwrap();
        let ra = interp::run(a).unwrap();
        let rb = interp::run(b).unwrap();
        if let Some(d) = ra.observation.diff(&rb.observation, tol) {
            panic!(
                "not equivalent: {d}\n--- before ---\n{}\n--- after ---\n{}",
                mbb_ir::pretty::program(a),
                mbb_ir::pretty::program(b)
            );
        }
    }

    /// tmp[i] carries a value only within one iteration → scalar.
    #[test]
    fn contract_to_scalar() {
        let n = 32usize;
        let mut b = ProgramBuilder::new("cs");
        let x = b.array_in("x", &[n]);
        let tmp = b.array_zero("tmp", &[n]);
        let y = b.array_out("y", &[n]);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(tmp.at([v(i)]), ld(x.at([v(i)])) * lit(2.0)),
                assign(y.at([v(i)]), ld(tmp.at([v(i)])) + lit(1.0)),
            ],
        );
        let p = b.finish();
        let oc = contract(&p, tmp).unwrap();
        assert!(oc.scalar_replacement.is_some());
        assert_eq!(oc.bytes_after, 0);
        assert_eq!(oc.program.arrays.len(), 2, "tmp removed");
        check_equiv(&p, &oc.program, 0.0);
        // The contracted program does fewer array accesses.
        let before = interp::run(&p).unwrap().stats;
        let after = interp::run(&oc.program).unwrap().stats;
        assert!(after.loads < before.loads);
        assert!(after.stores < before.stores);
    }

    /// A carried distance of 1 → 2-slot modular buffer.
    #[test]
    fn contract_to_modular_buffer() {
        let n = 16usize;
        let mut b = ProgramBuilder::new("cm");
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(t.at([v(i)]), lit(1.0) + Expr::Input(mbb_ir::SourceId(7), vec![v(i)])),
                if_then(
                    cmp(v(i), mbb_ir::CmpOp::Ge, c(1)),
                    vec![accumulate(s, ld(t.at([v(i)])) * ld(t.at([v(i) - 1])))],
                ),
            ],
        );
        let p = b.finish();
        let oc = contract(&p, t).unwrap();
        assert!(oc.scalar_replacement.is_none());
        assert_eq!(oc.program.array(t).dims, vec![2]);
        assert_eq!(oc.bytes_after, 16);
        check_equiv(&p, &oc.program, 0.0);
    }

    use mbb_ir::Expr;

    /// Figure-6-flavoured: a 2-D array with a peeled column and a carried
    /// j-distance contracts from N² to ~2N.
    #[test]
    fn shrink_two_dimensional() {
        let n = 10usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("2d");
        let a = b.array_zero("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "k",
            &[(j, 0, hi), (i, 0, hi)],
            vec![
                assign(a.at([v(i), v(j)]), Expr::Input(mbb_ir::SourceId(3), vec![v(i), v(j)])),
                if_then(
                    cmp(v(j), mbb_ir::CmpOp::Ge, c(1)),
                    vec![accumulate(s, ld(a.at([v(i), v(j)])) + ld(a.at([v(i), v(j) - 1])))],
                ),
            ],
        );
        let p = b.finish();
        let before_bytes = p.storage_bytes();
        let (shrunk, actions) = shrink_storage(&p);
        assert!(!actions.is_empty(), "{actions:?}");
        assert!(shrunk.storage_bytes() * 2 < before_bytes, "{}", shrunk.storage_bytes());
        check_equiv(&p, &shrunk, 0.0);
    }

    /// Peeling a constant column used at the end of the loop (the Figure-6
    /// `a[i, 1]` pattern), including the boundary-guard path.
    #[test]
    fn peel_constant_column() {
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("pc");
        let a = b.array_in("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        // Reads both a[i, j] (may hit column 1 when j == 1) and a[i, 1].
        b.nest(
            "k",
            &[(j, 0, hi), (i, 0, hi)],
            vec![accumulate(s, ld(a.at([v(i), v(j)])) * ld(a.at([v(i), c(1)])))],
        );
        let p = b.finish();
        let po = peel(&p, a, 1, 1).unwrap();
        assert_eq!(po.program.arrays.len(), 2);
        assert_eq!(po.program.array(po.peeled).dims, vec![n]);
        check_equiv(&p, &po.program, 0.0);
    }

    #[test]
    fn peel_writes_reach_section() {
        // Writes through a variable subscript must land in the section
        // array when the subscript hits the section.
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("pw");
        let a = b.array_zero("a", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest("w", &[(i, 0, hi)], vec![assign(a.at([v(i)]), lit(3.0) * lit(2.0))]);
        let j = b.var("j");
        b.nest("r", &[(j, 0, 0)], vec![accumulate(s, ld(a.at([c(4)])))]);
        let p = b.finish();
        let po = peel(&p, a, 0, 4).unwrap();
        check_equiv(&p, &po.program, 0.0);
        // The section is rank-0: a single cell.
        assert_eq!(po.program.array(po.peeled).dims, Vec::<usize>::new());
    }

    #[test]
    fn peel_mirrors_live_in_values() {
        // The section is never written, only read: the peeled array's
        // HashSection init must reproduce the original values.
        let n = 6usize;
        let mut b = ProgramBuilder::new("pl");
        let a = b.array_in("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest("r", &[(i, 0, n as i64 - 1)], vec![accumulate(s, ld(a.at([v(i), c(2)])))]);
        let p = b.finish();
        let po = peel(&p, a, 1, 2).unwrap();
        check_equiv(&p, &po.program, 0.0);
    }

    #[test]
    fn peel_refuses_live_out() {
        let mut b = ProgramBuilder::new("plo");
        let a = b.array_out("a", &[4]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, 3)], vec![assign(a.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        assert_eq!(peel(&p, a, 0, 0).err(), Some(PeelError::LiveOut));
        assert_eq!(peel(&p, a, 0, 99).err(), Some(PeelError::BadSection));
        assert_eq!(peel(&p, a, 5, 0).err(), Some(PeelError::BadSection));
    }

    #[test]
    fn remove_array_remaps_ids() {
        let mut b = ProgramBuilder::new("rm");
        let _a = b.array_zero("a", &[4]);
        let c2 = b.array_out("c", &[4]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, 3)], vec![assign(c2.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        let out = remove_array(&p, ArrayId(0));
        assert_eq!(out.arrays.len(), 1);
        assert_eq!(out.arrays[0].name, "c");
        validate::validate(&out).unwrap();
        let r = interp::run(&out).unwrap();
        assert!(r.observation.arrays[0].1.iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic(expected = "referenced")]
    fn remove_referenced_array_panics() {
        let mut b = ProgramBuilder::new("rm2");
        let a = b.array_out("a", &[4]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, 3)], vec![assign(a.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        let _ = remove_array(&p, a);
    }

    #[test]
    fn shrink_driver_reports_actions() {
        // Two contractible temporaries in one nest.
        let n = 16usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("drv");
        let x = b.array_in("x", &[n]);
        let t1 = b.array_zero("t1", &[n]);
        let t2 = b.array_zero("t2", &[n]);
        let y = b.array_out("y", &[n]);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, hi)],
            vec![
                assign(t1.at([v(i)]), ld(x.at([v(i)])) + lit(1.0)),
                assign(t2.at([v(i)]), ld(t1.at([v(i)])) * lit(2.0)),
                assign(y.at([v(i)]), ld(t2.at([v(i)]))),
            ],
        );
        let p = b.finish();
        let (shrunk, actions) = shrink_storage(&p);
        let contracted = actions
            .iter()
            .filter(|a| matches!(a, ShrinkAction::Contracted { to_scalar: true, .. }))
            .count();
        assert_eq!(contracted, 2, "{actions:?}");
        check_equiv(&p, &shrunk, 0.0);
        // Storage: x and y remain.
        assert_eq!(shrunk.arrays.len(), 2);
    }
}
