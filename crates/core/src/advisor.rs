//! Bandwidth-oriented performance advice.
//!
//! The paper's §4 sketches "bandwidth-based performance tuning and
//! prediction" as the user-facing end of the compiler strategy.  This
//! module is that tool: given a program and a machine, it diagnoses the
//! binding resource and enumerates what each transformation could do —
//! including *why* a transformation does not apply, using the analyses'
//! blocker diagnostics, so a user knows what to restructure by hand.

use std::fmt;

use mbb_ir::program::{ArrayId, Program};
use mbb_ir::ranges::{contraction_plan, ContractBlocker};
use mbb_memsim::machine::MachineModel;
use mbb_memsim::timing::Bottleneck;

use crate::balance::{measure_program_balance, ratios, time_program};
use crate::fusion::{build_fusion_graph, greedy_fusion, total_distinct_arrays, Partitioning};
use crate::regroup::regroup_candidates;
use crate::stores::{can_eliminate, StoreBlocker};

/// One piece of advice about a specific array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArrayFinding {
    /// The array can be contracted to this many bytes (0 = a register).
    Contractible {
        /// The array's name.
        array: String,
        /// Current bytes.
        from_bytes: usize,
        /// Bytes after contraction.
        to_bytes: usize,
    },
    /// Contraction is blocked; the blocker says what to change.
    ContractionBlocked {
        /// The array's name.
        array: String,
        /// The analysis blocker.
        blocker: ContractBlocker,
    },
    /// The array's writebacks can be eliminated.
    StoresEliminable {
        /// The array's name.
        array: String,
    },
    /// Store elimination is blocked.
    StoresBlocked {
        /// The array's name.
        array: String,
        /// The blocker.
        blocker: StoreBlocker,
    },
}

/// The full advice report.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Workload name.
    pub program: String,
    /// Machine name.
    pub machine: String,
    /// Which resource binds execution time today.
    pub bottleneck: String,
    /// Demand/supply ratio of the binding channel.
    pub max_ratio: f64,
    /// Upper bound on CPU utilisation.
    pub cpu_utilization_bound: f64,
    /// Array loads before and after greedy fusion (the paper's objective).
    pub fusion_arrays: (u64, u64),
    /// Per-array findings.
    pub arrays: Vec<ArrayFinding>,
    /// Regrouping candidates (member-name lists).
    pub regroup_groups: Vec<Vec<String>>,
    /// Profitable loop interchanges: `(nest name, permutation, memory
    /// balance before → after)`.
    pub interchanges: Vec<(String, Vec<usize>, f64, f64)>,
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "advice for `{}` on {}", self.program, self.machine)?;
        writeln!(
            f,
            "  bottleneck: {} at {:.1}× over supply (CPU ≤ {:.0}%)",
            self.bottleneck,
            self.max_ratio,
            self.cpu_utilization_bound * 100.0
        )?;
        let (before, after) = self.fusion_arrays;
        if after < before {
            writeln!(f, "  fusion: array loads {before} → {after} under greedy fusion")?;
        } else {
            writeln!(f, "  fusion: no profitable merges found")?;
        }
        for a in &self.arrays {
            match a {
                ArrayFinding::Contractible { array, from_bytes, to_bytes } => {
                    writeln!(f, "  shrink `{array}`: {from_bytes} B → {to_bytes} B")?
                }
                ArrayFinding::ContractionBlocked { array, blocker } => {
                    writeln!(f, "  `{array}` not shrinkable: {blocker:?}")?
                }
                ArrayFinding::StoresEliminable { array } => {
                    writeln!(f, "  eliminate stores of `{array}` (writebacks are dead)")?
                }
                ArrayFinding::StoresBlocked { array, blocker } => {
                    writeln!(f, "  stores of `{array}` needed: {blocker:?}")?
                }
            }
        }
        for g in &self.regroup_groups {
            writeln!(f, "  regroup {{{}}} into one interleaved array", g.join(", "))?;
        }
        for (nest, perm, before, after) in &self.interchanges {
            writeln!(
                f,
                "  interchange `{nest}` to order {perm:?}: memory balance {before:.2} → {after:.2} B/flop"
            )?;
        }
        Ok(())
    }
}

/// Produces advice for a program on a machine.
///
/// Array findings are computed on the *greedily fused* program — fusion is
/// what localises live ranges, so pre-fusion blockers like
/// `ContractBlocker::NotLocal` would mislead.
pub fn advise(prog: &Program, machine: &MachineModel) -> Result<Advice, String> {
    let balance = measure_program_balance(prog, machine).map_err(|e| e.to_string())?;
    let r = ratios(&balance, machine);
    let pred = time_program(prog, machine).map_err(|e| e.to_string())?;
    let bottleneck = match pred.bottleneck {
        Bottleneck::Compute => "compute".to_string(),
        Bottleneck::Channel(k) if k + 1 == machine.bandwidth_mbs.len() => "memory".to_string(),
        Bottleneck::Channel(0) => "register bandwidth".to_string(),
        Bottleneck::Channel(k) => format!("cache level {k} bandwidth"),
    };

    let graph = build_fusion_graph(prog);
    let unfused = total_distinct_arrays(&graph, &Partitioning::unfused(graph.n));
    let part = greedy_fusion(&graph);
    let fused_cost = total_distinct_arrays(&graph, &part);
    let fused_prog = crate::fusion::apply(prog, &part).unwrap_or_else(|_| prog.clone());

    let mut arrays = Vec::new();
    for k in 0..fused_prog.arrays.len() {
        let id = ArrayId(k as u32);
        let decl = fused_prog.array(id);
        match contraction_plan(&fused_prog, id) {
            Ok(plan) if plan.total_slots() * 8 < decl.bytes() => {
                arrays.push(ArrayFinding::Contractible {
                    array: decl.name.clone(),
                    from_bytes: decl.bytes(),
                    to_bytes: if plan.is_scalar() { 0 } else { plan.total_slots() * 8 },
                });
                continue;
            }
            Ok(_) => {}
            Err(blocker) => {
                // Only surface blockers for arrays someone might expect to
                // shrink: written, not observable.
                if !decl.live_out && !matches!(blocker, ContractBlocker::LiveInRead) {
                    arrays.push(ArrayFinding::ContractionBlocked {
                        array: decl.name.clone(),
                        blocker,
                    });
                }
            }
        }
        match can_eliminate(&fused_prog, id) {
            Ok(_) => arrays.push(ArrayFinding::StoresEliminable { array: decl.name.clone() }),
            Err(StoreBlocker::NotSingleWriterNest) | Err(StoreBlocker::LiveOut) => {}
            Err(blocker) => {
                arrays.push(ArrayFinding::StoresBlocked { array: decl.name.clone(), blocker })
            }
        }
    }

    // Loop-order tuning: worth reporting when a legal permutation cuts the
    // memory balance by ≥ 10 %.
    let mut interchanges = Vec::new();
    let base_memory = balance.memory();
    for k in 0..prog.nests.len() {
        let depth = prog.nests[k].loops.len();
        if !(2..=4).contains(&depth) {
            continue;
        }
        let (_, perm, cost) = crate::interchange::auto_interchange(prog, k, machine);
        let identity: Vec<usize> = (0..depth).collect();
        if perm != identity && cost < 0.9 * base_memory {
            interchanges.push((prog.nests[k].name.clone(), perm, base_memory, cost));
        }
    }

    let regroup_groups = regroup_candidates(prog)
        .into_iter()
        .map(|g| g.into_iter().map(|id| prog.array(id).name.clone()).collect())
        .collect();

    Ok(Advice {
        program: prog.name.clone(),
        machine: machine.name.clone(),
        bottleneck,
        max_ratio: r.max_ratio,
        cpu_utilization_bound: r.cpu_utilization_bound,
        fusion_arrays: (unfused, fused_cost),
        arrays,
        regroup_groups,
        interchanges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;

    #[test]
    fn advises_figure7_store_elimination() {
        let n = 4096usize;
        let mut b = ProgramBuilder::new("fig7");
        let res = b.array_in("res", &[n]);
        let data = b.array_in("data", &[n]);
        let sum = b.scalar_printed("sum", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "update",
            &[(i, 0, n as i64 - 1)],
            vec![assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)])))],
        );
        b.nest("reduce", &[(j, 0, n as i64 - 1)], vec![accumulate(sum, ld(res.at([v(j)])))]);
        let p = b.finish();
        let a = advise(&p, &MachineModel::origin2000()).unwrap();
        assert_eq!(a.bottleneck, "memory");
        assert!(a.max_ratio > 5.0);
        assert_eq!(a.fusion_arrays, (3, 2));
        assert!(
            a.arrays
                .iter()
                .any(|f| matches!(f, ArrayFinding::StoresEliminable { array } if array == "res")),
            "{:?}",
            a.arrays
        );
        let text = a.to_string();
        assert!(text.contains("eliminate stores of `res`"), "{text}");
    }

    #[test]
    fn advises_contraction_of_temporaries() {
        let n = 1024usize;
        let mut b = ProgramBuilder::new("tmp");
        let x = b.array_in("x", &[n]);
        let t = b.array_zero("t", &[n]);
        let y = b.array_out("y", &[n]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest("p", &[(i, 0, n as i64 - 1)], vec![assign(t.at([v(i)]), ld(x.at([v(i)])))]);
        b.nest("c", &[(j, 0, n as i64 - 1)], vec![assign(y.at([v(j)]), ld(t.at([v(j)])))]);
        let p = b.finish();
        let a = advise(&p, &MachineModel::origin2000()).unwrap();
        assert!(a
            .arrays
            .iter()
            .any(|f| matches!(f, ArrayFinding::Contractible { array, to_bytes: 0, .. } if array == "t")),
            "{:?}", a.arrays);
    }

    #[test]
    fn advises_regrouping_of_co_accessed_streams() {
        let n = 256usize;
        let mut b = ProgramBuilder::new("rg");
        let x = b.array_in("x", &[n]);
        let y = b.array_in("y", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![accumulate(s, ld(x.at([v(i)])) * ld(y.at([v(i)])))],
        );
        let p = b.finish();
        let a = advise(&p, &MachineModel::origin2000()).unwrap();
        assert_eq!(a.regroup_groups, vec![vec!["x".to_string(), "y".to_string()]]);
        assert!(a.to_string().contains("regroup {x, y}"));
    }

    #[test]
    fn live_out_array_produces_no_noise() {
        let n = 64usize;
        let mut b = ProgramBuilder::new("lo");
        let y = b.array_out("y", &[n]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, n as i64 - 1)], vec![assign(y.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        let a = advise(&p, &MachineModel::origin2000()).unwrap();
        assert!(a.arrays.is_empty(), "{:?}", a.arrays);
    }
}

#[cfg(test)]
mod interchange_advice_tests {
    use super::*;
    use mbb_ir::builder::*;

    #[test]
    fn advises_interchange_for_bad_loop_order() {
        // Column-major array walked row-major: the tuner should flip it.
        let n = 64usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("rowmajor");
        let a = b.array_in("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        // i outer, j inner → inner stride n (bad).
        b.nest("walk", &[(i, 0, hi), (j, 0, hi)], vec![accumulate(s, ld(a.at([v(i), v(j)])))]);
        let p = b.finish();
        let m = MachineModel::origin2000().scaled_levels(&[16, 64]);
        let advice = advise(&p, &m).unwrap();
        assert_eq!(advice.interchanges.len(), 1, "{advice}");
        let (_, perm, before, after) = &advice.interchanges[0];
        assert_eq!(perm, &vec![1, 0]);
        assert!(after * 2.0 < *before, "{before} -> {after}");
        assert!(advice.to_string().contains("interchange"), "{advice}");
    }

    #[test]
    fn no_interchange_advice_when_order_is_good() {
        let n = 64usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("colmajor");
        let a = b.array_in("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest("walk", &[(j, 0, hi), (i, 0, hi)], vec![accumulate(s, ld(a.at([v(i), v(j)])))]);
        let p = b.finish();
        let m = MachineModel::origin2000().scaled_levels(&[16, 64]);
        let advice = advise(&p, &m).unwrap();
        assert!(advice.interchanges.is_empty(), "{advice}");
    }
}
