//! IR-level loop transformations: fusion application and loop peeling.
//!
//! These are the mechanical halves of §3.1: once a partitioning has been
//! chosen on the fusion graph, [`fuse_nests`] produces the fused program;
//! [`peel_front_iterations`] splits boundary iterations off a nest so that
//! nests with slightly different ranges (Figure 6's init loop over
//! `j = 1..N` against the compute loop over `j = 2..N`) can be made
//! conformable first.

use mbb_ir::deps::{dependences, fusion_legal, FusionBlocker};
use mbb_ir::program::{LoopNest, Program, VarId};

/// Why a fusion could not be applied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuseError {
    /// The groups are not a partition of the nest indices.
    NotAPartition,
    /// Two nests in one group may not be fused (with the pairwise reason).
    Illegal {
        /// The offending pair (program-order indices).
        pair: (usize, usize),
        /// The pairwise blocker.
        blocker: FusionBlocker,
    },
    /// A dependence flows backwards across the group sequence.
    OrderViolation {
        /// The dependence source nest.
        src: usize,
        /// The dependence destination nest.
        dst: usize,
    },
}

/// Fuses the program's nests according to `groups`: one output nest per
/// group, in the given group order; bodies are concatenated in
/// program order within each group, with loop variables renamed onto the
/// group leader's.
///
/// Checks pairwise fusibility inside groups and forward dependence flow
/// across groups; returns the fused program or the reason it is illegal.
pub fn fuse_nests(prog: &Program, groups: &[Vec<usize>]) -> Result<Program, FuseError> {
    // --- A partition of 0..n, each group sorted ---------------------------
    let n = prog.nests.len();
    let mut seen = vec![false; n];
    for g in groups {
        for &k in g {
            if k >= n || seen[k] {
                return Err(FuseError::NotAPartition);
            }
            seen[k] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(FuseError::NotAPartition);
    }

    // --- Pairwise fusibility within groups --------------------------------
    for g in groups {
        let mut sorted = g.clone();
        sorted.sort_unstable();
        for (i, &a) in sorted.iter().enumerate() {
            for &b in &sorted[i + 1..] {
                if let Err(blocker) = fusion_legal(prog, a, b) {
                    return Err(FuseError::Illegal { pair: (a, b), blocker });
                }
            }
        }
    }

    // --- Dependences must flow forward across the group sequence ----------
    let mut group_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &k in g {
            group_of[k] = gi;
        }
    }
    let deps = dependences(prog);
    for e in &deps.edges {
        if group_of[e.src] > group_of[e.dst] {
            return Err(FuseError::OrderViolation { src: e.src, dst: e.dst });
        }
    }

    // --- Build the fused program ------------------------------------------
    let mut out = prog.clone();
    out.nests.clear();
    out.fusion_preventing.clear();
    for g in groups {
        let mut sorted = g.clone();
        sorted.sort_unstable();
        let lead = &prog.nests[sorted[0]];
        let mut fused = LoopNest {
            name: sorted.iter().map(|&k| prog.nests[k].name.as_str()).collect::<Vec<_>>().join("+"),
            loops: lead.loops.clone(),
            body: lead.body.clone(),
        };
        for &k in &sorted[1..] {
            let nest = &prog.nests[k];
            // Rename the nest's loop variables onto the leader's, going
            // through fresh intermediates so permuted variable sets cannot
            // collide mid-substitution.
            let fresh: Vec<VarId> = nest
                .loops
                .iter()
                .map(|lp| out.add_var(format!("{}__tmp", prog.var_name(lp.var))))
                .collect();
            let mut body = nest.body.clone();
            for (lp, &f) in nest.loops.iter().zip(&fresh) {
                body = body.iter().map(|s| s.rename(lp.var, f)).collect();
            }
            for (lead_lp, &f) in lead.loops.iter().zip(&fresh) {
                body = body.iter().map(|s| s.rename(f, lead_lp.var)).collect();
            }
            fused.body.extend(body);
        }
        out.nests.push(fused);
    }
    Ok(out)
}

/// Splits the first `count` iterations of nest `nest_idx`'s *outermost*
/// loop into a separate preceding nest (classic loop peeling), enabling
/// fusion of nests whose ranges differ by a few boundary iterations.
///
/// # Panics
/// Panics if the outermost bounds are not constants, the step is not 1, or
/// `count` is not smaller than the trip count.
pub fn peel_front_iterations(prog: &Program, nest_idx: usize, count: u64) -> Program {
    let mut out = prog.clone();
    let nest = &prog.nests[nest_idx];
    let outer = &nest.loops[0];
    let lo = outer.lo.as_const().expect("constant lower bound required for peeling");
    let hi = outer.hi.as_const().expect("constant upper bound required for peeling");
    assert_eq!(outer.step, 1, "peeling requires unit step");
    let trips = (hi - lo + 1).max(0) as u64;
    assert!(count < trips, "cannot peel {count} of {trips} iterations");

    let mut front = nest.clone();
    front.name = format!("{}_peel", nest.name);
    front.loops[0].hi = mbb_ir::Affine::constant(lo + count as i64 - 1);
    let mut rest = nest.clone();
    rest.loops[0].lo = mbb_ir::Affine::constant(lo + count as i64);

    out.nests[nest_idx] = front;
    out.nests.insert(nest_idx + 1, rest);
    // Re-index explicit fusion-preventing edges past the insertion point.
    out.fusion_preventing = prog
        .fusion_preventing
        .iter()
        .map(|&(a, b)| {
            let bump = |x: usize| if x > nest_idx { x + 1 } else { x };
            (bump(a), bump(b))
        })
        .collect();
    out
}

impl std::fmt::Display for FuseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseError::NotAPartition => write!(f, "groups are not a partition of the nests"),
            FuseError::Illegal { pair, blocker } => {
                write!(f, "nests {} and {} may not fuse: {blocker:?}", pair.0, pair.1)
            }
            FuseError::OrderViolation { src, dst } => write!(
                f,
                "dependence from nest {src} to nest {dst} flows backwards across the groups"
            ),
        }
    }
}

impl std::error::Error for FuseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;
    use mbb_ir::interp;

    /// Two conforming producer/consumer loops plus a reduction loop.
    fn three_loop_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("three");
        let a = b.array_zero("a", &[n]);
        let out = b.array_out("o", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        let k = b.var("k");
        let hi = n as i64 - 1;
        b.nest("produce", &[(i, 0, hi)], vec![assign(a.at([v(i)]), lit(2.0))]);
        b.nest("consume", &[(j, 0, hi)], vec![assign(out.at([v(j)]), ld(a.at([v(j)])) * lit(3.0))]);
        b.nest("reduce", &[(k, 0, hi)], vec![accumulate(s, ld(out.at([v(k)])))]);
        b.finish()
    }

    #[test]
    fn fuse_all_three_preserves_semantics() {
        let p = three_loop_program(32);
        let before = interp::run(&p).unwrap();
        let fused = fuse_nests(&p, &[vec![0, 1, 2]]).unwrap();
        assert_eq!(fused.nests.len(), 1);
        mbb_ir::validate(&fused).unwrap();
        let after = interp::run(&fused).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 1e-12));
        // Same work, one nest.
        assert_eq!(before.stats.flops, after.stats.flops);
    }

    #[test]
    fn fuse_respects_group_sequence() {
        let p = three_loop_program(16);
        let fused = fuse_nests(&p, &[vec![0], vec![1, 2]]).unwrap();
        assert_eq!(fused.nests.len(), 2);
        let after = interp::run(&fused).unwrap();
        let before = interp::run(&p).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 1e-12));
    }

    #[test]
    fn backward_dependence_rejected() {
        let p = three_loop_program(16);
        // Putting the consumer's group before the producer's violates the
        // flow dependence.
        let err = fuse_nests(&p, &[vec![1, 2], vec![0]]).unwrap_err();
        assert!(matches!(err, FuseError::OrderViolation { .. }));
    }

    #[test]
    fn non_partition_rejected() {
        let p = three_loop_program(16);
        assert!(matches!(fuse_nests(&p, &[vec![0, 1]]), Err(FuseError::NotAPartition)));
        assert!(matches!(fuse_nests(&p, &[vec![0, 0, 1, 2]]), Err(FuseError::NotAPartition)));
    }

    #[test]
    fn illegal_pair_reported() {
        let mut p = three_loop_program(16);
        p.fusion_preventing.push((0, 1));
        let err = fuse_nests(&p, &[vec![0, 1], vec![2]]).unwrap_err();
        assert_eq!(err, FuseError::Illegal { pair: (0, 1), blocker: FusionBlocker::Explicit });
    }

    #[test]
    fn fusion_renames_permuted_loop_vars() {
        // Nest 2 uses (x, y) where nest 1 uses (y, x)-shaped headers; the
        // fresh-variable renaming must not tangle them.
        let n = 8usize;
        let mut b = ProgramBuilder::new("perm");
        let a = b.array_zero("a", &[n, n]);
        let o = b.array_out("o", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        let (x, y) = (b.var("x"), b.var("y"));
        let hi = n as i64 - 1;
        b.nest("w", &[(j, 0, hi), (i, 0, hi)], vec![assign(a.at([v(i), v(j)]), lit(1.0))]);
        b.nest(
            "r",
            &[(y, 0, hi), (x, 0, hi)],
            vec![assign(o.at([v(x), v(y)]), ld(a.at([v(x), v(y)])))],
        );
        let p = b.finish();
        let before = interp::run(&p).unwrap();
        let fused = fuse_nests(&p, &[vec![0, 1]]).unwrap();
        mbb_ir::validate(&fused).unwrap();
        let after = interp::run(&fused).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn peeling_preserves_semantics_and_enables_fusion() {
        // init over 0..n-1, compute over 1..n-1: peel one iteration of init,
        // then the remainders conform and fuse.
        let n = 24usize;
        let mut b = ProgramBuilder::new("peel");
        let a = b.array_zero("a", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        b.nest("init", &[(i, 0, n as i64 - 1)], vec![assign(a.at([v(i)]), lit(1.0))]);
        b.nest("use", &[(j, 1, n as i64 - 1)], vec![accumulate(s, ld(a.at([v(j) - 1])))]);
        let p = b.finish();
        let before = interp::run(&p).unwrap();

        let peeled = peel_front_iterations(&p, 0, 1);
        assert_eq!(peeled.nests.len(), 3);
        let mid = interp::run(&peeled).unwrap();
        assert!(before.observation.approx_eq(&mid.observation, 0.0));

        // Now nests 1 ("init" rest, 1..n-1) and 2 ("use", 1..n-1) conform.
        let fused = fuse_nests(&peeled, &[vec![0], vec![1, 2]]).unwrap();
        let after = interp::run(&fused).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn peeling_reindexes_fusion_preventing_edges() {
        let mut p = three_loop_program(8);
        p.fusion_preventing.push((0, 2));
        let peeled = peel_front_iterations(&p, 1, 2);
        assert!(peeled.fusion_prevented(0, 3));
        assert!(!peeled.fusion_prevented(0, 2));
    }
}
