//! The one canonicalizer every content-addressed cache keys through.
//!
//! Three layers hash programs: the server's result cache, the search
//! crate's score cache, and (transitively) the CLI, which delegates to
//! the server's analysis entry points.  Before this module each of them
//! could reasonably have pretty-printed "its own way" — the latent
//! ordering hazard being that two byte-different renderings of the same
//! AST silently split one logical cache line into two, defeating the
//! cross-search work sharing the caches exist for.  Every key is
//! therefore built from exactly two functions here: [`program`] (the
//! canonical text) and [`cache_key`] (the FNV-1a composition), and a
//! workspace test pins the cli/server/search keys byte-for-byte.

use mbb_ir::{pretty, Program};

/// The canonical cache-key form of a program: the pretty-printer's stable
/// rendering of the parsed AST.  Formatting differences in source text
/// (whitespace, comments) collapse onto one canonical string, and the
/// round-trip property (`parse(pretty(p)) == p`, fuzzed continuously)
/// makes the rendering injective on validated programs.
pub fn program(p: &Program) -> String {
    pretty::program(p)
}

/// 64-bit FNV-1a over `bytes` — the workspace's one content-address hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Composes a cache key from its addressed parts: the request kind, the
/// machine name, a stable flags rendering and the canonical program text,
/// NUL-separated so no field can masquerade as a neighbour.
pub fn cache_key(kind: &str, machine: &str, flags: &str, canon: &str) -> u64 {
    fnv1a(format!("{kind}\0{machine}\0{flags}\0{canon}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors (64-bit).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn formatting_noise_collapses_onto_one_key() {
        let a = mbb_ir::parse::parse("array a[8]\nfor i = 0, 7\n  a[i] = 1\nend for\n").unwrap();
        let b = mbb_ir::parse::parse("array a[8]   \n\nfor i = 0, 7\n    a[ i ] = 1\nend for\n")
            .unwrap();
        assert_eq!(program(&a), program(&b));
        assert_eq!(
            cache_key("optimize", "m", "f", &program(&a)),
            cache_key("optimize", "m", "f", &program(&b))
        );
    }

    #[test]
    fn every_key_part_is_significant() {
        let base = cache_key("k", "m", "f", "p");
        assert_ne!(base, cache_key("x", "m", "f", "p"));
        assert_ne!(base, cache_key("k", "x", "f", "p"));
        assert_ne!(base, cache_key("k", "m", "x", "p"));
        assert_ne!(base, cache_key("k", "m", "f", "x"));
        // NUL separation: shifting a byte across a field boundary must
        // change the key.
        assert_ne!(cache_key("ab", "c", "", ""), cache_key("a", "bc", "", ""));
    }
}
