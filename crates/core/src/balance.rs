//! The balance performance model (§2, Figures 1 and 2).
//!
//! *Program balance* is the bytes of data transfer a program demands per
//! floating-point operation, on every channel of the memory hierarchy;
//! *machine balance* is the bytes the machine can supply per peak flop.
//! Dividing demand by supply gives the per-channel pressure ratios of
//! Figure 2, whose maximum bounds attainable CPU utilisation from above:
//! a program demanding 8.4 bytes/flop of memory traffic on a machine
//! supplying 0.8 can keep the CPU busy at most 9.5% of the time,
//! *regardless of latency tolerance*.
//!
//! Program balance here is measured exactly as the paper did on the R10K —
//! from event counts — except the counters are the `mbb-memsim` simulator
//! fed by the `mbb-ir` interpreter (or by a traced native kernel).

use mbb_ir::interp::{InterpError, Interpreter, LayoutOpts};
use mbb_ir::program::Program;
use mbb_ir::trace::{AccessSink, Buffered};
use mbb_memsim::hierarchy::TrafficReport;
use mbb_memsim::machine::MachineModel;
use mbb_memsim::timing::{predict, Prediction};

/// Measured program balance on a specific machine's cache geometry.
#[derive(Clone, Debug)]
pub struct ProgramBalance {
    /// Workload name.
    pub name: String,
    /// Bytes per flop on each channel (same indexing as
    /// [`MachineModel::bandwidth_mbs`]: registers↔L1 first, memory last).
    pub bytes_per_flop: Vec<f64>,
    /// Total flops executed.
    pub flops: u64,
    /// The underlying traffic report.
    pub report: TrafficReport,
}

impl ProgramBalance {
    /// Balance of the memory channel (the last row the paper tabulates).
    pub fn memory(&self) -> f64 {
        *self.bytes_per_flop.last().unwrap_or(&0.0)
    }
}

/// Demand/supply ratios (Figure 2) and the utilisation bound they imply.
#[derive(Clone, Debug)]
pub struct BalanceRatios {
    /// Per-channel demand ÷ supply.
    pub ratios: Vec<f64>,
    /// The largest ratio — the binding constraint.
    pub max_ratio: f64,
    /// Upper bound on CPU utilisation: `1 / max(1, max_ratio)`.
    pub cpu_utilization_bound: f64,
}

/// Computes Figure-2 ratios from a measured program balance and a machine.
pub fn ratios(balance: &ProgramBalance, machine: &MachineModel) -> BalanceRatios {
    let supply = machine.balance();
    let ratios: Vec<f64> = balance
        .bytes_per_flop
        .iter()
        .zip(&supply)
        .map(|(&d, &s)| if s > 0.0 { d / s } else { f64::INFINITY })
        .collect();
    let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
    BalanceRatios { ratios, max_ratio, cpu_utilization_bound: 1.0 / max_ratio.max(1.0) }
}

/// Builds a [`ProgramBalance`] from a finished hierarchy run.
fn balance_from_report(name: &str, report: TrafficReport, flops: u64) -> ProgramBalance {
    let f = flops.max(1) as f64;
    ProgramBalance {
        name: name.into(),
        bytes_per_flop: report.channel_bytes.iter().map(|&b| b as f64 / f).collect(),
        flops,
        report,
    }
}

/// Measures the balance of an IR program by interpretation against the
/// machine's simulated hierarchy (including the final writeback flush).
///
/// ```
/// use mbb_ir::builder::*;
/// use mbb_memsim::machine::MachineModel;
///
/// // `sum += a[i]` over an out-of-cache array demands 8 bytes per flop
/// // on every channel.
/// let n = 1 << 20;
/// let mut b = ProgramBuilder::new("sum");
/// let a = b.array_in("a", &[n]);
/// let s = b.scalar_printed("sum", 0.0);
/// let i = b.var("i");
/// b.nest("k", &[(i, 0, n as i64 - 1)], vec![accumulate(s, ld(a.at([v(i)])))]);
///
/// let m = MachineModel::origin2000();
/// let bal = mbb_core::balance::measure_program_balance(&b.finish(), &m).unwrap();
/// assert!((bal.memory() - 8.0).abs() < 0.2);
/// // Demand is 10× the Origin's 0.8 B/flop supply: CPU ≤ ~10%.
/// let r = mbb_core::balance::ratios(&bal, &m);
/// assert!(r.cpu_utilization_bound < 0.11);
/// ```
pub fn measure_program_balance(
    prog: &Program,
    machine: &MachineModel,
) -> Result<ProgramBalance, InterpError> {
    measure_program_balance_with_layout(prog, machine, LayoutOpts::default())
}

/// As [`measure_program_balance`], with an explicit array layout (used by
/// the conflict-sensitivity experiments).
pub fn measure_program_balance_with_layout(
    prog: &Program,
    machine: &MachineModel,
    layout: LayoutOpts,
) -> Result<ProgramBalance, InterpError> {
    let mut h = machine.hierarchy();
    let run = {
        // The "interp" span covers the whole interpretation; inside it the
        // interpreter opens one "nest:<name>" span per loop nest, so the
        // nest spans plus the sibling "flush" below partition this run's
        // traffic exactly (see `crate::profile`).
        let _s = mbb_obs::span!("interp");
        Interpreter::with_layout(prog, layout).run(&mut h)?
    };
    {
        let _s = mbb_obs::span!("flush");
        h.flush();
    }
    Ok(balance_from_report(&prog.name, h.report(), run.stats.flops))
}

/// Measures the balance of a *native* traced kernel: `kernel` receives the
/// sink and returns its flop count.
pub fn measure_native_balance(
    name: &str,
    machine: &MachineModel,
    kernel: impl FnOnce(&mut dyn AccessSink) -> u64,
) -> ProgramBalance {
    let mut h = machine.hierarchy();
    // Native kernels emit one event at a time; batch them on the way in.
    let flops = {
        let _s = mbb_obs::span!("native");
        let mut buffered = Buffered::new(&mut h);
        let flops = kernel(&mut buffered);
        drop(buffered);
        mbb_obs::add_flops(flops);
        flops
    };
    {
        let _s = mbb_obs::span!("flush");
        h.flush();
    }
    balance_from_report(name, h.report(), flops)
}

/// Predicted execution of an IR program on a machine: simulate the traffic,
/// then apply the bottleneck timing model.
pub fn time_program(prog: &Program, machine: &MachineModel) -> Result<Prediction, InterpError> {
    let b = measure_program_balance(prog, machine)?;
    Ok(predict(machine, &b.report, b.flops))
}

/// The paper's *measured* machine balance row: register bandwidth from the
/// hardware specification, cache bandwidth from (simulated) CacheBench,
/// memory bandwidth from (simulated) STREAM — all divided by peak Mflop/s.
pub fn measured_machine_balance(machine: &MachineModel) -> Vec<f64> {
    let mut out = Vec::with_capacity(machine.bandwidth_mbs.len());
    // Register channel: specification.
    out.push(machine.bandwidth_mbs[0] / machine.peak_mflops);
    // Intermediate cache channels: CacheBench plateaus.
    let sweep = mbb_memsim::cachebench::per_level_bandwidth(machine);
    for point in sweep.iter().take(machine.caches.len()).skip(1) {
        out.push(point.mbs / machine.peak_mflops);
    }
    // Memory channel: STREAM channel rate.
    let stream = mbb_memsim::stream::run_default(machine);
    out.push(stream.sustainable_channel_mbs() / machine.peak_mflops);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;

    /// The §2.1 read-only loop: `sum += a[i]`.
    fn read_loop(n: usize) -> Program {
        let mut b = ProgramBuilder::new("read");
        let a = b.array_in("a", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest("r", &[(i, 0, n as i64 - 1)], vec![accumulate(s, ld(a.at([v(i)])))]);
        b.finish()
    }

    /// The §2.1 update loop: `a[i] = a[i] + 0.4`.
    fn update_loop(n: usize) -> Program {
        let mut b = ProgramBuilder::new("update");
        let a = b.array_out("a", &[n]);
        let i = b.var("i");
        b.nest(
            "w",
            &[(i, 0, n as i64 - 1)],
            vec![assign(a.at([v(i)]), ld(a.at([v(i)])) + lit(0.4))],
        );
        b.finish()
    }

    #[test]
    fn read_loop_balance_is_eight_bytes_per_flop() {
        // One 8-byte load and one flop per iteration, everywhere in the
        // hierarchy (stride-one, out of cache).
        let m = MachineModel::origin2000();
        let n = 1 << 20; // 8 MB, exceeds the 4 MB L2
        let b = measure_program_balance(&read_loop(n), &m).unwrap();
        assert_eq!(b.flops, n as u64);
        for (k, &bpf) in b.bytes_per_flop.iter().enumerate() {
            assert!((bpf - 8.0).abs() < 0.2, "channel {k}: {bpf}");
        }
    }

    #[test]
    fn update_loop_demands_twice_the_memory_bandwidth() {
        let m = MachineModel::origin2000();
        let n = 1 << 20;
        let read = measure_program_balance(&read_loop(n), &m).unwrap();
        let update = measure_program_balance(&update_loop(n), &m).unwrap();
        // Per flop: read loop moves 8 B on the memory channel, the update
        // loop 16 B (fetch + writeback).
        let ratio = update.memory() / read.memory();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn ratios_and_utilization_bound() {
        let m = MachineModel::origin2000();
        let n = 1 << 20;
        let b = measure_program_balance(&read_loop(n), &m).unwrap();
        let r = ratios(&b, &m);
        // Memory: 8 B/flop demand vs 0.8 supply → ratio 10, ≤10% CPU.
        assert!((r.ratios[2] - 10.0).abs() < 0.3, "{:?}", r.ratios);
        assert!(r.max_ratio >= r.ratios[2] - 1e-9);
        assert!((r.cpu_utilization_bound - 1.0 / r.max_ratio).abs() < 1e-12);
    }

    #[test]
    fn timing_matches_section_2_1() {
        // Paper §2.1 (Origin2000, N = 2 000 000): read loop 0.054 s, update
        // loop 0.104 s — the update loop takes ~2× because it consumes
        // twice the memory bandwidth.
        let m = MachineModel::origin2000();
        let n = 2_000_000;
        let t_read = time_program(&read_loop(n), &m).unwrap().time_s;
        let t_update = time_program(&update_loop(n), &m).unwrap().time_s;
        assert!((t_read - 0.054).abs() < 0.003, "read {t_read}");
        assert!((t_update - 0.104).abs() < 0.006, "update {t_update}");
        let ratio = t_update / t_read;
        assert!((ratio - 2.0).abs() < 0.12, "ratio {ratio}");
    }

    #[test]
    fn native_kernel_balance() {
        use mbb_memsim::arena::{Arena, TracedArray};
        let m = MachineModel::origin2000();
        let n = 1 << 18;
        let b = measure_native_balance("native_sum", &m, |sink| {
            let mut arena = Arena::new();
            let a = TracedArray::from_fn(&mut arena, n, |k| k as f64);
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.get(k, sink);
            }
            std::hint::black_box(acc);
            n as u64
        });
        assert!((b.bytes_per_flop[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn measured_machine_balance_close_to_spec() {
        let m = MachineModel::origin2000();
        let measured = measured_machine_balance(&m);
        let spec = m.balance();
        assert_eq!(measured.len(), spec.len());
        // Register row is the spec by construction; memory row within 10%.
        assert!((measured[0] - spec[0]).abs() < 1e-9);
        let mem_err = (measured[2] - spec[2]).abs() / spec[2];
        assert!(mem_err < 0.1, "measured {} vs spec {}", measured[2], spec[2]);
    }
}
