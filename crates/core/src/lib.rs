//! # mbb-core — the paper's contribution
//!
//! Ding & Kennedy's IPPS 2000 paper contributes a bandwidth-based
//! performance model and three compiler transformations.  This crate is
//! both, built on the `mbb-ir` program representation, the `mbb-memsim`
//! simulator and the `mbb-hypergraph` minimal-cut machinery:
//!
//! * [`balance`] — program balance (bytes per flop demanded on every
//!   memory-hierarchy channel), machine balance (bytes per flop supplied),
//!   demand/supply ratios and the CPU-utilisation bound (§2, Figures 1–2);
//! * [`fusion`] — bandwidth-minimal loop fusion: the hypergraph
//!   formulation, the polynomial two-partitioning algorithm, heuristics for
//!   the NP-complete multi-partition case, and the classical edge-weighted
//!   formulation of Gao et al. / Kennedy–McKinley as the baseline the paper
//!   argues against (§3.1);
//! * [`transform`] — the IR-level fusion transformation (plus loop peeling
//!   for alignment);
//! * [`storage`] — storage reduction: array peeling and array shrinking
//!   (contraction to modular buffers or scalars), §3.2 / Figure 6;
//! * [`stores`] — store elimination: removal of memory writebacks whose
//!   values are consumed in-iteration and never needed again, §3.3 /
//!   Figures 7–8;
//! * [`pipeline`] — the complete compiler strategy (fuse → shrink/peel →
//!   eliminate stores) with dynamic equivalence verification.

pub mod advisor;
pub mod balance;
pub mod canon;
pub mod distribute;
pub mod embed;
pub mod expand;
pub mod fusion;
pub mod interchange;
pub mod mutate;
pub mod pipeline;
pub mod profile;
pub mod regroup;
pub mod storage;
pub mod stores;
pub mod transform;

pub use balance::{measure_program_balance, BalanceRatios, ProgramBalance};
pub use fusion::{build_fusion_graph, FusionGraph, Partitioning};
pub use pipeline::{optimize, verify_equivalent, OptimizeOptions, OptimizeOutcome};
