//! Scalar expansion — the inverse of contraction.
//!
//! A scalar temporary carried through a loop body serialises the body: the
//! conservative statement-dependence analysis must keep every statement
//! touching it together, which blocks loop distribution.  Expanding the
//! scalar into a per-iteration array cell removes the false dependence:
//!
//! ```text
//! t = a[i] * 2            t_x[i] = a[i] * 2
//! b[i] = t + 1      →     b[i]   = t_x[i] + 1
//! ```
//!
//! after which distribution can split the statements, the
//! bandwidth-minimal partitioner can rearrange them, and — when they end
//! up fused back together — contraction turns `t_x` back into a register.
//! (Expansion temporarily *increases* storage; it is an enabling pass, not
//! an optimisation, which is why the pipeline only uses it through the
//! expand → distribute → fuse → contract sequence.)

use mbb_ir::expr::{Expr, Ref, Sub};
use mbb_ir::program::{ArrayDecl, ArrayId, Init, Program, ScalarId, Stmt};

/// Why a scalar cannot be expanded in a nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExpandError {
    /// The scalar's value is observable output (expansion would lose the
    /// final value unless it is also written back, which this pass does
    /// not do).
    Printed,
    /// The scalar is read before any write in the body (loop-carried or
    /// live-in value), so per-iteration cells would change meaning.
    CarriedValue,
    /// The scalar is not referenced in the nest.
    NotUsed,
    /// The scalar is also used in another nest (expansion is per-nest).
    UsedElsewhere,
    /// The nest has no loops (no iteration space to expand over).
    NoLoops,
    /// A loop bound is not a constant (the expanded array needs a static
    /// extent).
    NonConstantBounds,
    /// The scalar is accessed under a conditional; a guarded write makes
    /// "defined before use, every iteration" undecidable here.
    Guarded,
}

/// Expands scalar `s` over the iteration space of nest `nest_idx`,
/// replacing it with a fresh array indexed by the nest's loop variables.
pub fn expand_scalar(
    prog: &Program,
    nest_idx: usize,
    s: ScalarId,
) -> Result<(Program, ArrayId), ExpandError> {
    let decl = prog.scalar(s);
    if decl.printed {
        return Err(ExpandError::Printed);
    }
    // Per-nest use only.
    for (k, nest) in prog.nests.iter().enumerate() {
        if k == nest_idx {
            continue;
        }
        let mut used = false;
        nest.for_each_ref(&mut |r, _| {
            if matches!(r, Ref::Scalar(x) if *x == s) {
                used = true;
            }
        });
        if used {
            return Err(ExpandError::UsedElsewhere);
        }
    }
    let nest = &prog.nests[nest_idx];
    if nest.loops.is_empty() {
        return Err(ExpandError::NoLoops);
    }
    // Constant bounds for the expanded extents; record per-level offsets so
    // subscripts are 0-based.
    let mut dims = Vec::with_capacity(nest.loops.len());
    let mut lows = Vec::with_capacity(nest.loops.len());
    for lp in &nest.loops {
        let (Some(lo), Some(hi)) = (lp.lo.as_const(), lp.hi.as_const()) else {
            return Err(ExpandError::NonConstantBounds);
        };
        if lp.step != 1 || hi < lo {
            return Err(ExpandError::NonConstantBounds);
        }
        dims.push((hi - lo + 1) as usize);
        lows.push(lo);
    }

    // Top-level def-before-use, no guards.
    let mut defined = false;
    for st in &nest.body {
        match st {
            Stmt::Assign { lhs, rhs } => {
                let mut reads_before_def = false;
                rhs.for_each_ref(&mut |r| {
                    if matches!(r, Ref::Scalar(x) if *x == s) {
                        reads_before_def = true;
                    }
                });
                if reads_before_def && !defined {
                    return Err(ExpandError::CarriedValue);
                }
                if matches!(lhs, Ref::Scalar(x) if *x == s) {
                    defined = true;
                }
            }
            Stmt::If { .. } => {
                let mut touches = false;
                st.for_each_ref(&mut |r, _| {
                    if matches!(r, Ref::Scalar(x) if *x == s) {
                        touches = true;
                    }
                });
                if touches {
                    return Err(ExpandError::Guarded);
                }
            }
        }
    }
    if !defined {
        // Never written: either unused (error) or read-only (carried).
        let mut read = false;
        nest.for_each_ref(&mut |r, _| {
            if matches!(r, Ref::Scalar(x) if *x == s) {
                read = true;
            }
        });
        return Err(if read { ExpandError::CarriedValue } else { ExpandError::NotUsed });
    }

    // Build the expanded array; subscripts are (var − lo) per level,
    // reversed so the innermost variable is stride-1.
    let mut out = prog.clone();
    let mut name = format!("{}_x", decl.name);
    while out.arrays.iter().any(|a| a.name == name) || out.scalars.iter().any(|sc| sc.name == name)
    {
        name.push('_');
    }
    let source = out.fresh_source();
    let rev_dims: Vec<usize> = dims.iter().rev().copied().collect();
    let arr = out.add_array(ArrayDecl {
        name,
        dims: rev_dims,
        init: Init::Zero,
        live_out: false,
        source,
    });
    let subs: Vec<Sub> = nest
        .loops
        .iter()
        .zip(&lows)
        .rev()
        .map(|(lp, &lo)| Sub::plain(mbb_ir::Affine::var(lp.var) - lo))
        .collect();
    let replacement = Ref::Element(arr, subs);

    let new_body: Vec<Stmt> = nest
        .body
        .iter()
        .map(|st| match st {
            Stmt::Assign { lhs, rhs } => {
                let rhs = rhs.map_loads(&mut |r| {
                    if matches!(r, Ref::Scalar(x) if *x == s) {
                        Some(Expr::Load(replacement.clone()))
                    } else {
                        None
                    }
                });
                let lhs = if matches!(lhs, Ref::Scalar(x) if *x == s) {
                    replacement.clone()
                } else {
                    lhs.clone()
                };
                Stmt::Assign { lhs, rhs }
            }
            other => other.clone(),
        })
        .collect();
    out.nests[nest_idx].body = new_body;
    Ok((out, arr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::distribute_nest;
    use crate::pipeline::verify_equivalent;
    use crate::storage::contract;
    use mbb_ir::builder::*;
    use mbb_ir::validate;

    /// `t = a[i]*2; b[i] = t + 1` — the module-level example.
    fn temp_program(n: usize) -> (mbb_ir::Program, ScalarId) {
        let mut bld = ProgramBuilder::new("tp");
        let a = bld.array_in("a", &[n]);
        let b = bld.array_out("b", &[n]);
        let t = bld.scalar("t", 0.0);
        let i = bld.var("i");
        bld.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(t.r(), ld(a.at([v(i)])) * lit(2.0)),
                assign(b.at([v(i)]), ld(t.r()) + lit(1.0)),
            ],
        );
        (bld.finish(), t)
    }

    #[test]
    fn expansion_preserves_semantics() {
        let (p, t) = temp_program(32);
        let (q, arr) = expand_scalar(&p, 0, t).unwrap();
        validate::validate(&q).unwrap();
        verify_equivalent(&p, &q, 0.0).unwrap();
        assert_eq!(q.array(arr).dims, vec![32]);
    }

    #[test]
    fn expand_distribute_fuse_contract_round_trip() {
        // The enabling chain: the scalar blocks distribution; expansion
        // unblocks it; contraction later restores the register.
        let (p, t) = temp_program(24);
        assert!(distribute_nest(&p, 0).is_err(), "scalar should block distribution");
        let (q, arr) = expand_scalar(&p, 0, t).unwrap();
        let d = distribute_nest(&q, 0).unwrap();
        assert_eq!(d.nests.len(), 2);
        verify_equivalent(&p, &d, 0.0).unwrap();
        // Re-fuse and contract the expanded array away again.
        let g = crate::fusion::build_fusion_graph(&d);
        let refused =
            crate::fusion::apply(&d, &crate::fusion::Partitioning::all_fused(g.n)).unwrap();
        let oc = contract(&refused, arr).unwrap();
        assert!(oc.scalar_replacement.is_some(), "t_x returns to a register");
        verify_equivalent(&p, &oc.program, 0.0).unwrap();
    }

    #[test]
    fn expansion_over_two_levels_uses_both_subscripts() {
        let n = 6usize;
        let mut bld = ProgramBuilder::new("two");
        let a = bld.array_in("a", &[n, n]);
        let b = bld.array_out("b", &[n, n]);
        let t = bld.scalar("t", 0.0);
        let (i, j) = (bld.var("i"), bld.var("j"));
        bld.nest(
            "k",
            &[(j, 1, n as i64 - 1), (i, 0, n as i64 - 1)],
            vec![
                assign(t.r(), ld(a.at([v(i), v(j)])) * lit(3.0)),
                assign(b.at([v(i), v(j)]), ld(t.r())),
            ],
        );
        let p = bld.finish();
        let (q, arr) = expand_scalar(&p, 0, t).unwrap();
        // Extents: i (inner, stride-1 dim) × (j over 1..n−1).
        assert_eq!(q.array(arr).dims, vec![n, n - 1]);
        verify_equivalent(&p, &q, 0.0).unwrap();
    }

    #[test]
    fn blockers() {
        // Printed scalar.
        let n = 8usize;
        let mut bld = ProgramBuilder::new("bk");
        let a = bld.array_in("a", &[n]);
        let sp = bld.scalar_printed("sp", 0.0);
        let carried = bld.scalar("c", 1.0);
        let i = bld.var("i");
        bld.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(sp.r(), ld(a.at([v(i)]))),
                // carried: read before (re)definition — an accumulator.
                assign(carried.r(), ld(carried.r()) + ld(a.at([v(i)]))),
            ],
        );
        let p = bld.finish();
        assert_eq!(expand_scalar(&p, 0, sp).err(), Some(ExpandError::Printed));
        assert_eq!(expand_scalar(&p, 0, carried).err(), Some(ExpandError::CarriedValue));
    }

    #[test]
    fn cross_nest_use_blocks() {
        let n = 8usize;
        let mut bld = ProgramBuilder::new("xn");
        let a = bld.array_in("a", &[n]);
        let b = bld.array_out("b", &[n]);
        let t = bld.scalar("t", 0.0);
        let (i, j) = (bld.var("i"), bld.var("j"));
        bld.nest("k0", &[(i, 0, n as i64 - 1)], vec![assign(t.r(), ld(a.at([v(i)])))]);
        bld.nest("k1", &[(j, 0, n as i64 - 1)], vec![assign(b.at([v(j)]), ld(t.r()))]);
        let p = bld.finish();
        assert_eq!(expand_scalar(&p, 0, t).err(), Some(ExpandError::UsedElsewhere));
    }
}
