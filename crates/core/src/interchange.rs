//! Loop interchange and a bandwidth-guided order auto-tuner.
//!
//! Interchange permutes a nest's loop levels.  Under the balance lens
//! (§2), the loop order decides which array walks with stride one, and the
//! memory balance of e.g. matrix multiply varies ~4× across the six orders
//! (`cargo bench --bench ablations`).  [`auto_interchange`] turns that
//! observation into a tool: enumerate the legal permutations, *measure*
//! each one's memory balance on the simulator, keep the best — the §4
//! "bandwidth-based performance tuning" idea made concrete.
//!
//! Legality is the classical direction-vector test: every dependence's
//! distance vector (per loop level, derived from the `var + c` subscript
//! offsets) must stay lexicographically positive after permutation.
//! Unanalysable subscript shapes conservatively pin the nest to its
//! original order.

use std::collections::BTreeMap;

use mbb_ir::expr::Ref;
use mbb_ir::program::{Program, VarId};
use mbb_memsim::machine::MachineModel;

use crate::balance::measure_program_balance;

/// Why a permutation was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterchangeError {
    /// `perm` is not a permutation of `0..depth`.
    BadPermutation,
    /// A dependence's distance vector would turn lexicographically
    /// negative.
    DirectionViolated,
    /// A subscript shape the analysis cannot order (conservative).
    Unanalysable,
}

/// Collects the distance vectors (per level) of every intra-nest
/// dependence pair; `Err` when shapes are unsupported.
fn distance_vectors(prog: &Program, nest_idx: usize) -> Result<Vec<Vec<i64>>, InterchangeError> {
    let nest = &prog.nests[nest_idx];
    let depth = nest.loops.len();
    let levels: BTreeMap<VarId, usize> =
        nest.loops.iter().enumerate().map(|(l, lp)| (lp.var, l)).collect();

    // Gather per-array refs: (is_store, per-dim (level, offset) or None).
    #[allow(clippy::type_complexity)]
    let mut refs: Vec<(u32, bool, Option<Vec<(usize, i64)>>)> = Vec::new();
    let mut scalar_rw = false;
    nest.for_each_ref(&mut |r, is_store| match r {
        Ref::Scalar(_) => {
            // Scalar dependences are order-independent within an iteration
            // and carried identically by any order (the whole iteration
            // space is executed either way, sequentially) — but a scalar
            // that is both read and written creates a serialising recurrence
            // whose *order* of combination changes under interchange.
            if is_store {
                scalar_rw = true;
            }
        }
        Ref::Element(a, subs) => {
            let shapes: Option<Vec<(usize, i64)>> = subs
                .iter()
                .map(|s| {
                    let e = s.as_plain()?;
                    if let Some((v, c)) = e.as_var_plus_const() {
                        levels.get(&v).map(|&l| (l, c))
                    } else {
                        e.as_const().map(|_| (usize::MAX, 0))
                    }
                })
                .collect();
            refs.push((a.0, is_store, shapes));
        }
    });
    // A written scalar is tolerated only when it is a pure commuting
    // reduction (every interleaving sums the same values).
    if scalar_rw {
        let all_reductions = (0..prog.scalars.len())
            .all(|s| mbb_ir::deps::scalar_is_pure_reduction(nest, mbb_ir::ScalarId(s as u32)));
        if !all_reductions {
            return Err(InterchangeError::Unanalysable);
        }
    }

    let mut vectors = Vec::new();
    for (k, (arr_a, store_a, shapes_a)) in refs.iter().enumerate() {
        for (arr_b, store_b, shapes_b) in &refs[k..] {
            if arr_a != arr_b || (!store_a && !store_b) {
                continue;
            }
            let (Some(sa), Some(sb)) = (shapes_a, shapes_b) else {
                return Err(InterchangeError::Unanalysable);
            };
            // Distance per level: Δ[l] = offset_a − offset_b where both use
            // level l; constant dims must match structurally (MAX marker).
            let mut delta = vec![0i64; depth];
            let mut ok = true;
            for ((la, ca), (lb, cb)) in sa.iter().zip(sb) {
                if la != lb {
                    ok = false;
                    break;
                }
                if *la != usize::MAX {
                    delta[*la] = ca - cb;
                }
            }
            if !ok {
                return Err(InterchangeError::Unanalysable);
            }
            if delta.iter().any(|&d| d != 0) {
                vectors.push(delta);
            }
        }
    }
    Ok(vectors)
}

/// True when `delta`, read in the order given by `perm` (outermost first),
/// is lexicographically positive, negative or zero — returned as the sign.
fn lex_sign(delta: &[i64], perm: &[usize]) -> i64 {
    for &l in perm {
        if delta[l] != 0 {
            return delta[l].signum();
        }
    }
    0
}

/// Permutes nest `nest_idx`'s loop levels: `perm[k]` is the original level
/// that becomes level `k`.
pub fn interchange(
    prog: &Program,
    nest_idx: usize,
    perm: &[usize],
) -> Result<Program, InterchangeError> {
    let depth = prog.nests[nest_idx].loops.len();
    let mut check: Vec<usize> = perm.to_vec();
    check.sort_unstable();
    if check != (0..depth).collect::<Vec<_>>() {
        return Err(InterchangeError::BadPermutation);
    }
    if perm.iter().enumerate().all(|(k, &l)| k == l) {
        return Ok(prog.clone()); // identity
    }
    // Bounds may only reference outer variables; permuting rectangular
    // constant-bound loops is always structurally fine, otherwise check.
    let nest = &prog.nests[nest_idx];
    for lp in &nest.loops {
        if !(lp.lo.is_const() && lp.hi.is_const()) {
            return Err(InterchangeError::Unanalysable);
        }
    }
    let vectors = distance_vectors(prog, nest_idx)?;
    let identity: Vec<usize> = (0..depth).collect();
    for d in &vectors {
        let before = lex_sign(d, &identity);
        let after = lex_sign(d, perm);
        if before != after {
            return Err(InterchangeError::DirectionViolated);
        }
    }
    let mut out = prog.clone();
    out.nests[nest_idx].loops =
        perm.iter().map(|&l| prog.nests[nest_idx].loops[l].clone()).collect();
    Ok(out)
}

/// Tries every legal permutation of the nest's loops, measures the memory
/// balance of the whole program on `machine` for each, and returns the
/// best program with its `(permutation, memory bytes/flop)`.
///
/// Exhaustive in `depth!`; intended for nests of depth ≤ 4.
pub fn auto_interchange(
    prog: &Program,
    nest_idx: usize,
    machine: &MachineModel,
) -> (Program, Vec<usize>, f64) {
    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for rest in permutations(n - 1) {
            for pos in 0..=rest.len() {
                let mut p = rest.clone();
                p.insert(pos, n - 1);
                out.push(p);
            }
        }
        out
    }
    let depth = prog.nests[nest_idx].loops.len();
    assert!(depth <= 4, "auto_interchange enumerates depth! orders");
    let mut best: Option<(Program, Vec<usize>, f64)> = None;
    for perm in permutations(depth) {
        let Ok(candidate) = interchange(prog, nest_idx, &perm) else {
            continue;
        };
        let Ok(balance) = measure_program_balance(&candidate, machine) else {
            continue;
        };
        let cost = balance.memory();
        if best.as_ref().map(|&(_, _, c)| cost < c).unwrap_or(true) {
            best = Some((candidate, perm, cost));
        }
    }
    best.expect("the identity permutation is always legal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::verify_equivalent;
    use mbb_ir::builder::*;

    #[test]
    fn interchange_permutes_and_preserves_semantics() {
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("ic");
        let a = b.array_out("a", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "k",
            &[(j, 0, hi), (i, 0, hi)],
            vec![assign(
                a.at([v(i), v(j)]),
                mbb_ir::Expr::Input(mbb_ir::SourceId(1), vec![v(i), v(j)]),
            )],
        );
        let p = b.finish();
        let q = interchange(&p, 0, &[1, 0]).unwrap();
        assert_eq!(p.nests[0].loops[0].var, q.nests[0].loops[1].var);
        verify_equivalent(&p, &q, 0.0).unwrap();
    }

    #[test]
    fn skewed_dependence_blocks_interchange() {
        // a[i, j] = f(a[i-1, j+1]): distance (Δj, Δi) = (−1, +1) read→write
        // … as a vector over levels (j, i): (+1 at j? ) — concretely, the
        // pair's delta flips lexicographic sign under interchange, which
        // must be rejected.
        let n = 8usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("skew");
        let a = b.array_out("a", &[n + 2, n + 2]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "k",
            &[(j, 1, hi), (i, 1, hi)],
            vec![assign(a.at([v(i), v(j)]), ld(a.at([v(i) - 1, v(j) + 1])) * lit(0.5))],
        );
        let p = b.finish();
        assert_eq!(interchange(&p, 0, &[1, 0]).err(), Some(InterchangeError::DirectionViolated));
        // And the legal direction (i outer) would equally be refused from
        // that starting point; identity always works.
        assert!(interchange(&p, 0, &[0, 1]).is_ok());
    }

    #[test]
    fn carried_dependence_in_one_level_permits_interchange_keeping_it_outer() {
        // t[i, j] = t[i, j-1]: carried by j only; (j, i) → (i, j) keeps the
        // j-distance first-nonzero positive (delta only at j), so both
        // orders are legal.
        let n = 6usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("cj");
        let t = b.array_out("t", &[n, n]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest(
            "k",
            &[(j, 1, hi), (i, 0, hi)],
            vec![assign(t.at([v(i), v(j)]), ld(t.at([v(i), v(j) - 1])) + lit(1.0))],
        );
        let p = b.finish();
        let q = interchange(&p, 0, &[1, 0]).unwrap();
        verify_equivalent(&p, &q, 0.0).unwrap();
    }

    #[test]
    fn bad_permutations_rejected() {
        let mut b = ProgramBuilder::new("bp");
        let a = b.array_out("a", &[4, 4]);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest("k", &[(j, 0, 3), (i, 0, 3)], vec![assign(a.at([v(i), v(j)]), lit(1.0))]);
        let p = b.finish();
        assert_eq!(interchange(&p, 0, &[0, 0]).err(), Some(InterchangeError::BadPermutation));
        assert_eq!(interchange(&p, 0, &[0]).err(), Some(InterchangeError::BadPermutation));
    }

    #[test]
    fn auto_interchange_finds_the_stride_one_order_for_mm() {
        use mbb_memsim::machine::MachineModel;
        // Start matrix multiply in the worst order; the tuner must land on
        // a unit-stride inner loop (i innermost), cutting memory balance.
        let m = MachineModel::origin2000().scaled_levels(&[16, 64]);
        let p = mbb_workloads_free::mm_order_free(64, "ijk");
        let before = measure_program_balance(&p, &m).unwrap().memory();
        let (best, perm, cost) = auto_interchange(&p, 0, &m);
        assert!(cost < before * 0.7, "tuned {cost} vs original {before} ({perm:?})");
        verify_equivalent(&p, &best, 1e-12).unwrap();
        // The chosen innermost loop is `i` (the stride-one index of both
        // `c[i,j]` and `a[i,k]`).
        let inner = best.nests[0].loops.last().unwrap().var;
        assert_eq!(best.var_name(inner), "i");
    }

    /// A local mm builder so this crate's tests do not depend on
    /// `mbb-workloads` (which depends on this crate).
    mod mbb_workloads_free {
        use mbb_ir::builder::*;

        pub fn mm_order_free(n: usize, order: &str) -> mbb_ir::Program {
            let mut b = ProgramBuilder::new(format!("mm_{order}"));
            let a = b.array_in("a", &[n, n]);
            let bb = b.array_in("b", &[n, n]);
            let cc = b.array_out("c", &[n, n]);
            let (i, j, k) = (b.var("i"), b.var("j"), b.var("k"));
            let hi = n as i64 - 1;
            let by = |ch: char| match ch {
                'i' => i,
                'j' => j,
                _ => k,
            };
            let loops: Vec<(mbb_ir::VarId, i64, i64)> =
                order.chars().map(|ch| (by(ch), 0, hi)).collect();
            b.nest(
                "mm",
                &loops,
                vec![assign(
                    cc.at([v(i), v(j)]),
                    ld(cc.at([v(i), v(j)])) + ld(a.at([v(i), v(k)])) * ld(bb.at([v(k), v(j)])),
                )],
            );
            b.finish()
        }
    }
}
