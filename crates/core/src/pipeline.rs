//! The complete compiler strategy: fuse → shrink storage → eliminate
//! stores, with dynamic equivalence verification.
//!
//! This is the §3 pipeline as a single call: bandwidth-minimal fusion
//! localises array live ranges, storage reduction collapses localised
//! arrays to buffers or registers, and store elimination removes the
//! remaining writebacks.  Every stage is semantics-preserving by
//! construction; [`verify_equivalent`] additionally *executes* both
//! programs and compares observations, which the test-suite does for every
//! workload.

use mbb_ir::interp;
use mbb_ir::program::Program;

use crate::distribute::distribute_all;
use crate::expand::expand_scalar;
use crate::fusion::{
    build_fusion_graph, check_legal, greedy_fusion, total_distinct_arrays, Partitioning,
};
use crate::storage::{shrink_storage, ShrinkAction};
use crate::stores::{eliminate_all_stores, StoreElimination};
use crate::transform::fuse_nests;

/// Which fusion strategy the pipeline uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FusionStrategy {
    /// The polynomial greedy heuristic (default).
    #[default]
    Greedy,
    /// Kennedy–McKinley recursive bisection, with the paper's hyperedge
    /// minimal cut performing each bisection (§4).
    Bisection,
    /// Exhaustive optimum (small programs only, ≤ 12 nests).
    Exhaustive,
    /// Skip fusion.
    None,
}

/// Pipeline configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptimizeOptions {
    /// Normalise first: expand per-iteration scalar temporaries and
    /// distribute every nest maximally, so fusion gets the finest-grained
    /// loop sequence to arrange (contraction later re-registers the
    /// expanded temporaries).
    pub normalize: bool,
    /// Fusion strategy.
    pub fusion: FusionStrategy,
    /// Run array shrinking/peeling.
    pub shrink: bool,
    /// Run store elimination.
    pub eliminate_stores: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            normalize: false,
            fusion: FusionStrategy::Greedy,
            shrink: true,
            eliminate_stores: true,
        }
    }
}

/// The normalisation pre-pass: expand every expandable scalar in every
/// nest, then distribute all nests maximally.
pub fn normalize(prog: &Program) -> Program {
    let mut cur = prog.clone();
    // Scalar expansion (best-effort; blockers simply skip).
    let mut k = 0;
    while k < cur.nests.len() {
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..cur.scalars.len() {
                let sid = mbb_ir::ScalarId(s as u32);
                if let Ok((next, _)) = expand_scalar(&cur, k, sid) {
                    cur = next;
                    changed = true;
                    break;
                }
            }
        }
        k += 1;
    }
    distribute_all(&cur)
}

/// Everything the pipeline did.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The optimised program.
    pub program: Program,
    /// The partitioning fusion applied (if fusion ran).
    pub partitioning: Option<Partitioning>,
    /// The paper's fusion objective before and after (total distinct
    /// arrays over partitions).
    pub arrays_cost_before: u64,
    /// Post-fusion objective value.
    pub arrays_cost_after: u64,
    /// Storage-reduction actions.
    pub shrink_actions: Vec<ShrinkAction>,
    /// Store eliminations.
    pub store_eliminations: Vec<StoreElimination>,
    /// Declared array bytes before optimisation.
    pub storage_before: usize,
    /// Declared array bytes after optimisation.
    pub storage_after: usize,
}

/// Runs the compiler strategy over a program.
///
/// ```
/// use mbb_ir::builder::*;
/// use mbb_core::pipeline::{optimize, verify_equivalent, OptimizeOptions};
///
/// // Figure 7: update then reduce — fusion plus store elimination halves
/// // the memory traffic.
/// let n = 1024;
/// let mut b = ProgramBuilder::new("fig7");
/// let res = b.array_in("res", &[n]);
/// let data = b.array_in("data", &[n]);
/// let sum = b.scalar_printed("sum", 0.0);
/// let (i, j) = (b.var("i"), b.var("j"));
/// b.nest("update", &[(i, 0, n as i64 - 1)],
///     vec![assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)])))]);
/// b.nest("reduce", &[(j, 0, n as i64 - 1)],
///     vec![accumulate(sum, ld(res.at([v(j)])))]);
/// let program = b.finish();
///
/// let out = optimize(&program, OptimizeOptions::default());
/// verify_equivalent(&program, &out.program, 1e-9).unwrap();
/// assert_eq!(out.program.nests.len(), 1);       // fused
/// assert_eq!(out.store_eliminations.len(), 1);  // res never written back
/// ```
pub fn optimize(prog: &Program, opts: OptimizeOptions) -> OptimizeOutcome {
    let storage_before = prog.storage_bytes();
    let normalized;
    let prog = if opts.normalize {
        let _s = mbb_obs::span!("normalize");
        normalized = normalize(prog);
        &normalized
    } else {
        prog
    };
    let graph = build_fusion_graph(prog);
    let unfused_cost = total_distinct_arrays(&graph, &Partitioning::unfused(graph.n));

    let (mut cur, partitioning, fused_cost) = match opts.fusion {
        FusionStrategy::None => (prog.clone(), None, unfused_cost),
        strategy => {
            let _s = mbb_obs::span!("fuse");
            let p = match strategy {
                FusionStrategy::Greedy => greedy_fusion(&graph),
                FusionStrategy::Bisection => crate::fusion::recursive_bisection_fusion(&graph),
                FusionStrategy::Exhaustive => crate::fusion::exhaustive_min_bandwidth(&graph).0,
                FusionStrategy::None => unreachable!(),
            };
            debug_assert!(check_legal(&graph, &p).is_ok());
            let cost = total_distinct_arrays(&graph, &p);
            match fuse_nests(prog, &p.groups) {
                Ok(fused) => (fused, Some(p), cost),
                // A partitioning the graph model accepts can still be
                // rejected by the stricter IR-level checks; fall back.
                Err(_) => (prog.clone(), None, unfused_cost),
            }
        }
    };

    let shrink_actions = if opts.shrink {
        let _s = mbb_obs::span!("shrink");
        let (next, actions) = shrink_storage(&cur);
        cur = next;
        actions
    } else {
        Vec::new()
    };

    let store_eliminations = if opts.eliminate_stores {
        let _s = mbb_obs::span!("store-elim");
        let (next, reports) = eliminate_all_stores(&cur);
        cur = next;
        reports
    } else {
        Vec::new()
    };

    OptimizeOutcome {
        storage_after: cur.storage_bytes(),
        program: cur,
        partitioning,
        arrays_cost_before: unfused_cost,
        arrays_cost_after: fused_cost,
        shrink_actions,
        store_eliminations,
        storage_before,
    }
}

/// Executes both programs and compares observable outputs with a relative
/// tolerance (fusion may reassociate reductions).  Returns the first
/// mismatch description, if any.
pub fn verify_equivalent(a: &Program, b: &Program, rel_tol: f64) -> Result<(), String> {
    let _s = mbb_obs::span!("verify");
    let ra = interp::run(a).map_err(|e| format!("original failed: {e}"))?;
    let rb = interp::run(b).map_err(|e| format!("optimised failed: {e}"))?;
    match ra.observation.diff(&rb.observation, rel_tol) {
        None => Ok(()),
        Some(d) => Err(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;

    /// Figure 7(a): separate update and reduce loops.
    fn fig7(n: usize) -> Program {
        let mut b = ProgramBuilder::new("fig7");
        let res = b.array_in("res", &[n]);
        let data = b.array_in("data", &[n]);
        let sum = b.scalar_printed("sum", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        b.nest(
            "update",
            &[(i, 0, n as i64 - 1)],
            vec![assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)])))],
        );
        b.nest("reduce", &[(j, 0, n as i64 - 1)], vec![accumulate(sum, ld(res.at([v(j)])))]);
        b.finish()
    }

    #[test]
    fn full_pipeline_on_figure7() {
        let p = fig7(128);
        let out = optimize(&p, OptimizeOptions::default());
        verify_equivalent(&p, &out.program, 1e-12).unwrap();
        // Fusion merged the two loops…
        assert_eq!(out.program.nests.len(), 1);
        assert_eq!(out.arrays_cost_before, 3); // res+data, res
        assert_eq!(out.arrays_cost_after, 2); // res, data once
                                              // …and store elimination removed the writeback.
        assert_eq!(out.store_eliminations.len(), 1);
        let stats = mbb_ir::interp::run(&out.program).unwrap().stats;
        assert_eq!(stats.stores, 0);
    }

    #[test]
    fn pipeline_stages_can_be_disabled() {
        let p = fig7(64);
        let out = optimize(
            &p,
            OptimizeOptions {
                fusion: FusionStrategy::None,
                shrink: false,
                eliminate_stores: false,
                ..Default::default()
            },
        );
        assert_eq!(out.program.nests.len(), 2);
        assert!(out.partitioning.is_none());
        assert!(out.store_eliminations.is_empty());
        verify_equivalent(&p, &out.program, 0.0).unwrap();
    }

    #[test]
    fn exhaustive_matches_greedy_on_simple_case() {
        let p = fig7(64);
        let g =
            optimize(&p, OptimizeOptions { fusion: FusionStrategy::Greedy, ..Default::default() });
        let e = optimize(
            &p,
            OptimizeOptions { fusion: FusionStrategy::Exhaustive, ..Default::default() },
        );
        assert_eq!(g.arrays_cost_after, e.arrays_cost_after);
    }

    #[test]
    fn pipeline_reduces_storage_with_temporaries() {
        // producer → consumer through a temporary array: fusion localises
        // it, shrinking registers it away.
        let n = 64usize;
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("tmp");
        let x = b.array_in("x", &[n]);
        let t = b.array_zero("t", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        b.nest("produce", &[(i, 0, hi)], vec![assign(t.at([v(i)]), ld(x.at([v(i)])) * lit(2.0))]);
        b.nest("consume", &[(j, 0, hi)], vec![accumulate(s, ld(t.at([v(j)])))]);
        let p = b.finish();
        let before = p.storage_bytes();
        let out = optimize(&p, OptimizeOptions::default());
        verify_equivalent(&p, &out.program, 1e-12).unwrap();
        assert!(out.storage_after < before, "{} -> {}", before, out.storage_after);
        assert!(out
            .shrink_actions
            .iter()
            .any(|a| matches!(a, ShrinkAction::Contracted { to_scalar: true, .. })));
        // t is gone entirely: only x remains.
        assert_eq!(out.program.arrays.len(), 1);
    }

    #[test]
    fn verify_detects_differences() {
        let p = fig7(16);
        let mut q = p.clone();
        // Corrupt the reduction.
        if let mbb_ir::Stmt::Assign { rhs, .. } = &mut q.nests[1].body[0] {
            *rhs = lit(0.0);
        }
        assert!(verify_equivalent(&p, &q, 1e-9).is_err());
    }
}

#[cfg(test)]
mod normalize_tests {
    use super::*;
    use mbb_ir::builder::*;

    /// One fused nest mixing two independent computations through scalar
    /// temporaries: only normalisation lets the partitioner pull them
    /// apart and regroup by data affinity.
    fn entangled(n: usize) -> Program {
        let hi = n as i64 - 1;
        let mut b = ProgramBuilder::new("ent");
        let x = b.array_in("x", &[n]);
        let y = b.array_in("y", &[n]);
        let ox = b.array_out("ox", &[n]);
        let oy = b.array_out("oy", &[n]);
        let t1 = b.scalar("t1", 0.0);
        let t2 = b.scalar("t2", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, hi)],
            vec![
                assign(t1.r(), ld(x.at([v(i)])) * lit(2.0)),
                assign(t2.r(), ld(y.at([v(i)])) * lit(3.0)),
                assign(ox.at([v(i)]), ld(t1.r())),
                assign(oy.at([v(i)]), ld(t2.r())),
            ],
        );
        b.finish()
    }

    #[test]
    fn normalize_expands_and_distributes() {
        let p = entangled(32);
        let q = normalize(&p);
        assert!(q.nests.len() >= 2, "{} nests", q.nests.len());
        verify_equivalent(&p, &q, 0.0).unwrap();
    }

    #[test]
    fn normalized_pipeline_stays_equivalent_and_compact() {
        let p = entangled(32);
        let out = optimize(&p, OptimizeOptions { normalize: true, ..Default::default() });
        verify_equivalent(&p, &out.program, 1e-12).unwrap();
        // The expanded temporaries must have been contracted away again:
        // no storage growth survives the full pipeline.
        assert!(out.storage_after <= p.storage_bytes(), "{}", out.storage_after);
        let stats = mbb_ir::interp::run(&out.program).unwrap().stats;
        let orig = mbb_ir::interp::run(&p).unwrap().stats;
        assert_eq!(stats.flops, orig.flops);
    }

    #[test]
    fn normalize_is_identity_on_already_fine_programs() {
        let mut b = ProgramBuilder::new("fine");
        let a = b.array_out("a", &[16]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, 15)], vec![assign(a.at([v(i)]), lit(1.0))]);
        let p = b.finish();
        let q = normalize(&p);
        assert_eq!(q.nests.len(), 1);
        verify_equivalent(&p, &q, 0.0).unwrap();
    }
}
