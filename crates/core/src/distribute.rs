//! Loop distribution (fission) — the inverse of fusion.
//!
//! Distribution splits one nest's body into several nests, each carrying a
//! subset of the statements.  It is the classical preparation pass for
//! fusion frameworks: *maximally distribute, then re-fuse optimally* turns
//! an arbitrary nest into the paper's model (a sequence of small loops the
//! bandwidth-minimal partitioner can arrange freely).
//!
//! Legality follows Kennedy & McKinley's classic formulation: build the
//! statement-level dependence graph (with direction determined by
//! subscript offsets, conservatively both ways when the shapes are not
//! analysable), keep strongly-connected components together, and emit the
//! condensation in topological order.

use std::collections::BTreeMap;

use mbb_ir::expr::Ref;
use mbb_ir::program::{LoopNest, Program, Stmt, VarId};

/// Why a nest could not be distributed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DistributeError {
    /// The nest has fewer than two top-level statements.
    TooFewStatements,
    /// Statement dependences form a single component: nothing to split.
    SingleComponent,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    Level(usize, i64),
    Const(i64),
}

/// Per-statement access summary: `(array-or-scalar key, is_store, shapes)`.
#[derive(Clone, Debug)]
struct AccessRec {
    key: AccessKey,
    is_store: bool,
    shapes: Option<Vec<Shape>>,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum AccessKey {
    Array(u32),
    Scalar(u32),
}

fn stmt_accesses(stmt: &Stmt, levels: &BTreeMap<VarId, usize>) -> Vec<AccessRec> {
    let mut out = Vec::new();
    stmt.for_each_ref(&mut |r, is_store| match r {
        Ref::Scalar(s) => {
            out.push(AccessRec { key: AccessKey::Scalar(s.0), is_store, shapes: None })
        }
        Ref::Element(a, subs) => {
            let shapes: Option<Vec<Shape>> = subs
                .iter()
                .map(|s| {
                    let e = s.as_plain()?;
                    if let Some(k) = e.as_const() {
                        Some(Shape::Const(k))
                    } else if let Some((v, c)) = e.as_var_plus_const() {
                        levels.get(&v).map(|&l| Shape::Level(l, c))
                    } else {
                        None
                    }
                })
                .collect();
            out.push(AccessRec { key: AccessKey::Array(a.0), is_store, shapes });
        }
    });
    out
}

/// Directions a dependence between two accesses to the same object may
/// take, by iteration order: `fwd` = the first statement's access can
/// happen no later, `bwd` = it can happen later.
fn directions(a: &AccessRec, b: &AccessRec) -> (bool, bool) {
    let (Some(sa), Some(sb)) = (&a.shapes, &b.shapes) else {
        return (true, true); // scalars / unanalysable: keep together
    };
    if sa.len() != sb.len() {
        return (true, true);
    }
    // Element x touched by a at per-level iteration x − ca and by b at
    // x − cb: a-before-b possible iff ca ≥ cb at the outermost differing
    // level; a-after-b iff ca ≤ cb there.  Constants on disjoint planes
    // never alias.
    let mut pairs: Vec<(usize, i64, i64)> = Vec::new();
    for (x, y) in sa.iter().zip(sb) {
        match (x, y) {
            (Shape::Level(lx, cx), Shape::Level(ly, cy)) => {
                if lx != ly {
                    return (true, true);
                }
                pairs.push((*lx, *cx, *cy));
            }
            (Shape::Const(kx), Shape::Const(ky)) => {
                if kx != ky {
                    return (false, false); // disjoint: no dependence at all
                }
            }
            _ => return (true, true),
        }
    }
    pairs.sort_by_key(|&(l, _, _)| l);
    for &(_, ca, cb) in &pairs {
        if ca > cb {
            return (true, false);
        }
        if ca < cb {
            return (false, true);
        }
    }
    // Identical offsets: the element is shared only within one iteration,
    // so textual order (the caller passes `a` from the earlier statement)
    // is the only possible direction — a loop-independent dependence.
    (true, false)
}

/// Distributes nest `nest_idx` into its minimal legal loops.
pub fn distribute_nest(prog: &Program, nest_idx: usize) -> Result<Program, DistributeError> {
    let nest = &prog.nests[nest_idx];
    let n = nest.body.len();
    if n < 2 {
        return Err(DistributeError::TooFewStatements);
    }
    let levels: BTreeMap<VarId, usize> =
        nest.loops.iter().enumerate().map(|(l, lp)| (lp.var, l)).collect();
    let accesses: Vec<Vec<AccessRec>> =
        nest.body.iter().map(|s| stmt_accesses(s, &levels)).collect();

    // Edges: adj[s] contains t when statement t must not move before s.
    let mut adj = vec![vec![false; n]; n];
    for s in 0..n {
        for t in (s + 1)..n {
            for ra in &accesses[s] {
                for rb in &accesses[t] {
                    if ra.key != rb.key || (!ra.is_store && !rb.is_store) {
                        continue;
                    }
                    let (fwd, bwd) = directions(ra, rb);
                    if fwd {
                        adj[s][t] = true;
                    }
                    if bwd {
                        adj[t][s] = true;
                    }
                }
            }
        }
    }

    // SCCs (simple O(n³) reachability — bodies are small).
    let mut reach = adj.clone();
    for k in 0..n {
        for i in 0..n {
            if i == k {
                continue; // OR-ing a row into itself is a no-op
            }
            if reach[i][k] {
                let (row_i, row_k) = if i < k {
                    let (a, b) = reach.split_at_mut(k);
                    (&mut a[i], &b[0])
                } else {
                    let (a, b) = reach.split_at_mut(i);
                    (&mut b[0], &a[k])
                };
                for (ri, &rk) in row_i.iter_mut().zip(row_k.iter()) {
                    *ri |= rk;
                }
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for i in 0..n {
        if comp[i] != usize::MAX {
            continue;
        }
        comp[i] = ncomp;
        for j in (i + 1)..n {
            if comp[j] == usize::MAX && reach[i][j] && reach[j][i] {
                comp[j] = ncomp;
            }
        }
        ncomp += 1;
    }
    if ncomp < 2 {
        return Err(DistributeError::SingleComponent);
    }

    // Topological order of components; ties broken by first statement
    // (program order), which both preserves semantics and determinism.
    let mut cadj = vec![std::collections::BTreeSet::new(); ncomp];
    let mut indeg = vec![0usize; ncomp];
    for s in 0..n {
        for (t, &edge) in adj[s].iter().enumerate() {
            if edge && comp[s] != comp[t] && cadj[comp[s]].insert(comp[t]) {
                indeg[comp[t]] += 1;
            }
        }
    }
    let first_stmt: Vec<usize> =
        (0..ncomp).map(|c| (0..n).find(|&s| comp[s] == c).unwrap()).collect();
    let mut ready: std::collections::BTreeSet<(usize, usize)> =
        (0..ncomp).filter(|&c| indeg[c] == 0).map(|c| (first_stmt[c], c)).collect();
    let mut order = Vec::with_capacity(ncomp);
    while let Some(&(key, c)) = ready.iter().next() {
        ready.remove(&(key, c));
        order.push(c);
        for &nx in &cadj[c] {
            indeg[nx] -= 1;
            if indeg[nx] == 0 {
                ready.insert((first_stmt[nx], nx));
            }
        }
    }
    debug_assert_eq!(order.len(), ncomp, "statement dependence condensation is a DAG");

    let mut out = prog.clone();
    let mut new_nests = Vec::with_capacity(ncomp);
    for (k, &c) in order.iter().enumerate() {
        let body: Vec<Stmt> = nest
            .body
            .iter()
            .enumerate()
            .filter(|&(s, _)| comp[s] == c)
            .map(|(_, st)| st.clone())
            .collect();
        new_nests.push(LoopNest {
            name: format!("{}_{k}", nest.name),
            loops: nest.loops.clone(),
            body,
        });
    }
    out.nests.splice(nest_idx..=nest_idx, new_nests);
    // Re-index explicit fusion-preventing edges past the split point.
    out.fusion_preventing = prog
        .fusion_preventing
        .iter()
        .map(|&(a, b)| {
            let bump = |x: usize| if x > nest_idx { x + ncomp - 1 } else { x };
            (bump(a), bump(b))
        })
        .collect();
    Ok(out)
}

/// Distributes every nest as far as it will go (maximal distribution).
pub fn distribute_all(prog: &Program) -> Program {
    let mut cur = prog.clone();
    let mut k = 0;
    while k < cur.nests.len() {
        match distribute_nest(&cur, k) {
            Ok(next) => cur = next, // revisit the same index: it may split further
            Err(_) => k += 1,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion;
    use crate::pipeline::verify_equivalent;
    use mbb_ir::builder::*;
    use mbb_ir::{interp, validate};

    /// Fused Figure 7: update then reduce in one body.
    fn fused_fig7(n: usize) -> Program {
        let mut b = ProgramBuilder::new("f7");
        let res = b.array_in("res", &[n]);
        let data = b.array_in("data", &[n]);
        let sum = b.scalar_printed("sum", 0.0);
        let i = b.var("i");
        b.nest(
            "fused",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(res.at([v(i)]), ld(res.at([v(i)])) + ld(data.at([v(i)]))),
                accumulate(sum, ld(res.at([v(i)]))),
            ],
        );
        b.finish()
    }

    #[test]
    fn distributes_fused_figure7() {
        let p = fused_fig7(32);
        let q = distribute_nest(&p, 0).unwrap();
        assert_eq!(q.nests.len(), 2);
        validate::validate(&q).unwrap();
        verify_equivalent(&p, &q, 1e-12).unwrap();
        // And re-fusing restores a single nest with identical behaviour.
        let g = fusion::build_fusion_graph(&q);
        let refused = fusion::apply(&q, &fusion::Partitioning::all_fused(g.n)).unwrap();
        verify_equivalent(&p, &refused, 1e-12).unwrap();
    }

    #[test]
    fn recurrences_stay_together() {
        // t[i] = t[i-1] + x[i]; y[i] = t[i]: the recurrence forces the
        // first statement into its own component, but the consumer can
        // split off (forward dependence only).
        let n = 16usize;
        let mut b = ProgramBuilder::new("rec");
        let x = b.array_in("x", &[n]);
        let t = b.array_zero("t", &[n]);
        let y = b.array_out("y", &[n]);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 1, n as i64 - 1)],
            vec![
                assign(t.at([v(i)]), ld(t.at([v(i) - 1])) + ld(x.at([v(i)]))),
                assign(y.at([v(i)]), ld(t.at([v(i)])) * lit(2.0)),
            ],
        );
        let p = b.finish();
        let q = distribute_nest(&p, 0).unwrap();
        assert_eq!(q.nests.len(), 2);
        verify_equivalent(&p, &q, 1e-12).unwrap();
    }

    #[test]
    fn backward_carried_dependence_prevents_split() {
        // s0 reads t[i+1], s1 writes t[i]: s0 at iteration i reads what s1
        // writes at iteration i+1 — the pair is a cycle and must stay.
        let n = 16usize;
        let mut b = ProgramBuilder::new("cyc");
        let t = b.array_in("t", &[n + 1]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![accumulate(s, ld(t.at([v(i) + 1]))), assign(t.at([v(i)]), ld(s.r()))],
        );
        let p = b.finish();
        // The scalar also ties them; check the array logic alone by using
        // distinct scalars.
        assert_eq!(distribute_nest(&p, 0).err(), Some(DistributeError::SingleComponent));
    }

    #[test]
    fn independent_statements_fully_distribute() {
        let n = 8usize;
        let mut b = ProgramBuilder::new("ind");
        let x = b.array_out("x", &[n]);
        let y = b.array_out("y", &[n]);
        let z = b.array_out("z", &[n]);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                assign(x.at([v(i)]), lit(1.0)),
                assign(y.at([v(i)]), lit(2.0)),
                assign(z.at([v(i)]), lit(3.0)),
            ],
        );
        let p = b.finish();
        let q = distribute_all(&p);
        assert_eq!(q.nests.len(), 3);
        verify_equivalent(&p, &q, 0.0).unwrap();
    }

    #[test]
    fn distribute_then_optimal_refusion_beats_naive_order() {
        // A fused body touching disjoint array groups distributes, and the
        // bandwidth-minimal refusion can then regroup by data affinity.
        let n = 32usize;
        let mut b = ProgramBuilder::new("mix");
        let a1 = b.array_in("a1", &[n]);
        let a2 = b.array_in("a2", &[n]);
        let s1 = b.scalar_printed("s1", 0.0);
        let s2 = b.scalar_printed("s2", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![
                accumulate(s1, ld(a1.at([v(i)]))),
                accumulate(s2, ld(a2.at([v(i)]))),
                accumulate(s1, ld(a1.at([v(i)])) * lit(0.5)),
            ],
        );
        let p = b.finish();
        let q = distribute_all(&p);
        assert!(q.nests.len() >= 2, "{}", q.nests.len());
        verify_equivalent(&p, &q, 1e-12).unwrap();
        let g = fusion::build_fusion_graph(&q);
        let part = fusion::greedy_fusion(&g);
        let refused = fusion::apply(&q, &part).unwrap();
        verify_equivalent(&p, &refused, 1e-12).unwrap();
    }

    #[test]
    fn distribution_costs_memory_traffic() {
        // Instruction counts are identical, but once the array exceeds the
        // cache, the distributed version re-fetches `res` from memory —
        // exactly the bandwidth cost fusion exists to remove.
        let n = 1 << 12;
        let p = fused_fig7(n);
        let q = distribute_nest(&p, 0).unwrap();
        let (rp, rq) = (interp::run(&p).unwrap(), interp::run(&q).unwrap());
        assert_eq!(rp.stats.flops, rq.stats.flops);
        assert_eq!(rp.stats.loads, rq.stats.loads);
        let m = mbb_memsim::machine::MachineModel::origin2000().scaled(512);
        let tp = crate::balance::measure_program_balance(&p, &m).unwrap();
        let tq = crate::balance::measure_program_balance(&q, &m).unwrap();
        assert!(
            tq.report.mem_bytes() > tp.report.mem_bytes(),
            "distributed {} vs fused {}",
            tq.report.mem_bytes(),
            tp.report.mem_bytes()
        );
    }
}
