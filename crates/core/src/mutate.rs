//! Deliberate miscompilations for mutation-testing the fuzz harness.
//!
//! A differential fuzzer is only trustworthy if it demonstrably *fails*
//! when the optimizer is wrong.  This module plants small, realistic
//! optimizer bugs — an arithmetic flip, a lost store, ignored liveness
//! metadata — so the `mbb-gen` CI lane can assert that each one is caught
//! and shrunk to a minimal counterexample.  Nothing in the real pipeline
//! calls [`apply`]; it exists purely to keep the harness honest.

use std::fmt;
use std::str::FromStr;

use mbb_ir::expr::{BinOp, Expr, Ref};
use mbb_ir::program::{Program, Stmt};

use crate::balance::ProgramBalance;

/// A planted optimizer bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Flips the first `+` in the program to a `-`: the classic wrong-code
    /// miscompile.  Applied to the *optimized* program, so the differential
    /// check sees original and "optimized" results diverge.
    SwapAddSub,
    /// Deletes the last store to an array element: models a transformation
    /// that loses a write.  Applied to the optimized program.
    DropStore,
    /// Clears every array's `live_out` flag before optimization: models an
    /// optimizer that ignores liveness metadata, licensing store
    /// elimination and shrinking to destroy observable output.  Applied to
    /// the optimizer's *input*.
    IgnoreLiveOut,
    /// Reverses the per-channel balance vector inside the *search scorer*
    /// (see [`distort_balance`]): the autotuner then ranks candidates by
    /// register-channel traffic while reporting it as the memory balance —
    /// a scorer miscompile rather than a program miscompile.  [`apply`] is
    /// a no-op for this variant; the search lane consults
    /// [`Mutation::distorts_scorer`] and applies the distortion itself.
    SwapBalanceChannels,
}

impl Mutation {
    /// Canonical lowercase name, as accepted by [`Mutation::from_str`].
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::SwapAddSub => "swap-add-sub",
            Mutation::DropStore => "drop-store",
            Mutation::IgnoreLiveOut => "ignore-live-out",
            Mutation::SwapBalanceChannels => "swap-balance-channels",
        }
    }

    /// True when the mutation is applied to the optimizer's input rather
    /// than its output.
    pub fn applies_before_optimize(self) -> bool {
        matches!(self, Mutation::IgnoreLiveOut)
    }

    /// True when the mutation lives in the search scorer rather than in a
    /// program transformation ([`apply`] is then a no-op).
    pub fn distorts_scorer(self) -> bool {
        matches!(self, Mutation::SwapBalanceChannels)
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Mutation {
    type Err = String;

    fn from_str(s: &str) -> Result<Mutation, String> {
        match s {
            "swap-add-sub" => Ok(Mutation::SwapAddSub),
            "drop-store" => Ok(Mutation::DropStore),
            "ignore-live-out" => Ok(Mutation::IgnoreLiveOut),
            "swap-balance-channels" => Ok(Mutation::SwapBalanceChannels),
            other => Err(format!(
                "unknown mutation '{other}' (expected swap-add-sub, drop-store, \
                 ignore-live-out or swap-balance-channels)"
            )),
        }
    }
}

/// Applies the mutation in place.  Returns `false` when the program offers
/// no site for it (no `+`, no array store), in which case the program is
/// unchanged and the mutation is a no-op.
pub fn apply(prog: &mut Program, m: Mutation) -> bool {
    match m {
        Mutation::SwapAddSub => swap_first_add(prog),
        Mutation::DropStore => drop_last_store(prog),
        Mutation::IgnoreLiveOut => {
            let had = prog.arrays.iter().any(|a| a.live_out);
            for a in &mut prog.arrays {
                a.live_out = false;
            }
            had
        }
        // A scorer-level mutation: no program site to plant it in.
        Mutation::SwapBalanceChannels => false,
    }
}

/// Applies a scorer-level mutation to a measured balance in place.
/// Returns `false` (leaving the balance untouched) for program-level
/// mutations and for balances with fewer than two channels.
pub fn distort_balance(b: &mut ProgramBalance, m: Mutation) -> bool {
    match m {
        Mutation::SwapBalanceChannels if b.bytes_per_flop.len() >= 2 => {
            b.bytes_per_flop.reverse();
            b.report.channel_bytes.reverse();
            true
        }
        _ => false,
    }
}

fn swap_first_add(prog: &mut Program) -> bool {
    fn in_expr(e: &mut Expr, done: &mut bool) {
        if *done {
            return;
        }
        match e {
            Expr::Binary(op, l, r) => {
                if *op == BinOp::Add {
                    *op = BinOp::Sub;
                    *done = true;
                    return;
                }
                in_expr(l, done);
                in_expr(r, done);
            }
            Expr::Unary(_, x) => in_expr(x, done),
            Expr::Const(_) | Expr::Load(_) | Expr::Input(..) => {}
        }
    }
    fn in_stmt(s: &mut Stmt, done: &mut bool) {
        if *done {
            return;
        }
        match s {
            Stmt::Assign { rhs, .. } => in_expr(rhs, done),
            Stmt::If { then_, else_, .. } => {
                for st in then_.iter_mut().chain(else_.iter_mut()) {
                    in_stmt(st, done);
                }
            }
        }
    }
    let mut done = false;
    for n in &mut prog.nests {
        for s in &mut n.body {
            in_stmt(s, &mut done);
        }
        if done {
            break;
        }
    }
    done
}

fn drop_last_store(prog: &mut Program) -> bool {
    // Only top-level assignments are considered; removing a branch arm's
    // store would be equally valid but top-level is where generated
    // programs keep theirs.
    for n in prog.nests.iter_mut().rev() {
        for k in (0..n.body.len()).rev() {
            if matches!(&n.body[k], Stmt::Assign { lhs: Ref::Element(..), .. }) {
                n.body.remove(k);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("m");
        let x = b.array_in("x", &[8]);
        let y = b.array_out("y", &[8]);
        let i = b.var("i");
        b.nest("w", &[(i, 0, 7)], vec![assign(y.at([v(i)]), ld(x.at([v(i)])) + lit(1.0))]);
        b.finish()
    }

    #[test]
    fn swap_changes_one_op() {
        let mut p = sample();
        assert!(apply(&mut p, Mutation::SwapAddSub));
        let Stmt::Assign { rhs: Expr::Binary(op, ..), .. } = &p.nests[0].body[0] else {
            panic!("unexpected shape");
        };
        assert_eq!(*op, BinOp::Sub);
        // A second application finds no `+` left.
        assert!(!apply(&mut p, Mutation::SwapAddSub));
    }

    #[test]
    fn drop_store_removes_the_assignment() {
        let mut p = sample();
        assert!(apply(&mut p, Mutation::DropStore));
        assert!(p.nests[0].body.is_empty());
        assert!(!apply(&mut p, Mutation::DropStore));
    }

    #[test]
    fn ignore_live_out_clears_flags() {
        let mut p = sample();
        assert!(apply(&mut p, Mutation::IgnoreLiveOut));
        assert!(p.arrays.iter().all(|a| !a.live_out));
        assert!(!apply(&mut p, Mutation::IgnoreLiveOut));
    }

    #[test]
    fn parse_display_round_trip() {
        for m in [
            Mutation::SwapAddSub,
            Mutation::DropStore,
            Mutation::IgnoreLiveOut,
            Mutation::SwapBalanceChannels,
        ] {
            assert_eq!(m.as_str().parse::<Mutation>().unwrap(), m);
        }
        assert!("frobnicate".parse::<Mutation>().is_err());
    }

    #[test]
    fn swap_balance_channels_distorts_the_scorer_not_the_program() {
        let mut p = sample();
        let before = p.clone();
        assert!(!apply(&mut p, Mutation::SwapBalanceChannels));
        assert_eq!(p, before, "scorer mutation must leave the program alone");

        let machine = mbb_memsim::machine::MachineModel::origin2000();
        let mut b = crate::balance::measure_program_balance(&p, &machine).unwrap();
        let honest = b.memory();
        let register = b.bytes_per_flop[0];
        assert!(distort_balance(&mut b, Mutation::SwapBalanceChannels));
        assert_eq!(b.memory(), register, "memory slot now reads the register channel");
        assert_eq!(b.bytes_per_flop[0], honest);
        // Program-level mutations never touch a balance.
        let copy = b.clone();
        assert!(!distort_balance(&mut b, Mutation::SwapAddSub));
        assert_eq!(b.bytes_per_flop, copy.bytes_per_flop);
    }
}
