//! Inter-array data regrouping.
//!
//! The paper's §4 places this pass in the complete compiler strategy of
//! Ding's dissertation: after loop fusion improves *temporal* reuse,
//! regrouping improves *spatial* reuse by interleaving arrays that are
//! always accessed together — `x[i], y[i], z[i]` become one array
//! `grp[3, i]`, so a fetched cache line carries all three operands of an
//! iteration instead of one, and the three separate streams (which can
//! conflict in a low-associativity cache) become one.
//!
//! Regrouping is a pure storage re-map: element `m` of member `k` lives at
//! `grp[k, m]`.  It is semantics-preserving whenever the members are not
//! individually observable (`live_out`); live-in contents are preserved
//! exactly via [`Init::HashInterleaved`].  *Profitability* is where the
//! analysis lives: [`regroup_candidates`] proposes maximal groups of
//! same-shaped arrays that are referenced in exactly the same nests
//! (co-access), which is the dissertation's criterion.

use std::collections::BTreeSet;

use mbb_ir::deps::nest_access;
use mbb_ir::expr::{Ref, Sub};
use mbb_ir::program::{ArrayDecl, ArrayId, Init, Program};

/// Why a set of arrays cannot be regrouped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegroupError {
    /// Fewer than two members.
    TooFew,
    /// Members disagree on shape.
    ShapeMismatch,
    /// A member is observable output.
    LiveOut,
    /// A member has an initialisation the transform cannot interleave
    /// (peeled sections, already-regrouped arrays with zero/hash mixes).
    UnsupportedInit,
    /// Duplicate member.
    Duplicate,
}

/// The record of one applied regrouping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegroupAction {
    /// Names of the member arrays, in member order.
    pub members: Vec<String>,
    /// Name of the interleaved array.
    pub grouped: String,
}

/// Regroups `members` (same shape, not live-out) into one interleaved
/// array with a new leading (fastest-varying) member dimension.
pub fn regroup(
    prog: &Program,
    members: &[ArrayId],
) -> Result<(Program, RegroupAction), RegroupError> {
    if members.len() < 2 {
        return Err(RegroupError::TooFew);
    }
    let set: BTreeSet<ArrayId> = members.iter().copied().collect();
    if set.len() != members.len() {
        return Err(RegroupError::Duplicate);
    }
    let dims = prog.array(members[0]).dims.clone();
    let mut sources = Vec::with_capacity(members.len());
    let mut all_zero = true;
    let mut all_hash = true;
    for &m in members {
        let d = prog.array(m);
        if d.dims != dims {
            return Err(RegroupError::ShapeMismatch);
        }
        if d.live_out {
            return Err(RegroupError::LiveOut);
        }
        match d.init {
            Init::Zero => all_hash = false,
            Init::Hash => all_zero = false,
            _ => return Err(RegroupError::UnsupportedInit),
        }
        sources.push(d.source);
    }
    let init = if all_zero {
        Init::Zero
    } else if all_hash {
        Init::HashInterleaved { sources }
    } else {
        return Err(RegroupError::UnsupportedInit);
    };

    let mut out = prog.clone();
    let mut name = format!(
        "grp_{}",
        members.iter().map(|&m| prog.array(m).name.as_str()).collect::<Vec<_>>().join("_")
    );
    while out.arrays.iter().any(|a| a.name == name) || out.scalars.iter().any(|s| s.name == name) {
        name.push('_');
    }
    let mut grouped_dims = vec![members.len()];
    grouped_dims.extend(&dims);
    let source = out.fresh_source();
    let grouped = out.add_array(ArrayDecl {
        name: name.clone(),
        dims: grouped_dims,
        init,
        live_out: false,
        source,
    });

    // Rewrite every reference: member k's subs → [k, subs…].
    let member_index = |a: ArrayId| members.iter().position(|&m| m == a);
    for nest in &mut out.nests {
        nest.body = nest
            .body
            .iter()
            .map(|st| {
                st.map_refs(&mut |r| match r {
                    Ref::Element(a, subs) => match member_index(*a) {
                        Some(k) => {
                            let mut new_subs = Vec::with_capacity(subs.len() + 1);
                            new_subs.push(Sub::plain(k as i64));
                            new_subs.extend(subs.iter().cloned());
                            Ref::Element(grouped, new_subs)
                        }
                        None => r.clone(),
                    },
                    other => other.clone(),
                })
            })
            .collect();
    }

    // Drop the member declarations (highest id first so indices stay valid).
    let mut ids: Vec<ArrayId> = members.to_vec();
    ids.sort_unstable_by(|a, b| b.cmp(a));
    for id in ids {
        out = crate::storage::remove_array(&out, id);
    }
    let action = RegroupAction {
        members: members.iter().map(|&m| prog.array(m).name.clone()).collect(),
        grouped: name,
    };
    Ok((out, action))
}

/// Proposes regrouping candidates: maximal sets of same-shaped,
/// non-live-out, plain-init arrays referenced in exactly the same set of
/// nests (the dissertation's "always accessed together" criterion).
pub fn regroup_candidates(prog: &Program) -> Vec<Vec<ArrayId>> {
    let access: Vec<_> = prog.nests.iter().map(nest_access).collect();
    let signature = |a: ArrayId| -> (Vec<usize>, Vec<usize>) {
        let nests: Vec<usize> = access
            .iter()
            .enumerate()
            .filter(|(_, acc)| acc.arrays_touched().contains(&a))
            .map(|(k, _)| k)
            .collect();
        (prog.array(a).dims.clone(), nests)
    };
    type Signature = (Vec<usize>, Vec<usize>);
    let mut groups: Vec<(Signature, Vec<ArrayId>)> = Vec::new();
    for k in 0..prog.arrays.len() {
        let id = ArrayId(k as u32);
        let d = prog.array(id);
        if d.live_out || !matches!(d.init, Init::Zero | Init::Hash) {
            continue;
        }
        let sig = signature(id);
        if sig.1.is_empty() {
            continue;
        }
        match groups.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, g)) => g.push(id),
            None => groups.push((sig, vec![id])),
        }
    }
    groups.into_iter().filter(|(_, g)| g.len() >= 2).map(|(_, g)| g).collect()
}

/// Applies regrouping to every candidate group; returns the transformed
/// program and the actions taken.
pub fn regroup_all(prog: &Program) -> (Program, Vec<RegroupAction>) {
    let mut cur = prog.clone();
    let mut actions = Vec::new();
    while let Some(group) = regroup_candidates(&cur).into_iter().next() {
        match regroup(&cur, &group) {
            Ok((next, action)) => {
                actions.push(action);
                cur = next;
            }
            Err(_) => break,
        }
    }
    (cur, actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_ir::builder::*;
    use mbb_ir::{interp, validate};

    /// `s += x[i] + y[i] + z[i]` — three co-accessed live-in streams.
    fn three_stream(n: usize) -> mbb_ir::Program {
        let mut b = ProgramBuilder::new("ts");
        let x = b.array_in("x", &[n]);
        let y = b.array_in("y", &[n]);
        let z = b.array_in("z", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let i = b.var("i");
        b.nest(
            "k",
            &[(i, 0, n as i64 - 1)],
            vec![accumulate(s, ld(x.at([v(i)])) + ld(y.at([v(i)])) + ld(z.at([v(i)])))],
        );
        b.finish()
    }

    #[test]
    fn regroup_preserves_semantics_including_live_in_values() {
        let p = three_stream(64);
        let groups = regroup_candidates(&p);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
        let (q, action) = regroup(&p, &groups[0]).unwrap();
        validate::validate(&q).unwrap();
        assert_eq!(q.arrays.len(), 1);
        assert_eq!(q.arrays[0].dims, vec![3, 64]);
        assert_eq!(action.members, vec!["x", "y", "z"]);
        let (rp, rq) = (interp::run(&p).unwrap(), interp::run(&q).unwrap());
        assert!(
            rp.observation.approx_eq(&rq.observation, 0.0),
            "{:?} vs {:?}",
            rp.observation,
            rq.observation
        );
    }

    #[test]
    fn regrouped_layout_is_interleaved() {
        // Member k element m must land at linear position m*3 + k (member
        // dimension fastest-varying).
        let p = three_stream(8);
        let (q, _) =
            regroup(&p, &[mbb_ir::ArrayId(0), mbb_ir::ArrayId(1), mbb_ir::ArrayId(2)]).unwrap();
        let mut sink = mbb_ir::trace::VecSink::new();
        mbb_ir::interp::run_traced(&q, &mut sink).unwrap();
        // Per iteration the three loads are 8 bytes apart — one line.
        let ev = &sink.events;
        assert_eq!(ev[1].addr - ev[0].addr, 8);
        assert_eq!(ev[2].addr - ev[1].addr, 8);
    }

    #[test]
    fn live_out_members_are_refused() {
        let n = 16usize;
        let mut b = ProgramBuilder::new("lo");
        let x = b.array_in("x", &[n]);
        let y = b.array_out("y", &[n]);
        let i = b.var("i");
        b.nest("k", &[(i, 0, n as i64 - 1)], vec![assign(y.at([v(i)]), ld(x.at([v(i)])))]);
        let p = b.finish();
        assert_eq!(regroup(&p, &[x, y]).err(), Some(RegroupError::LiveOut));
    }

    #[test]
    fn shape_mismatch_refused() {
        let mut b = ProgramBuilder::new("sm");
        let x = b.array_in("x", &[8]);
        let y = b.array_in("y", &[16]);
        let s = b.scalar("s", 0.0);
        let i = b.var("i");
        b.nest("k", &[(i, 0, 7)], vec![accumulate(s, ld(x.at([v(i)])) + ld(y.at([v(i)])))]);
        let p = b.finish();
        assert_eq!(regroup(&p, &[x, y]).err(), Some(RegroupError::ShapeMismatch));
    }

    #[test]
    fn candidates_respect_co_access() {
        // x, y co-accessed in nest 0; z alone in nest 1: only {x, y} group.
        let n = 8usize;
        let mut b = ProgramBuilder::new("ca");
        let x = b.array_in("x", &[n]);
        let y = b.array_in("y", &[n]);
        let z = b.array_in("z", &[n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        b.nest("k0", &[(i, 0, 7)], vec![accumulate(s, ld(x.at([v(i)])) + ld(y.at([v(i)])))]);
        b.nest("k1", &[(j, 0, 7)], vec![accumulate(s, ld(z.at([v(j)])))]);
        let p = b.finish();
        let groups = regroup_candidates(&p);
        assert_eq!(groups, vec![vec![x, y]]);
        let _ = z;
    }

    #[test]
    fn regroup_all_handles_multiple_groups() {
        let n = 8usize;
        let mut b = ProgramBuilder::new("mg");
        let x = b.array_in("x", &[n]);
        let y = b.array_in("y", &[n]);
        let u = b.array_in("u", &[n, n]);
        let w = b.array_in("w", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j, k) = (b.var("i"), b.var("j"), b.var("k"));
        b.nest("k0", &[(i, 0, 7)], vec![accumulate(s, ld(x.at([v(i)])) + ld(y.at([v(i)])))]);
        b.nest(
            "k1",
            &[(k, 0, 7), (j, 0, 7)],
            vec![accumulate(s, ld(u.at([v(j), v(k)])) + ld(w.at([v(j), v(k)])))],
        );
        let p = b.finish();
        let before = interp::run(&p).unwrap();
        let (q, actions) = regroup_all(&p);
        assert_eq!(actions.len(), 2);
        assert_eq!(q.arrays.len(), 2);
        let after = interp::run(&q).unwrap();
        assert!(before.observation.approx_eq(&after.observation, 0.0));
    }

    #[test]
    fn regrouping_removes_direct_mapped_conflicts() {
        // Three page-aligned streams on a direct-mapped cache conflict;
        // regrouped into one stream they cannot.
        let n = 1 << 14;
        let p = three_stream(n);
        let (q, _) = regroup_all(&p);
        let traffic = |prog: &mbb_ir::Program| {
            let m = mbb_memsim::machine::MachineModel::exemplar();
            let lay = mbb_ir::interp::LayoutOpts { base: 0x10_0000, align: 64 * 1024, pad: 0 };
            let mut h = m.hierarchy();
            mbb_ir::interp::Interpreter::with_layout(prog, lay).run(&mut h).unwrap();
            h.flush();
            h.report().mem_bytes()
        };
        let before = traffic(&p);
        let after = traffic(&q);
        assert!(after <= before, "regrouping must not add traffic: {before} -> {after}");
    }
}
