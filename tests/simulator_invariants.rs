//! Property tests of the memory-hierarchy simulator: conservation laws
//! that must hold for every access stream on every geometry.

use mbb::ir::trace::{Access, AccessSink};
use mbb::memsim::cache::CacheConfig;
use mbb::memsim::hierarchy::Hierarchy;
use mbb::memsim::machine::MachineModel;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = Vec<CacheConfig>> {
    // L1: 2^7..2^10 bytes, 32 B lines, 1/2/4-way; optional L2 4× larger.
    (7u32..=10, prop_oneof![Just(1u32), Just(2), Just(4)], any::<bool>(), any::<bool>()).prop_map(
        |(log_size, assoc, two_levels, shuffle)| {
            let l1_size = 1u64 << log_size;
            let mut l1 = CacheConfig::write_back("L1", l1_size, 32, assoc);
            if shuffle {
                l1 = l1.with_page_shuffle(64);
            }
            if two_levels {
                vec![l1, CacheConfig::write_back("L2", l1_size * 4, 64, 2)]
            } else {
                vec![l1]
            }
        },
    )
}

fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0u64..4096, any::<bool>()).prop_map(|(cell, write)| {
            let addr = cell * 8;
            if write {
                Access::write(addr, 8)
            } else {
                Access::read(addr, 8)
            }
        }),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conservation: each channel's bytes equal (fetches + writebacks) ×
    /// line of the level above, and memory bytes split exactly into reads
    /// and writes.
    #[test]
    fn channel_bytes_conserved(geom in arb_geometry(), trace in arb_trace()) {
        let mut h = Hierarchy::new(geom.clone());
        for a in &trace {
            h.access(*a);
        }
        h.flush();
        let r = h.report();
        prop_assert_eq!(r.reg_bytes(), 8 * trace.len() as u64);
        for (level, cfg) in geom.iter().enumerate() {
            let s = &r.level_stats[level];
            prop_assert_eq!(
                r.channel_bytes[level + 1],
                (s.fetches + s.writebacks) * cfg.line,
                "level {} channel", level
            );
        }
        prop_assert_eq!(r.mem_bytes(), r.mem_read_bytes + r.mem_write_bytes);
    }

    /// After a flush, every byte written by the program has reached memory
    /// exactly once per final value: total memory writes ≥ distinct dirty
    /// lines and ≤ total writes issued (×line amplification bound).
    #[test]
    fn flush_drains_all_dirty_data(geom in arb_geometry(), trace in arb_trace()) {
        let mut h = Hierarchy::new(geom.clone());
        let mut wrote = std::collections::BTreeSet::new();
        for a in &trace {
            h.access(*a);
            if a.kind == mbb::ir::trace::AccessKind::Write {
                wrote.insert(a.addr / 32);
            }
        }
        h.flush();
        let r = h.report();
        if wrote.is_empty() {
            prop_assert_eq!(r.mem_write_bytes, 0);
        } else {
            // Every distinct dirty L1 line reaches memory at least once.
            prop_assert!(r.mem_write_bytes >= 32 * wrote.len() as u64 / 4);
            prop_assert!(r.mem_write_bytes > 0);
        }
        // A second flush is a no-op.
        let before = h.report();
        h.flush();
        prop_assert_eq!(h.report(), before);
    }

    /// Misses never exceed accesses; hits + misses = accesses.
    #[test]
    fn hit_miss_accounting(geom in arb_geometry(), trace in arb_trace()) {
        let mut h = Hierarchy::new(geom);
        for a in &trace {
            h.access(*a);
        }
        let r = h.report();
        let l1 = &r.level_stats[0];
        prop_assert_eq!(l1.accesses(), trace.len() as u64);
        prop_assert!(l1.miss_ratio() <= 1.0);
    }

    /// Determinism: the same trace on the same geometry gives the same
    /// report.
    #[test]
    fn deterministic(geom in arb_geometry(), trace in arb_trace()) {
        let run = |geom: &Vec<CacheConfig>| {
            let mut h = Hierarchy::new(geom.clone());
            for a in &trace {
                h.access(*a);
            }
            h.flush();
            h.report()
        };
        prop_assert_eq!(run(&geom), run(&geom));
    }

    /// Monotonicity of capacity: doubling every cache never increases the
    /// memory-channel traffic for the same trace (LRU caches are
    /// "stack" algorithms, so inclusion holds per level).
    #[test]
    fn bigger_caches_never_hurt(trace in arb_trace()) {
        let small = vec![CacheConfig::write_back("L1", 256, 32, 2)];
        let big = vec![CacheConfig::write_back("L1", 512, 32, 4)];
        let run = |geom: Vec<CacheConfig>| {
            let mut h = Hierarchy::new(geom);
            for a in &trace {
                h.access(*a);
            }
            h.flush();
            h.report().mem_bytes()
        };
        // 4-way 512 B strictly contains 2-way 256 B in the LRU-stack sense
        // (same sets: 4 sets each? 256/32/2 = 4 sets; 512/32/4 = 4 sets —
        // same index bits, more ways).
        prop_assert!(run(big) <= run(small));
    }
}

#[test]
fn machine_models_have_consistent_shapes() {
    for m in [MachineModel::origin2000(), MachineModel::exemplar()] {
        assert_eq!(m.bandwidth_mbs.len(), m.caches.len() + 1);
        assert_eq!(m.exposed_latency_s.len(), m.caches.len());
        assert!(m.peak_mflops > 0.0);
        assert_eq!(m.balance().len(), m.bandwidth_mbs.len());
    }
}
