//! Cross-crate sanity: every workload program is well-formed, runs, and
//! interacts correctly with the analyses and transformations.

use mbb::core::fusion::build_fusion_graph;
use mbb::core::pipeline::{optimize, verify_equivalent, OptimizeOptions};
use mbb::ir::{interp, validate};
use mbb::workloads::{figures, kernels, nas_sp, stream_kernels, sweep3d};

fn all_programs() -> Vec<mbb::ir::Program> {
    let mut v = vec![
        kernels::convolution(48, 3),
        kernels::dmxpy(24, 8),
        kernels::mm_jki(8),
        kernels::mm_blocked(8, 4),
        sweep3d::sweep3d(5, 2),
        figures::sec21_update_loop(32),
        figures::sec21_read_loop(32),
        figures::figure4(24),
        figures::figure6(8),
        figures::figure7(32),
        nas_sp::full_step(nas_sp::SpGrid::cubed(5)),
    ];
    v.extend(nas_sp::subroutines(nas_sp::SpGrid::cubed(5)).into_iter().map(|(_, p)| p));
    v.extend(stream_kernels::figure3_kernels(24));
    v
}

#[test]
fn every_workload_validates_and_runs() {
    for p in all_programs() {
        validate::validate(&p).unwrap_or_else(|e| panic!("{}: {e:?}", p.name));
        let r = interp::run(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(r.stats.iterations > 0, "{} ran no iterations", p.name);
    }
}

#[test]
fn every_workload_survives_the_default_pipeline() {
    for p in all_programs() {
        let out = optimize(&p, OptimizeOptions::default());
        validate::validate(&out.program).unwrap_or_else(|e| panic!("{}: {e:?}", p.name));
        if let Err(d) = verify_equivalent(&p, &out.program, 1e-9) {
            panic!(
                "{} changed behaviour: {d}\nafter:\n{}",
                p.name,
                mbb::ir::pretty::program(&out.program)
            );
        }
        assert!(out.storage_after <= out.storage_before, "{}", p.name);
    }
}

#[test]
fn fusion_graphs_are_well_formed_for_all_workloads() {
    for p in all_programs() {
        let g = build_fusion_graph(&p);
        assert_eq!(g.n, p.nests.len(), "{}", p.name);
        for &(a, b) in &g.deps {
            assert!(a < b, "{}: dependence not in program order", p.name);
        }
        for &(a, b) in &g.preventing {
            assert!(a < b && b < g.n, "{}", p.name);
        }
    }
}

#[test]
fn pretty_printer_round_trips_every_workload_without_panic() {
    for p in all_programs() {
        let text = mbb::ir::pretty::program(&p);
        assert!(text.contains(&p.name) || !p.name.is_empty());
        assert!(text.contains("for "), "{}: no loops rendered", p.name);
    }
}

#[test]
fn traced_fft_agrees_with_interpreted_workloads_on_trace_format() {
    // The native FFT and the interpreter must speak the same trace dialect:
    // 8-byte accesses at 8-byte-aligned addresses.
    let mut sink = mbb::ir::trace::VecSink::new();
    let _ = mbb::workloads::fft::fft_traced(64, &mut sink);
    assert!(!sink.events.is_empty());
    for e in &sink.events {
        assert_eq!(e.size, 8);
        assert_eq!(e.addr % 8, 0);
    }
}
