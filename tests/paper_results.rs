//! The paper's headline results, asserted end-to-end through the public
//! API: every table/figure's qualitative claim must hold in the
//! reproduction (exact where the paper is exact, banded where the paper's
//! numbers are hardware measurements).

use mbb_bench::experiments::{self, Sizes};
use mbb_memsim::machine::MachineModel;

#[test]
fn section_2_1_write_loop_costs_twice_the_read_loop() {
    let rows = experiments::sec21(Sizes::quick());
    // Origin: pure bandwidth, ratio 2.0 (paper 1.93).
    let origin = &rows[0];
    let r = origin.t_update_s / origin.t_read_s;
    assert!((1.9..2.1).contains(&r), "origin ratio {r}");
    // Exemplar: latency shifts it below 2 (paper 1.53).
    let exemplar = &rows[1];
    let r = exemplar.t_update_s / exemplar.t_read_s;
    assert!((1.3..2.0).contains(&r), "exemplar ratio {r}");
}

#[test]
fn figure_1_and_2_the_memory_channel_is_the_bottleneck() {
    let fig1 = experiments::figure1(Sizes::quick());
    let fig2 = experiments::figure2(&fig1);
    // Machine balance row: 4 / * / 0.8 as specified.
    assert!((fig1.machine[0] - 4.0).abs() < 0.2);
    assert!((fig1.machine[2] - 0.8).abs() < 0.08);
    // Every application (mm -O3 excluded) demands several × the memory
    // supply, and memory is (almost always) the binding channel — the
    // paper's range is 3.4–10.5×.
    for (name, ratios, util) in &fig2.rows {
        assert!(ratios[2] > 3.0, "{name}: memory pressure ratio {} too low", ratios[2]);
        assert!(*util < 0.35, "{name}: utilisation bound {util} too high");
    }
    // mm (-O3) is the exception that proves the compiler's power: its
    // memory balance sits *below* the machine's 0.8 supply.
    let mm_o3 = &fig1.programs[3];
    assert!(mm_o3.memory() < 0.8, "mm -O3 balance {}", mm_o3.memory());
    // And the naive mm (-O2) demands an order of magnitude more.
    let mm_o2 = &fig1.programs[2];
    assert!(mm_o2.memory() > 5.0 * mm_o3.memory());
}

#[test]
fn figure_3_kernels_saturate_origin_memory_bandwidth() {
    let rows = experiments::figure3(Sizes::quick());
    let m = MachineModel::origin2000();
    // "On Origin2000, the difference is within 20% among all kernels" —
    // and all sit at the 312 MB/s channel.
    let min = rows.iter().map(|r| r.origin_mbs).fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.origin_mbs).fold(0.0, f64::max);
    assert!(max / min < 1.2, "spread {min}..{max}");
    assert!((max - m.memory_bandwidth_mbs()).abs() / m.memory_bandwidth_mbs() < 0.1);
}

#[test]
fn sp_subroutines_run_at_high_bandwidth_utilisation() {
    let rows = experiments::sp_utilization(Sizes::quick());
    assert_eq!(rows.len(), 7);
    // Paper: 5 of 7 ≥ 84%; the proxy's streaming passes all qualify.
    let high = rows.iter().filter(|(_, u)| *u >= 0.84).count();
    assert!(high >= 5, "only {high} of 7 subroutines ≥ 84%");
}

#[test]
fn figure_4_is_reproduced_exactly() {
    let x = experiments::figure4();
    assert_eq!(
        (
            x.unfused,
            x.bandwidth_minimal,
            x.edge_weighted_arrays,
            x.edge_weighted_weight,
            x.bandwidth_minimal_edge_weight,
            x.two_partition
        ),
        (20, 7, 8, 2, 3, 7)
    );
}

#[test]
fn figure_6_storage_drops_from_quadratic_to_linear() {
    let n = 16;
    let m = MachineModel::origin2000().scaled(512);
    let x = experiments::figure6(n, &m);
    assert_eq!(x.storage_before, 2 * n * n * 8);
    assert!(x.storage_after <= 4 * n * 8, "after = {} B", x.storage_after);
    assert!(x.mem_bytes_after < x.mem_bytes_before);
    // One boundary nest (the peeled init column) plus the fused main nest.
    assert!(x.nests_after <= 2, "nests_after = {}", x.nests_after);
}

#[test]
fn figure_8_fusion_plus_store_elimination_doubles_performance() {
    let rows = experiments::figure8(Sizes::quick());
    for row in &rows {
        assert!(row.t_fused_s < row.t_original_s, "{}", row.machine);
        assert!(row.t_eliminated_s < row.t_fused_s, "{}", row.machine);
    }
    // Paper: combined speedup ≈ 2 on Origin (0.32 → 0.16).
    let speedup = rows[0].t_original_s / rows[0].t_eliminated_s;
    assert!((1.8..2.2).contains(&speedup), "origin speedup {speedup}");
}

#[test]
fn scaling_study_matches_the_papers_band() {
    let fig1 = experiments::figure1(Sizes::quick());
    let rows = experiments::scaling_study(&fig1);
    // Paper: 1.02–3.15 GB/s needed. The proxies spread a little wider but
    // every application needs gigabytes per second where the machine
    // offers 312 MB/s.
    for (name, bw) in &rows {
        assert!(*bw > 1000.0, "{name} needs only {bw} MB/s");
        assert!(*bw < 8000.0, "{name} needs {bw} MB/s, out of band");
    }
}
