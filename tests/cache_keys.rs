//! Canonical-hash agreement across the three cache-key producers.
//!
//! The server's result cache, the CLI (which reuses the server's
//! analysis layer), and the search crate's score cache all key on
//! `fnv1a(kind \0 machine \0 flags \0 canonical-program)`.  Historically
//! the server carried its own private fnv1a and canonicalizer; they now
//! delegate to `mbb_core::canon`, and this test pins the agreement
//! byte-for-byte so the three can never drift apart again — a drift
//! would silently split the caches (correct but slow) or, worse, collide
//! keys across kinds.

use mbb::ir::parse::parse;
use mbb_core::canon;

const PROGRAM: &str = "array a[64]\n\
                       scalar s = 0  // printed\n\
                       for i = 0, 63\n\
                       \x20 s = (s + a[i])\n\
                       end for\n";

/// Same program modulo formatting: extra blanks, a comment, different
/// indentation.
const NOISY: &str = "array   a[64]   // demand\n\n\
                     scalar s = 0  // printed\n\
                     for i = 0, 63\n\
                     \x20     s = (s + a[i])\n\
                     end for\n";

#[test]
fn server_canonical_source_is_the_shared_canonicalizer() {
    let p = parse(PROGRAM).unwrap();
    assert_eq!(mbb_server::analysis::canonical_source(&p), canon::program(&p));
}

#[test]
fn server_fnv1a_is_the_shared_fnv1a() {
    for bytes in [&b""[..], b"a", b"report\0origin\0flags\0program"] {
        assert_eq!(mbb_server::cache::fnv1a(bytes), canon::fnv1a(bytes));
    }
}

#[test]
fn cache_key_reproduces_the_server_key_layout_byte_for_byte() {
    let p = parse(PROGRAM).unwrap();
    let canon_text = canon::program(&p);
    let flags = "fusion=Greedy;normalize=false";
    let by_helper = canon::cache_key("report", "origin", flags, &canon_text);
    let by_hand = canon::fnv1a(format!("report\0origin\0{flags}\0{canon_text}").as_bytes());
    assert_eq!(by_helper, by_hand, "cache_key must be fnv1a over the historical layout");
    // The same layout through the server's re-exported hash.
    assert_eq!(
        by_helper,
        mbb_server::cache::fnv1a(format!("report\0origin\0{flags}\0{canon_text}").as_bytes())
    );
}

#[test]
fn search_score_keys_use_the_same_helper_as_the_server() {
    let p = parse(PROGRAM).unwrap();
    let canon_text = canon::program(&p);
    // The search crate keys scores as (SCORE_KIND, machine, "", canon):
    // identical inputs must give identical keys whichever crate computes
    // them.
    let search_key = canon::cache_key(mbb_search::engine::SCORE_KIND, "origin", "", &canon_text);
    let server_style = mbb_server::cache::fnv1a(
        format!("{}\0origin\0\0{canon_text}", mbb_search::engine::SCORE_KIND).as_bytes(),
    );
    assert_eq!(search_key, server_style);
}

#[test]
fn formatting_noise_collapses_to_one_key() {
    let p = parse(PROGRAM).unwrap();
    let q = parse(NOISY).unwrap();
    assert_eq!(canon::program(&p), canon::program(&q), "canonical text must ignore formatting");
    assert_eq!(
        canon::cache_key("optimize-search", "origin", "beam=4", &canon::program(&p)),
        canon::cache_key("optimize-search", "origin", "beam=4", &canon::program(&q)),
    );
    // Distinct kinds, machines or flags must not collide on the same
    // program.
    let c = canon::program(&p);
    let base = canon::cache_key("optimize", "origin", "f", &c);
    assert_ne!(base, canon::cache_key("optimize-search", "origin", "f", &c));
    assert_ne!(base, canon::cache_key("optimize", "origin/64", "f", &c));
    assert_ne!(base, canon::cache_key("optimize", "origin", "g", &c));
}
