//! The committed generator corpus (`tests/corpus/*.loop`) replayed through
//! the full pipeline on every push: one program per `mbb-gen` template
//! family plus shrunk fuzz counterexamples kept as regression seeds.
//!
//! Unlike `loop_files.rs` (the hand-written paper examples), these
//! programs exercise the syntax corners the generator reaches — modular
//! subscripts, `input#N` streams, triangular bounds, negative steps,
//! combined `// live-out zero` attributes — so this test also pins the
//! parse/pretty round-trip surface those corners depend on.

use std::path::PathBuf;

use mbb::ir::runs::{self, Engine};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "loop").then_some(p)
        })
        .collect();
    out.sort();
    assert!(out.len() >= 6, "expected one corpus seed per template family, found {out:?}");
    out
}

#[test]
fn corpus_parses_validates_and_round_trips() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        mbb::ir::validate::validate(&p).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Structural round trip and textual fixpoint, the mbb-gen
        // round-trip property replayed on committed files.
        let text = mbb::ir::pretty::program(&p);
        let again = mbb::ir::parse::parse(&text)
            .unwrap_or_else(|e| panic!("{}: re-parse: {e}\n{text}", path.display()));
        assert_eq!(again, p, "{}: parse(pretty(p)) != p", path.display());
        assert_eq!(
            mbb::ir::pretty::program(&again),
            text,
            "{}: pretty not a fixpoint",
            path.display()
        );
    }
}

#[test]
fn corpus_agrees_across_engines() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap();
        let scalar = {
            let _g = runs::install(Engine::Scalar);
            mbb::ir::run(&p).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        };
        let fast = {
            let _g = runs::install(Engine::Runs);
            mbb::ir::run(&p).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        };
        if let Some(d) = scalar.observation.diff(&fast.observation, 0.0) {
            panic!("{}: engines diverge: {d}", path.display());
        }
        assert_eq!(scalar.stats, fast.stats, "{}: counter divergence", path.display());
    }
}

#[test]
fn corpus_optimizes_with_verified_equivalence() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap();
        let out = mbb::core::pipeline::optimize(&p, Default::default());
        mbb::ir::validate::validate(&out.program)
            .unwrap_or_else(|e| panic!("{}: invalid optimized program: {e}", path.display()));
        mbb::core::pipeline::verify_equivalent(&p, &out.program, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(out.storage_after <= out.storage_before, "{}", path.display());
    }
}

#[test]
fn corpus_balance_never_regresses() {
    let machine = mbb::memsim::MachineModel::origin2000();
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap();
        let before = mbb::core::balance::measure_program_balance(&p, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let out = mbb::core::pipeline::optimize(&p, Default::default());
        let after = mbb::core::balance::measure_program_balance(&out.program, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let limit = before.report.mem_bytes() as f64 * 1.05 + 4096.0;
        assert!(
            (after.report.mem_bytes() as f64) <= limit,
            "{}: memory traffic regressed {} B -> {} B",
            path.display(),
            before.report.mem_bytes(),
            after.report.mem_bytes()
        );
    }
}
