//! Property-based end-to-end test: random loop programs survive the full
//! compiler strategy (fusion → storage reduction → store elimination) with
//! observable behaviour intact, valid IR, never-increased storage, and a
//! fusion objective that never gets worse.

use mbb::core::fusion::{
    build_fusion_graph, check_legal, exhaustive_min_bandwidth, greedy_fusion,
    total_distinct_arrays, Partitioning,
};
use mbb::core::pipeline::{optimize, verify_equivalent, OptimizeOptions};
use mbb::ir::builder::*;
use mbb::ir::{validate, CmpOp, Program};
use proptest::prelude::*;

/// One random nest's recipe.
#[derive(Clone, Debug)]
enum NestKind {
    /// `dst[i] = src[i ± off] op src2[i]`.
    Pointwise { dst: usize, src: usize, src2: usize, off_back: bool },
    /// `sum += src[i]`.
    Reduce { src: usize },
    /// `dst[i] = dst[i] + src[i]` (update in place).
    Update { dst: usize, src: usize },
}

fn arb_nest(arrays: usize) -> impl Strategy<Value = NestKind> {
    prop_oneof![
        (0..arrays, 0..arrays, 0..arrays, any::<bool>()).prop_map(|(dst, src, src2, off_back)| {
            NestKind::Pointwise { dst, src, src2, off_back }
        }),
        (0..arrays).prop_map(|src| NestKind::Reduce { src }),
        (0..arrays, 0..arrays).prop_map(|(dst, src)| NestKind::Update { dst, src }),
    ]
}

fn build(nests: &[NestKind], live_out_mask: u8, n: usize) -> Program {
    let arrays = 4usize;
    let mut b = ProgramBuilder::new("random");
    let pool: Vec<_> = (0..arrays)
        .map(|k| {
            let live = live_out_mask & (1 << k) != 0;
            b.array_with(format!("a{k}"), &[n], mbb::ir::Init::Hash, live)
        })
        .collect();
    let sum = b.scalar_printed("sum", 0.0);
    let hi = n as i64 - 1;
    for (k, nest) in nests.iter().enumerate() {
        let i = b.var(format!("i{k}"));
        let body = match *nest {
            NestKind::Pointwise { dst, src, src2, off_back } => {
                let read = if off_back {
                    // Guarded backward offset keeps subscripts in bounds.
                    ld(pool[src].at([v(i) - 1]))
                } else {
                    ld(pool[src].at([v(i)]))
                };
                let stmt =
                    assign(pool[dst].at([v(i)]), read + ld(pool[src2].at([v(i)])) * lit(0.5));
                if off_back {
                    vec![if_else(
                        cmp(v(i), CmpOp::Ge, c(1)),
                        vec![stmt],
                        vec![assign(pool[dst].at([v(i)]), ld(pool[src2].at([v(i)])))],
                    )]
                } else {
                    vec![stmt]
                }
            }
            NestKind::Reduce { src } => vec![accumulate(sum, ld(pool[src].at([v(i)])))],
            NestKind::Update { dst, src } => vec![assign(
                pool[dst].at([v(i)]),
                ld(pool[dst].at([v(i)])) + ld(pool[src].at([v(i)])),
            )],
        };
        b.nest(format!("n{k}"), &[(i, 0, hi)], body);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimize_preserves_semantics(
        nests in proptest::collection::vec(arb_nest(4), 1..6),
        live_out_mask in 0u8..16,
    ) {
        let p = build(&nests, live_out_mask, 24);
        validate::validate(&p).unwrap();
        let out = optimize(&p, OptimizeOptions::default());
        validate::validate(&out.program).unwrap();
        if let Err(d) = verify_equivalent(&p, &out.program, 1e-9) {
            panic!(
                "not equivalent: {d}\nbefore:\n{}\nafter:\n{}",
                mbb::ir::pretty::program(&p),
                mbb::ir::pretty::program(&out.program)
            );
        }
        prop_assert!(out.storage_after <= out.storage_before);
        prop_assert!(out.arrays_cost_after <= out.arrays_cost_before);
    }

    #[test]
    fn greedy_fusion_is_legal_and_never_worse_than_unfused(
        nests in proptest::collection::vec(arb_nest(4), 1..7),
        live_out_mask in 0u8..16,
    ) {
        let p = build(&nests, live_out_mask, 16);
        let g = build_fusion_graph(&p);
        let greedy = greedy_fusion(&g);
        prop_assert!(check_legal(&g, &greedy).is_ok());
        let unfused = total_distinct_arrays(&g, &Partitioning::unfused(g.n));
        prop_assert!(total_distinct_arrays(&g, &greedy) <= unfused);
    }

    #[test]
    fn exhaustive_is_at_least_as_good_as_greedy(
        nests in proptest::collection::vec(arb_nest(3), 1..5),
        live_out_mask in 0u8..8,
    ) {
        let p = build(&nests, live_out_mask, 16);
        let g = build_fusion_graph(&p);
        let (_, best) = exhaustive_min_bandwidth(&g);
        let greedy = total_distinct_arrays(&g, &greedy_fusion(&g));
        prop_assert!(best <= greedy);
    }

    #[test]
    fn every_fusion_strategy_output_is_runnable(
        nests in proptest::collection::vec(arb_nest(4), 1..5),
    ) {
        let p = build(&nests, 0b0101, 16);
        let g = build_fusion_graph(&p);
        for part in [greedy_fusion(&g), exhaustive_min_bandwidth(&g).0] {
            if let Ok(fused) = mbb::core::fusion::apply(&p, &part) {
                validate::validate(&fused).unwrap();
                prop_assert!(verify_equivalent(&p, &fused, 1e-9).is_ok());
            }
        }
    }
}

mod interchange_props {
    use mbb::core::interchange::interchange;
    use mbb::core::pipeline::verify_equivalent;
    use mbb::ir::builder::*;
    use proptest::prelude::*;

    /// Random 2-deep nest over a[i±di, j±dj] reads with a write at [i,j].
    fn build(di: i64, dj: i64, guard: bool, n: usize) -> mbb::ir::Program {
        let hi = n as i64 - 2;
        let mut b = ProgramBuilder::new("icp");
        let a = b.array_out("a", &[n, n]);
        let s = b.scalar_printed("s", 0.0);
        let (i, j) = (b.var("i"), b.var("j"));
        let read = ld(a.at([v(i) + di, v(j) + dj]));
        let stmt = assign(a.at([v(i), v(j)]), read * lit(0.5));
        let body = if guard {
            vec![
                if_then(cmp(v(i), mbb::ir::CmpOp::Ge, c(1)), vec![stmt]),
                accumulate(s, ld(a.at([v(i), v(j)]))),
            ]
        } else {
            vec![stmt, accumulate(s, ld(a.at([v(i), v(j)])))]
        };
        b.nest("k", &[(j, 1, hi), (i, 1, hi)], body);
        b.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whenever the legality test admits an interchange, the permuted
        /// program computes the same result; rejections are never checked
        /// for false positives here (conservatism is allowed), but accepted
        /// permutations must be sound.
        #[test]
        fn accepted_interchanges_are_sound(
            di in -1i64..=1,
            dj in -1i64..=1,
            guard in proptest::bool::ANY,
        ) {
            let p = build(di, dj, guard, 8);
            if let Ok(q) = interchange(&p, 0, &[1, 0]) {
                mbb::ir::validate::validate(&q).unwrap();
                if let Err(d) = verify_equivalent(&p, &q, 1e-12) {
                    panic!("unsound interchange for (di={di}, dj={dj}, guard={guard}): {d}");
                }
            }
        }
    }
}
