//! Every `.loop` program shipped under `examples/programs/` must parse,
//! run, optimize with verified equivalence, and round-trip through the
//! pretty-printer.

use std::path::PathBuf;

fn program_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/programs");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/programs exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "loop").then_some(p)
        })
        .collect();
    out.sort();
    assert!(out.len() >= 3, "expected the shipped .loop programs, found {out:?}");
    out
}

/// Shrink huge literal bounds so debug-mode interpretation stays fast: the
/// shipped files use paper-scale N, the tests only need semantics.
fn shrink_source(src: &str) -> String {
    src.replace("2000000", "2000")
        .replace("1999999", "1999")
        .replace("1000000", "1000")
        .replace("999999", "999")
        .replace("256", "16")
        .replace("255", "15")
}

#[test]
fn all_loop_files_parse_and_run() {
    for path in program_files() {
        let src = shrink_source(&std::fs::read_to_string(&path).unwrap());
        let p = mbb::ir::parse::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        mbb::ir::validate::validate(&p).unwrap();
        mbb::ir::interp::run(&p).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn all_loop_files_optimize_with_verified_equivalence() {
    for path in program_files() {
        let src = shrink_source(&std::fs::read_to_string(&path).unwrap());
        let p = mbb::ir::parse::parse(&src).unwrap();
        let out = mbb::core::pipeline::optimize(&p, Default::default());
        mbb::core::pipeline::verify_equivalent(&p, &out.program, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(out.storage_after <= out.storage_before, "{}", path.display());
    }
}

#[test]
fn all_loop_files_round_trip_through_pretty() {
    for path in program_files() {
        let src = shrink_source(&std::fs::read_to_string(&path).unwrap());
        let p = mbb::ir::parse::parse(&src).unwrap();
        let text = mbb::ir::pretty::program(&p);
        let q = mbb::ir::parse::parse(&text)
            .unwrap_or_else(|e| panic!("{}: re-parse: {e}\n{text}", path.display()));
        let rp = mbb::ir::interp::run(&p).unwrap();
        let rq = mbb::ir::interp::run(&q).unwrap();
        assert!(rp.observation.approx_eq(&rq.observation, 1e-12), "{}", path.display());
    }
}
