//! The committed corpus driven through the `mbb-search` autotuner: the
//! search-vs-fixed invariants of `mbbc optimize --search`, replayed as a
//! tier-1 test so the CI `search-smoke` lane has an in-tree twin.
//!
//! For every `tests/corpus/*.loop` program the beam search must return a
//! program that is observably equivalent to the original, whose honest
//! balance never exceeds the fixed pipeline's (the fixed candidate is
//! seeded into the beam, so this holds by construction — the test pins
//! that construction), and whose entire outcome is deterministic across
//! runs with fresh score caches.

use std::path::PathBuf;

use mbb_search::{ScoreCache, SearchOptions};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "loop").then_some(p)
        })
        .collect();
    out.sort();
    assert!(out.len() >= 6, "expected one corpus seed per template family, found {out:?}");
    out
}

fn search(p: &mbb::ir::program::Program) -> mbb_search::SearchOutcome {
    let cache = ScoreCache::new(1 << 12, 2);
    mbb_search::search_with_cache(p, &SearchOptions::default(), &cache)
        .expect("unbudgeted search completes")
}

#[test]
fn search_is_equivalent_and_never_worse_on_every_corpus_program() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap();
        let out = search(&p);
        mbb::ir::validate::validate(&out.program)
            .unwrap_or_else(|e| panic!("{}: invalid search winner: {e}", path.display()));
        mbb::core::pipeline::verify_equivalent(&p, &out.program, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            out.best_score.memory() <= out.fixed_score.memory(),
            "{}: search winner at {} bytes/flop is worse than the fixed pipeline's {}",
            path.display(),
            out.best_score.memory(),
            out.fixed_score.memory()
        );
        // The winning spec replays onto the winning program.
        let cand = mbb_search::Candidate::parse(&out.trace.best_spec)
            .unwrap_or_else(|e| panic!("{}: spec `{}`: {e}", path.display(), out.trace.best_spec));
        let replayed = cand
            .apply(&p)
            .unwrap_or_else(|e| panic!("{}: replaying `{}`: {e}", path.display(), cand.spec()));
        assert_eq!(
            mbb::ir::pretty::program(&replayed),
            mbb::ir::pretty::program(&out.program),
            "{}: --pipeline replay of the winning spec diverges",
            path.display()
        );
    }
}

#[test]
fn search_is_deterministic_across_fresh_caches() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p = mbb::ir::parse::parse(&src).unwrap();
        let a = search(&p);
        let b = search(&p);
        assert_eq!(a.trace, b.trace, "{}: trace differs between runs", path.display());
        assert_eq!(
            mbb::ir::pretty::program(&a.program),
            mbb::ir::pretty::program(&b.program),
            "{}: winner differs between runs",
            path.display()
        );
    }
}
