//! Property tests aimed specifically at the storage transformations:
//! 2-D programs with guarded boundary statements, constant-column uses
//! (peel fodder) and carried reads (buffer fodder), pushed through
//! `shrink_storage` and the full pipeline.

use mbb::core::pipeline::verify_equivalent;
use mbb::core::storage::{peel, shrink_storage};
use mbb::ir::builder::*;
use mbb::ir::{validate, CmpOp, Program};
use proptest::prelude::*;

/// Configuration of one random 2-D stencil-ish program.
#[derive(Clone, Debug)]
struct Recipe {
    /// Carried distance of the temp read (0 = same column, 1 = previous).
    carried: bool,
    /// Whether a constant-column read of the temp exists (forces peeling).
    const_col: bool,
    /// Whether the temp is consumed by a second (fusable) nest instead of
    /// in-nest.
    split_consumer: bool,
    /// Grid edge.
    n: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 5usize..10).prop_map(
        |(carried, const_col, split_consumer, n)| Recipe { carried, const_col, split_consumer, n },
    )
}

fn build(r: &Recipe) -> Program {
    let n = r.n;
    let hi = n as i64 - 1;
    let mut b = ProgramBuilder::new("storage_prop");
    let src = b.array_in("src", &[n, n]);
    let tmp = b.array_zero("tmp", &[n, n]);
    let sum = b.scalar_printed("sum", 0.0);
    let (i, j) = (b.var("i"), b.var("j"));

    let mut body = vec![assign(tmp.at([v(i), v(j)]), ld(src.at([v(i), v(j)])) * lit(0.5))];
    let mut consume = ld(tmp.at([v(i), v(j)]));
    if r.carried {
        consume = consume + ld(tmp.at([v(i), v(j) - 1])); // guarded below
    }
    if r.const_col {
        consume = consume + ld(tmp.at([v(i), c(0)]));
    }
    let consume_stmt = if r.carried {
        if_else(
            cmp(v(j), CmpOp::Ge, c(1)),
            vec![accumulate(sum, consume)],
            vec![accumulate(sum, ld(tmp.at([v(i), v(j)])))],
        )
    } else {
        accumulate(sum, consume)
    };

    if r.split_consumer {
        b.nest("produce", &[(j, 0, hi), (i, 0, hi)], body);
        let (i2, j2) = (b.var("i2"), b.var("j2"));
        // Rebuild the consumer over fresh vars.
        let mut consume = ld(tmp.at([v(i2), v(j2)]));
        if r.carried {
            consume = consume + ld(tmp.at([v(i2), v(j2) - 1]));
        }
        if r.const_col {
            consume = consume + ld(tmp.at([v(i2), c(0)]));
        }
        let stmt = if r.carried {
            if_else(
                cmp(v(j2), CmpOp::Ge, c(1)),
                vec![accumulate(sum, consume)],
                vec![accumulate(sum, ld(tmp.at([v(i2), v(j2)])))],
            )
        } else {
            accumulate(sum, consume)
        };
        b.nest("consume", &[(j2, 0, hi), (i2, 0, hi)], vec![stmt]);
    } else {
        body.push(consume_stmt);
        b.nest("fusedk", &[(j, 0, hi), (i, 0, hi)], body);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shrink_storage` never changes behaviour or grows storage, across
    /// carried/constant/split variations.
    #[test]
    fn shrink_storage_safe_on_2d_stencils(r in arb_recipe()) {
        let p = build(&r);
        validate::validate(&p).unwrap();
        let (q, actions) = shrink_storage(&p);
        validate::validate(&q).unwrap();
        if let Err(d) = verify_equivalent(&p, &q, 1e-12) {
            panic!("{d}\nrecipe {r:?}\nactions {actions:?}\nafter:\n{}",
                mbb::ir::pretty::program(&q));
        }
        prop_assert!(q.storage_bytes() <= p.storage_bytes());
        // The single-nest, analysable shapes must actually shrink.
        if !r.split_consumer {
            prop_assert!(
                q.storage_bytes() < p.storage_bytes(),
                "recipe {r:?} should shrink; actions {actions:?}"
            );
        }
    }

    /// The full pipeline (with fusion first) shrinks even the split-nest
    /// variants when they are fusable, and always stays equivalent.
    #[test]
    fn pipeline_safe_on_2d_stencils(r in arb_recipe()) {
        let p = build(&r);
        let out = mbb::core::pipeline::optimize(&p, Default::default());
        validate::validate(&out.program).unwrap();
        if let Err(d) = verify_equivalent(&p, &out.program, 1e-12) {
            panic!("{d}\nrecipe {r:?}\nafter:\n{}", mbb::ir::pretty::program(&out.program));
        }
        prop_assert!(out.storage_after <= out.storage_before);
    }

    /// Peeling any in-range column of the temp is always safe.
    #[test]
    fn peel_any_column_safe(r in arb_recipe(), col in 0i64..5) {
        let p = build(&r);
        let tmp = p.array_by_name("tmp").unwrap();
        prop_assume!((col as usize) < r.n);
        let q = peel(&p, tmp, 1, col).unwrap().program;
        validate::validate(&q).unwrap();
        if let Err(d) = verify_equivalent(&p, &q, 1e-12) {
            panic!("{d}\nrecipe {r:?} col {col}\nafter:\n{}", mbb::ir::pretty::program(&q));
        }
    }
}
