//! Machine-balance audit: the §2 methodology as a tool.
//!
//! For each machine model, measure the supply side (simulated STREAM and
//! CacheBench, as the paper did), then audit a set of workloads: demand
//! per channel, the binding demand/supply ratio, the CPU-utilisation
//! ceiling, and — the §2.3 question — how much memory bandwidth a machine
//! would need to feed the same core without stalling.  Finishes with the
//! "future machine" sweep: utilisation of dmxpy as memory bandwidth grows.
//!
//! ```text
//! cargo run --release --example machine_audit
//! ```

use mbb::core::balance::{measure_program_balance, measured_machine_balance, ratios};
use mbb::memsim::machine::MachineModel;
use mbb::memsim::stream;
use mbb::workloads::{kernels, stream_kernels};

fn main() {
    let origin = MachineModel::origin2000();
    let exemplar = MachineModel::exemplar();

    for m in [&origin, &exemplar] {
        println!("=== {} ===", m.name);
        println!("  peak compute            {:.0} Mflop/s", m.peak_mflops);
        let s = stream::run_default(m);
        println!(
            "  STREAM sustainable      {:.0} MB/s (program convention), {:.0} MB/s (channel)",
            s.sustainable_program_mbs(),
            s.sustainable_channel_mbs()
        );
        let measured = measured_machine_balance(m);
        let spec = m.balance();
        println!("  balance (spec)          {spec:.2?} bytes/flop");
        println!("  balance (measured)      {measured:.2?} bytes/flop\n");
    }

    // Audit a few workloads on the Origin.
    println!("=== workload audit on {} ===", origin.name);
    let audit: Vec<(&str, mbb::ir::Program)> = vec![
        ("daxpy-like 1w2r", stream_kernels::stream_kernel(1, 2, 1 << 20)),
        ("reduction 0w2r", stream_kernels::stream_kernel(0, 2, 1 << 20)),
        ("dmxpy 64k×16", kernels::dmxpy(1 << 16, 16)),
        ("convolution", kernels::convolution(1 << 18, 3)),
    ];
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>16}",
        "workload", "mem B/flop", "max ratio", "CPU util ≤", "needs MB/s"
    );
    for (name, p) in &audit {
        let b = measure_program_balance(p, &origin).unwrap();
        let r = ratios(&b, &origin);
        println!(
            "{name:<18} {:>12.2} {:>11.1}× {:>13.0}% {:>16.0}",
            b.memory(),
            r.max_ratio,
            r.cpu_utilization_bound * 100.0,
            b.memory() * origin.peak_mflops
        );
    }

    // The §2.3 sweep: how does the utilisation ceiling move as the memory
    // channel grows, everything else fixed?
    println!("\n=== future-machine sweep (dmxpy) ===");
    let p = kernels::dmxpy(1 << 16, 16);
    println!("{:>14} {:>14}", "memory MB/s", "CPU util ≤");
    for bw in [312.0, 624.0, 1020.0, 2040.0, 3150.0, 6300.0] {
        let m = MachineModel::custom_memory_bandwidth(bw);
        let b = measure_program_balance(&p, &m).unwrap();
        let r = ratios(&b, &m);
        println!("{bw:>14.0} {:>13.0}%", r.cpu_utilization_bound * 100.0);
    }
    println!("\nthe paper's conclusion: an R10K-class core needs 1.02–3.15 GB/s");
    println!("of memory bandwidth — 3.4–10.5× what the Origin2000 supplies.");
}
