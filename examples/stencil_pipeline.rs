//! A multi-pass 2-D stencil pipeline — the kind of code the paper's
//! introduction motivates — optimised step by step, with the transformed
//! source printed in the paper's pseudo-code style at each stage.
//!
//! The pipeline: read a field, smooth it with a 3-point column stencil,
//! scale the smoothed field, and reduce both the smoothed and scaled
//! fields into checksums.  The smoothed and scaled fields are temporaries:
//! after fusion their live ranges collapse, the smoothed field contracts
//! to a 2-slot-per-row modular buffer and the scaled field to a register,
//! and no temporary ever reaches memory.
//!
//! ```text
//! cargo run --release --example stencil_pipeline
//! ```

use mbb::core::balance::measure_program_balance;
use mbb::core::pipeline::{optimize, verify_equivalent, OptimizeOptions};
use mbb::ir::builder::*;
use mbb::ir::{pretty, CmpOp};
use mbb::memsim::machine::MachineModel;

fn main() {
    let n: usize = 512; // field is n×n
    let hi = n as i64 - 1;
    let mut b = ProgramBuilder::new("stencil_pipeline");
    let field = b.array_in("field", &[n, n]);
    let smooth = b.array_zero("smooth", &[n, n]);
    let scaled = b.array_zero("scaled", &[n, n]);
    let sum_smooth = b.scalar_printed("sum_smooth", 0.0);
    let sum_scaled = b.scalar_printed("sum_scaled", 0.0);

    // Pass 1: column stencil smooth[i,j] = (field[i,j-1] + field[i,j]) / 2
    // (guarded at the j = 0 boundary, where it copies).
    let (i1, j1) = (b.var("i"), b.var("j"));
    b.nest(
        "smooth",
        &[(j1, 0, hi), (i1, 0, hi)],
        vec![if_else(
            cmp(v(j1), CmpOp::Ge, c(1)),
            vec![assign(
                smooth.at([v(i1), v(j1)]),
                (ld(field.at([v(i1), v(j1) - 1])) + ld(field.at([v(i1), v(j1)]))) * lit(0.5),
            )],
            vec![assign(smooth.at([v(i1), v(j1)]), ld(field.at([v(i1), v(j1)])))],
        )],
    );
    // Pass 2: scaled = smooth * 1.5.
    let (i2, j2) = (b.var("i2"), b.var("j2"));
    b.nest(
        "scale",
        &[(j2, 0, hi), (i2, 0, hi)],
        vec![assign(scaled.at([v(i2), v(j2)]), ld(smooth.at([v(i2), v(j2)])) * lit(1.5))],
    );
    // Pass 3+4: reductions.
    let (i3, j3) = (b.var("i3"), b.var("j3"));
    b.nest(
        "reduce_smooth",
        &[(j3, 0, hi), (i3, 0, hi)],
        vec![accumulate(sum_smooth, ld(smooth.at([v(i3), v(j3)])))],
    );
    let (i4, j4) = (b.var("i4"), b.var("j4"));
    b.nest(
        "reduce_scaled",
        &[(j4, 0, hi), (i4, 0, hi)],
        vec![accumulate(sum_scaled, ld(scaled.at([v(i4), v(j4)])))],
    );
    let program = b.finish();

    println!("=== original ===\n{}", pretty::program(&program));

    let machine = MachineModel::origin2000();
    let before = measure_program_balance(&program, &machine).unwrap();

    let outcome = optimize(&program, OptimizeOptions::default());
    verify_equivalent(&program, &outcome.program, 1e-9).expect("equivalent");

    println!("=== optimised ===\n{}", pretty::program(&outcome.program));

    let after = measure_program_balance(&outcome.program, &machine).unwrap();
    println!(
        "storage:          {} KB -> {} KB",
        program.storage_bytes() / 1024,
        outcome.program.storage_bytes() / 1024
    );
    println!(
        "memory traffic:   {} KB -> {} KB",
        before.report.mem_bytes() / 1024,
        after.report.mem_bytes() / 1024
    );
    println!("memory balance:   {:.2} -> {:.2} bytes/flop", before.memory(), after.memory());
    println!("nests:            {} -> {}", program.nests.len(), outcome.program.nests.len());
    for a in &outcome.shrink_actions {
        println!("action:           {a:?}");
    }
}
