//! A guided tour of §3: the Figure-6 program transformed step by step,
//! printing the paper-style source after every pass, with equivalence
//! verified against the original at each step and the memory traffic
//! measured at the end.
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use mbb::core::balance::measure_program_balance;
use mbb::core::embed::{embed_nest, normalize_guarded_consts, simplify_guards};
use mbb::core::fusion;
use mbb::core::pipeline::verify_equivalent;
use mbb::core::storage::shrink_storage;
use mbb::core::transform::peel_front_iterations;
use mbb::ir::pretty;
use mbb::memsim::machine::MachineModel;
use mbb::workloads::figures;

fn main() {
    let n = 8usize;
    let original = figures::figure6(n);
    println!("==== Figure 6(a): the original program ====\n");
    println!("{}", pretty::program(&original));

    let step = |name: &str, p: &mbb::ir::Program| {
        verify_equivalent(&original, p, 1e-12).expect("every step preserves semantics");
        println!("==== {name} ====\n");
        println!("{}", pretty::program(p));
    };

    // 1. Peel column 0 of `a` into its own array (the paper's a1).
    let a = original.array_by_name("a").unwrap();
    let p1 = mbb::core::storage::peel(&original, a, 1, 0).unwrap().program;
    step("after peeling a[·,0] (paper: a1)", &p1);

    // 2. Split the first iteration off the init loop so headers conform.
    let p2 = peel_front_iterations(&p1, 0, 1);
    step("after splitting the init loop's first iteration", &p2);

    // 3. Embed the boundary pass into the last compute iteration — the
    //    paper's `if (j = N) … else …`.
    let p3 = embed_nest(&p2, 2, 0, n as i64 - 1).unwrap();
    step("after embedding the boundary pass under `if (j = N-1)`", &p3);

    // 4. Normalise `b[i, N-1]` to `b[i, j]` under the guard; prune guards
    //    the loop split made decidable.
    let p4 = simplify_guards(&normalize_guarded_consts(&p3));
    step("after guard normalisation and pruning", &p4);

    // 5. Fuse (greedy = optimal here).
    let g = fusion::build_fusion_graph(&p4);
    let part = fusion::greedy_fusion(&g);
    let p5 = fusion::apply(&p4, &part).unwrap();
    step("after bandwidth-minimal fusion — compare Figure 6(b)", &p5);

    // 6. Shrink: `a` becomes a 2-column modular buffer, `b` a register.
    let (p6, actions) = shrink_storage(&p5);
    step("after array shrinking — compare Figure 6(c)", &p6);
    for a in &actions {
        println!("  action: {a:?}");
    }

    let m = MachineModel::origin2000().scaled(512);
    let before = measure_program_balance(&original, &m).unwrap();
    let after = measure_program_balance(&p6, &m).unwrap();
    println!("\nstorage: {} B -> {} B", original.storage_bytes(), p6.storage_bytes());
    println!(
        "memory traffic (cache-scaled Origin): {} B -> {} B",
        before.report.mem_bytes(),
        after.report.mem_bytes()
    );
}
