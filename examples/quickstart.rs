//! Quickstart: build a small loop program with the DSL, measure its memory
//! balance on a simulated SGI Origin2000, run the paper's full compiler
//! strategy (bandwidth-minimal fusion → storage reduction → store
//! elimination), and compare demand, storage and predicted time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mbb::core::balance::{measure_program_balance, ratios, time_program};
use mbb::core::pipeline::{optimize, verify_equivalent, OptimizeOptions};
use mbb::ir::builder::*;
use mbb::memsim::machine::MachineModel;

fn main() {
    // A three-pass pipeline over 1 M-element vectors:
    //   t[i]   = x[i] * 2        (produce a temporary)
    //   y[i]   = y[i] + t[i]     (consume it into the output)
    //   sum   += y[i]            (reduce the output)
    let n: usize = 1 << 20;
    let hi = n as i64 - 1;
    let mut b = ProgramBuilder::new("quickstart");
    let x = b.array_in("x", &[n]);
    let t = b.array_zero("t", &[n]);
    let y = b.array_out("y", &[n]);
    let sum = b.scalar_printed("sum", 0.0);
    let (i, j, k) = (b.var("i"), b.var("j"), b.var("k"));
    b.nest("produce", &[(i, 0, hi)], vec![assign(t.at([v(i)]), ld(x.at([v(i)])) * lit(2.0))]);
    b.nest(
        "consume",
        &[(j, 0, hi)],
        vec![assign(y.at([v(j)]), ld(y.at([v(j)])) + ld(t.at([v(j)])))],
    );
    b.nest("reduce", &[(k, 0, hi)], vec![accumulate(sum, ld(y.at([v(k)])))]);
    let program = b.finish();

    let machine = MachineModel::origin2000();
    println!(
        "machine: {} (memory supply {:.1} MB/s, balance {:?} B/flop)\n",
        machine.name,
        machine.memory_bandwidth_mbs(),
        machine.balance()
    );

    // --- Before -----------------------------------------------------------
    let before = measure_program_balance(&program, &machine).unwrap();
    let before_ratios = ratios(&before, &machine);
    let before_time = time_program(&program, &machine).unwrap();
    println!("before optimisation:");
    println!("  memory demand      {:.2} bytes/flop", before.memory());
    println!(
        "  demand/supply      {:.1}×  (CPU utilisation ≤ {:.0}%)",
        before_ratios.max_ratio,
        before_ratios.cpu_utilization_bound * 100.0
    );
    println!("  array storage      {} KB", program.storage_bytes() / 1024);
    println!("  predicted time     {:.2} ms\n", before_time.time_s * 1e3);

    // --- The paper's strategy ----------------------------------------------
    let outcome = optimize(&program, OptimizeOptions::default());
    verify_equivalent(&program, &outcome.program, 1e-9).expect("must stay equivalent");
    println!("applied:");
    if let Some(p) = &outcome.partitioning {
        println!(
            "  fusion             {} nests -> {} partitions (arrays loaded {} -> {})",
            program.nests.len(),
            p.groups.len(),
            outcome.arrays_cost_before,
            outcome.arrays_cost_after
        );
    }
    for a in &outcome.shrink_actions {
        println!("  storage            {a:?}");
    }
    for s in &outcome.store_eliminations {
        println!("  store elimination  removed {} store(s) of `{}`", s.stores_removed, s.array);
    }

    // --- After -------------------------------------------------------------
    let after = measure_program_balance(&outcome.program, &machine).unwrap();
    let after_ratios = ratios(&after, &machine);
    let after_time = time_program(&outcome.program, &machine).unwrap();
    println!("\nafter optimisation:");
    println!("  memory demand      {:.2} bytes/flop", after.memory());
    println!(
        "  demand/supply      {:.1}×  (CPU utilisation ≤ {:.0}%)",
        after_ratios.max_ratio,
        after_ratios.cpu_utilization_bound * 100.0
    );
    println!("  array storage      {} KB", outcome.program.storage_bytes() / 1024);
    println!("  predicted time     {:.2} ms", after_time.time_s * 1e3);
    println!("\nspeedup: {:.2}×", before_time.time_s / after_time.time_s);
}
