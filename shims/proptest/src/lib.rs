//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of proptest the workspace's property tests use: composable
//! generation strategies (`Strategy`, `prop_map`, `prop_flat_map`,
//! `prop_recursive`, tuples, integer ranges, `Just`, `any::<bool>()`,
//! `collection::{vec, btree_set}`, `prop_oneof!`) and the `proptest!`
//! macro with `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//!
//! * **Minimal shrinking.**  When a case fails, the runner asks the
//!   strategy for simpler candidates — integers halve toward the range's
//!   low end, vectors truncate toward their minimum size (then shrink
//!   elements in place), tuples shrink one component at a time — and
//!   greedily adopts any candidate that still fails, up to a fixed
//!   attempt budget.  Mapped, flat-mapped, boxed, and union strategies
//!   do not shrink (the transformation is not invertible); their failing
//!   value is reported as generated.
//! * **Deterministic seeding.**  Each test derives its RNG seed from the
//!   test name (FNV-1a), so runs are reproducible without a persistence
//!   file; `.proptest-regressions` files are ignored.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a of a string — the per-test seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A composable value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates for a failing value, most aggressive first.
    /// The default is no shrinking; overrides must only return values the
    /// strategy itself could have generated.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf, `f` builds one branching
    /// layer from the strategy for the layer below.  `depth` bounds the
    /// recursion; the size-tuning parameters of upstream proptest are
    /// accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            // Mixing the shallower strategy back in gives variable depth,
            // like upstream's probabilistic recursion.
            let branch = f(cur.clone()).boxed();
            cur = Union::new(vec![cur, branch]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { generate: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generate: Rc::clone(&self.generate) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v as i128, self.start as i128).iter().map(|&x| x as $t).collect()
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v as i128, *self.start() as i128).iter().map(|&x| x as $t).collect()
            }
        }
    )*};
}

/// Integer shrink candidates: the range's low end, then repeated halvings
/// of the distance back toward the failing value.  Every candidate lies
/// in `[lo, v)`, so it stays inside the originating range.
fn shrink_int(v: i128, lo: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && out.last() != Some(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies generate tuples of values.  The component values
// must be `Clone` so a failing tuple can shrink one coordinate at a time
// while holding the others fixed.
macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// any / bool
// ---------------------------------------------------------------------------

/// Types with a canonical uniform strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use std::marker::PhantomData;

    /// The uniform boolean strategy.
    pub const ANY: crate::Any<core::primitive::bool> = crate::Any(PhantomData);
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// `proptest::collection`: sized collections of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size interval, converted from the usual range forms.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Truncate toward the minimum permitted size, most aggressive
            // prefix first, so a minimal failing vector is as short as the
            // property (and the size range) allows.
            let min = self.size.lo;
            if v.len() > min {
                out.push(v[..min].to_vec());
                let half = min + (v.len() - min) / 2;
                if half != min && half != v.len() {
                    out.push(v[..half].to_vec());
                }
                if v.len() - 1 != min && v.len() - 1 != half {
                    out.push(v[..v.len() - 1].to_vec());
                }
            }
            // Then simplify elements in place (a couple of candidates per
            // slot keeps the search budget bounded).
            for k in 0..v.len() {
                for cand in self.elem.shrink(&v[k]).into_iter().take(2) {
                    let mut w = v.clone();
                    w[k] = cand;
                    out.push(w);
                }
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates ordered sets with a target size drawn from `size`.  When
    /// the element domain is too small to reach the target, the set is as
    /// large as distinct draws allow (never empty if `size` excludes 0).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * target + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Result of a discarded case (`prop_assume!` failed).
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property test: draws cases until `cases` of them are
/// accepted or the rejection budget is exhausted.
pub fn run_cases<F>(cases: u32, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Rejected>,
{
    let mut rng = TestRng::new(seed_of(name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let budget = cases.saturating_mul(20).max(64);
    while accepted < cases && attempts < budget {
        attempts += 1;
        if f(&mut rng).is_ok() {
            accepted += 1;
        }
    }
    assert!(
        accepted >= cases,
        "proptest(shim) {name}: only {accepted}/{cases} cases accepted in {attempts} attempts \
         (prop_assume! rejects too much)"
    );
}

/// Shrink attempts per failure: plenty for halve/truncate chains, small
/// enough that a failing CI run is not noticeably slower.
const SHRINK_BUDGET: usize = 512;

enum Outcome {
    Pass,
    Reject,
    Fail(Box<dyn std::any::Any + Send>),
}

fn run_one<T, F>(f: &mut F, v: T) -> Outcome
where
    F: FnMut(T) -> Result<(), Rejected>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(Rejected)) => Outcome::Reject,
        Err(payload) => Outcome::Fail(payload),
    }
}

/// Drives one property test with shrinking: draws values from `strat`
/// until `cases` are accepted; on a failure, greedily adopts any
/// shrink candidate that still fails (a rejected or passing candidate
/// keeps the current value) until no candidate fails or the attempt
/// budget runs out, then reports the minimal case and re-raises the
/// panic.
pub fn run_shrinking<S, F>(cases: u32, name: &str, strat: &S, mut f: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), Rejected>,
{
    let mut rng = TestRng::new(seed_of(name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let budget = cases.saturating_mul(20).max(64);
    while accepted < cases && attempts < budget {
        attempts += 1;
        let v = strat.generate(&mut rng);
        match run_one(&mut f, v.clone()) {
            Outcome::Pass => accepted += 1,
            Outcome::Reject => {}
            Outcome::Fail(payload) => {
                eprintln!(
                    "proptest(shim) {name}: case #{attempts} failed: args = {v:?}; shrinking…"
                );
                // The candidate runs below re-panic on purpose; silence
                // the hook so the search does not spray hundreds of
                // expected panic messages over the real failure.
                let prev_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let mut cur = v;
                let mut cur_payload = payload;
                let mut left = SHRINK_BUDGET;
                'search: loop {
                    for cand in strat.shrink(&cur) {
                        if left == 0 {
                            break 'search;
                        }
                        left -= 1;
                        if let Outcome::Fail(p) = run_one(&mut f, cand.clone()) {
                            cur = cand;
                            cur_payload = p;
                            continue 'search; // simpler and still failing
                        }
                        // Pass or Reject: not a counterexample, try the
                        // next candidate at this level.
                    }
                    break; // no candidate fails — `cur` is minimal
                }
                std::panic::set_hook(prev_hook);
                eprintln!(
                    "proptest(shim) {name}: minimal failing case ({} shrink runs): args = {cur:?}",
                    SHRINK_BUDGET - left
                );
                std::panic::resume_unwind(cur_payload);
            }
        }
    }
    assert!(
        accepted >= cases,
        "proptest(shim) {name}: only {accepted}/{cases} cases accepted in {attempts} attempts \
         (prop_assume! rejects too much)"
    );
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The `proptest!` block: expands each contained function into a `#[test]`
/// that runs `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // One tuple strategy over all arguments, so the runner
                // can shrink a failing case one argument at a time.
                let __strat = ($(($strat),)+);
                $crate::run_shrinking(
                    __cfg.cases,
                    stringify!($name),
                    &__strat,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::Rejected> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Discards the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_of("a"), crate::seed_of("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(xs in crate::collection::vec(0u8..4, 2..5)) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&b| b < 4));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..3).prop_map(|k| k as i32),
            Just(-1i32),
        ]) {
            prop_assert!(v == -1 || (0..3).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(b in crate::bool::ANY) {
            prop_assert!(matches!(b, true | false));
        }
    }

    #[test]
    fn integer_shrink_halves_toward_the_low_end() {
        let s = 0i64..100;
        let cands = s.shrink(&80);
        assert_eq!(cands.first(), Some(&0), "most aggressive candidate first");
        assert!(cands.windows(2).all(|w| w[0] < w[1] || w[0] == 0), "{cands:?}");
        assert!(cands.iter().all(|&c| (0..80).contains(&c)), "{cands:?}");
        assert!(s.shrink(&0).is_empty(), "the low end is already minimal");

        let inc = 5u8..=9;
        let cands = inc.shrink(&9);
        assert!(cands.contains(&5) && cands.iter().all(|&c| (5..9).contains(&c)), "{cands:?}");
    }

    #[test]
    fn vec_shrink_truncates_then_simplifies_elements() {
        let s = crate::collection::vec(0u32..10, 1..=6);
        let v = vec![7, 3, 9, 5];
        let cands = s.shrink(&v);
        assert_eq!(cands[0], vec![7], "minimum-size prefix first");
        assert!(cands.iter().any(|c| c.len() == 3), "one-shorter prefix offered");
        // Element-wise candidates keep the length but lower a slot.
        assert!(cands.iter().any(|c| c.len() == 4 && c[0] < 7 && c[1..] == v[1..]), "{cands:?}");
        // All candidates remain generable: size in 1..=6, elements < 10.
        assert!(cands.iter().all(|c| (1..=6).contains(&c.len()) && c.iter().all(|&x| x < 10)));
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let s = (0u8..10, 0u8..10);
        for cand in s.shrink(&(4, 6)) {
            let changed = usize::from(cand.0 != 4) + usize::from(cand.1 != 6);
            assert_eq!(changed, 1, "exactly one coordinate moves: {cand:?}");
        }
    }

    #[test]
    fn a_failing_property_reports_the_minimal_case() {
        // The property "x < 17" fails for x in 17..100; the minimal
        // counterexample is exactly 17, and halving search must find it.
        let caught = std::panic::catch_unwind(|| {
            let strat = (0u32..100,);
            crate::run_shrinking(64, "shrink_to_boundary", &strat, |(x,)| {
                assert!(x < 17, "boundary crossed at {x}");
                Ok(())
            });
        });
        let payload = caught.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"?").to_string());
        assert!(msg.contains("boundary crossed at 17"), "not minimal: {msg}");
    }

    #[test]
    fn shrinking_respects_prop_assume_rejections() {
        // Rejected candidates must not be adopted: the property fails for
        // even x ≥ 30 but *rejects* odd values, so the reported minimum
        // is the smallest even failing value, never an odd one.
        let caught = std::panic::catch_unwind(|| {
            let strat = (0u32..100,);
            crate::run_shrinking(64, "shrink_with_assume", &strat, |(x,)| {
                if x % 2 == 1 {
                    return Err(crate::Rejected);
                }
                assert!(x < 30, "even failure at {x}");
                Ok(())
            });
        });
        let payload = caught.expect_err("the property must fail");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("even failure at 30"), "{msg}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => *v < 8,
                Tree::Node(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let strat = (0u8..8).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::new(5);
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(leaves_in_range(&t), "leaf strategy escaped its range");
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }
}
