//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the tiny subset of `rand` 0.8 it actually uses: a
//! seedable deterministic generator (`rngs::StdRng`), `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool`.  The generator is a
//! SplitMix64 — statistically fine for randomized tests and benchmarks,
//! but **not** the same stream as upstream `StdRng`, so seeds produce
//! different (still deterministic) cases than the real crate would.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Ranges that can be sampled to produce a `T` (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x51DA_38D1_90A7_D25F }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0u32..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
