//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the measurement surface the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.  Measurement is
//! deliberately simple — per-sample wall-clock around the closure, with
//! min / mean / max printed per benchmark — because the repo's own
//! `repro --json` engine, not Criterion statistics, is the perf record.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }

    /// Measures a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Throughput annotation (printed alongside the timing when set).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark name (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// A group of benchmarks sharing a sample size and throughput annotation.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Times `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (separator line, mirroring upstream's summary).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up sample, discarded.
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            return;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        let rate = match self.throughput {
            Some(Throughput::Elements(k)) if mean > 0.0 => {
                format!("  {:>10.1} Kelem/s", k as f64 / mean / 1e3)
            }
            Some(Throughput::Bytes(k)) if mean > 0.0 => {
                format!("  {:>10.1} MB/s", k as f64 / mean / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "bench {label:<48} [{} {} {}]{rate}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

/// Per-sample timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f` (a small fixed batch per sample).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Prevents the optimiser from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles bench functions into one runner (upstream macro surface).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group (upstream macro surface).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_accumulate() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples, 3 iterations each.
        assert_eq!(runs, 12);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        let mut g = c.benchmark_group("unit2");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        g.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
