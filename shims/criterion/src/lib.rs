//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the measurement surface the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.  Measurement is
//! deliberately simple — per-sample wall-clock around the closure, with
//! min / mean / max printed per benchmark — because the repo's own
//! `repro --json` engine, not Criterion statistics, is the perf record.
//!
//! Two extensions mirror upstream features the workspace relies on:
//!
//! * [`Throughput::Events`] prints simulated-events-per-second next to the
//!   timing, the unit the simulator's perf gate standardises on;
//! * [`Baseline`] files: set `CRITERION_SHIM_SAVE_BASELINE=<path>` to
//!   record every benchmark's mean, and `CRITERION_SHIM_BASELINE=<path>` to
//!   print each run's delta against a previously saved file (the shim's
//!   analogue of upstream's `--save-baseline` / `--baseline`).

use std::collections::BTreeMap;
use std::fmt::Display;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-benchmark mean times, loadable from / savable to a text file.
///
/// The format is one line per benchmark, `mean_seconds<TAB>label`, with
/// `#` comments — trivially diffable and mergeable in review.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Mean seconds per iteration, keyed by the printed benchmark label.
    pub entries: BTreeMap<String, f64>,
}

impl Baseline {
    /// Parses a baseline file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        let mut entries = BTreeMap::new();
        for (k, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || io::Error::new(io::ErrorKind::InvalidData, format!("line {}", k + 1));
            let (mean, label) = line.split_once('\t').ok_or_else(bad)?;
            let mean: f64 = mean.parse().map_err(|_| bad())?;
            entries.insert(label.to_string(), mean);
        }
        Ok(Baseline { entries })
    }

    /// Writes the baseline file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut out = String::from("# criterion-shim baseline: mean_seconds<TAB>label\n");
        for (label, mean) in &self.entries {
            out.push_str(&format!("{mean:.9e}\t{label}\n"));
        }
        std::fs::write(path, out)
    }

    /// Percentage change of `mean` against the stored entry for `label`
    /// (positive = slower than baseline); `None` when the label is new.
    pub fn delta_pct(&self, label: &str, mean: f64) -> Option<f64> {
        let base = *self.entries.get(label)?;
        if base > 0.0 {
            Some((mean / base - 1.0) * 100.0)
        } else {
            None
        }
    }
}

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    baseline: Option<Baseline>,
    save_to: Option<PathBuf>,
    recorded: BTreeMap<String, f64>,
}

impl Criterion {
    /// A harness wired to the `CRITERION_SHIM_BASELINE` (compare) and
    /// `CRITERION_SHIM_SAVE_BASELINE` (record) environment variables.
    pub fn from_env() -> Self {
        let mut c = Criterion::default();
        if let Ok(path) = std::env::var("CRITERION_SHIM_BASELINE") {
            match Baseline::load(&path) {
                Ok(b) => c.baseline = Some(b),
                Err(e) => eprintln!("criterion(shim): cannot load baseline {path}: {e}"),
            }
        }
        if let Ok(path) = std::env::var("CRITERION_SHIM_SAVE_BASELINE") {
            c.save_to = Some(PathBuf::from(path));
        }
        c
    }

    /// Compares subsequent benchmarks against a loaded baseline.
    pub fn with_baseline(mut self, b: Baseline) -> Self {
        self.baseline = Some(b);
        self
    }

    /// Saves every benchmark's mean to `path` when the harness is dropped.
    pub fn save_baseline_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.save_to = Some(path.into());
        self
    }

    /// Means recorded so far (label → seconds).
    pub fn recorded(&self) -> &BTreeMap<String, f64> {
        &self.recorded
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Measures a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Some(path) = &self.save_to {
            let b = Baseline { entries: std::mem::take(&mut self.recorded) };
            if let Err(e) = b.save(path) {
                eprintln!("criterion(shim): cannot save baseline {}: {e}", path.display());
            }
        }
    }
}

/// Throughput annotation (printed alongside the timing when set).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Simulated access events per iteration — reported as Mev/s, the
    /// unit the simulator perf gate records.
    Events(u64),
}

/// A parameterised benchmark name (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// A group of benchmarks sharing a sample size and throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Times `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (separator line, mirroring upstream's summary).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up sample, discarded.
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            return;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        let rate = rate_label(self.throughput, mean);
        let vs = match self.parent.baseline.as_ref().and_then(|b| b.delta_pct(&label, mean)) {
            Some(pct) => format!("  ({pct:+.1}% vs baseline)"),
            None => String::new(),
        };
        println!(
            "bench {label:<48} [{} {} {}]{rate}{vs}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self.parent.recorded.insert(label, mean);
    }
}

/// Renders the throughput column for a mean seconds-per-iteration.
fn rate_label(t: Option<Throughput>, mean: f64) -> String {
    match t {
        Some(Throughput::Elements(k)) if mean > 0.0 => {
            format!("  {:>10.1} Kelem/s", k as f64 / mean / 1e3)
        }
        Some(Throughput::Bytes(k)) if mean > 0.0 => {
            format!("  {:>10.1} MB/s", k as f64 / mean / 1e6)
        }
        Some(Throughput::Events(k)) if mean > 0.0 => {
            format!("  {:>10.2} Mev/s", k as f64 / mean / 1e6)
        }
        _ => String::new(),
    }
}

/// Per-sample timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f` (a small fixed batch per sample).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Prevents the optimiser from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles bench functions into one runner (upstream macro surface).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::from_env();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group (upstream macro surface).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_accumulate() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples, 3 iterations each.
        assert_eq!(runs, 12);
        assert!(c.recorded().contains_key("unit/count"));
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        let mut g = c.benchmark_group("unit2");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        g.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }

    #[test]
    fn events_throughput_prints_mev_per_sec() {
        // 5M events in 0.25 s/iter = 20 Mev/s.
        assert_eq!(rate_label(Some(Throughput::Events(5_000_000)), 0.25).trim(), "20.00 Mev/s");
        assert_eq!(rate_label(Some(Throughput::Events(1)), 0.0), "");
    }

    #[test]
    fn baseline_round_trips_and_reports_delta() {
        let mut b = Baseline::default();
        b.entries.insert("g/fast".into(), 0.010);
        b.entries.insert("g/slow".into(), 0.100);
        let path = std::env::temp_dir().join(format!("crit-shim-{}.base", std::process::id()));
        b.save(&path).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded, b);
        // 0.012 s against a 0.010 s baseline: 20% slower.
        let pct = loaded.delta_pct("g/fast", 0.012).unwrap();
        assert!((pct - 20.0).abs() < 1e-6, "{pct}");
        assert_eq!(loaded.delta_pct("g/new", 1.0), None);
    }

    #[test]
    fn baseline_load_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("crit-shim-bad-{}.base", std::process::id()));
        std::fs::write(&path, "not-a-number\tlabel\n").unwrap();
        let err = Baseline::load(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn save_baseline_on_drop_and_compare_next_run() {
        let path = std::env::temp_dir().join(format!("crit-shim-rt-{}.base", std::process::id()));
        {
            let mut c = Criterion::default().save_baseline_to(&path);
            c.bench_function("t", |b| b.iter(|| std::hint::black_box(1 + 1)));
        }
        let loaded = Baseline::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(loaded.entries.contains_key("t"), "{:?}", loaded.entries);
        assert!(loaded.entries["t"] >= 0.0);
        // A harness comparing against it sees a delta for the same label.
        let c2 = Criterion::default().with_baseline(loaded);
        assert!(c2.baseline.as_ref().unwrap().delta_pct("t", 1.0).is_some());
    }
}
